"""Ablation: how much of the saving comes from the online slack policy?

The paper's runtime scheme combines the ACS static schedule with greedy slack
reclamation.  This ablation runs the same two static schedules (ACS and WCS)
under all four online policies — no reclamation, greedy (the paper's), the
job-horizon look-ahead, and the whole-job proportional variant — to separate
the static from the dynamic contribution.  Expected shape:

* greedy ≤ static (no reclamation) for both schedules;
* ACS + greedy (the paper's combination) is the best deadline-safe point;
* lookahead/proportional may undercut greedy but without the guarantee.
"""

import numpy as np

from repro.offline.acs import ACSScheduler
from repro.offline.wcs import WCSScheduler
from repro.runtime.policies import get_policy
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.utils.tables import format_markdown_table
from repro.workloads.cnc import cnc_taskset
from repro.workloads.distributions import NormalWorkload

N_HYPERPERIODS = 10
SEED = 2005


def _run_ablation(processor):
    taskset = cnc_taskset(processor, bcec_wcec_ratio=0.1)
    schedules = {
        "wcs": WCSScheduler(processor).schedule(taskset),
        "acs": ACSScheduler(processor).schedule(taskset),
    }
    rows = []
    energies = {}
    for schedule_name, schedule in schedules.items():
        for policy_name in ("static", "greedy", "lookahead", "proportional"):
            simulator = DVSSimulator(
                processor,
                policy=get_policy(policy_name),
                config=SimulationConfig(n_hyperperiods=N_HYPERPERIODS),
            )
            result = simulator.run(schedule, NormalWorkload(), np.random.default_rng(SEED))
            energies[(schedule_name, policy_name)] = result.mean_energy_per_hyperperiod
            rows.append([schedule_name, policy_name,
                         result.mean_energy_per_hyperperiod, result.miss_count])
    return rows, energies


def test_ablation_slack_policy(benchmark, run_once, processor):
    rows, energies = run_once(benchmark, _run_ablation, processor)

    print()
    print("Ablation: static schedule × online slack policy (CNC, BCEC/WCEC = 0.1)")
    print(format_markdown_table(
        ["static schedule", "online policy", "energy / hyperperiod", "misses"], rows))

    # Greedy reclamation never does worse than no reclamation on the same schedule.
    assert energies[("wcs", "greedy")] <= energies[("wcs", "static")] + 1e-6
    assert energies[("acs", "greedy")] <= energies[("acs", "static")] + 1e-6
    # The paper's combination beats the baseline combination.
    assert energies[("acs", "greedy")] < energies[("wcs", "greedy")]
    # The deadline-safe policies must not miss any deadline.
    safe_rows = [row for row in rows if row[1] in ("static", "greedy")]
    assert all(row[3] == 0 for row in safe_rows)
