"""Benchmark: the batched experiment harness, serial vs process pool.

Runs the same random-taskset sweep once in-process and once on a worker
pool, asserts the two reports are byte-identical (the harness's determinism
contract) and prints both wall-clock times.  The speedup depends on core
count and on how evenly the NLP sizes are distributed over the workers, so
only determinism — not a minimum speedup — is asserted.
"""

import multiprocessing
import time

from repro.experiments.sweep import SweepConfig, run_sweep
from repro.utils.tables import format_markdown_table

N_TASKSETS = 8
SEED = 2005
#: Divisor-friendly pool: keeps every NLP small so the benchmark finishes
#: in seconds while still giving the pool real work to distribute.
PERIODS = (10.0, 20.0, 40.0)


def _sweep(jobs: int):
    config = SweepConfig(n_tasksets=N_TASKSETS, n_tasks=3, n_hyperperiods=20,
                         seed=SEED, jobs=jobs, periods=PERIODS)
    started = time.perf_counter()
    result = run_sweep(config)
    return result, time.perf_counter() - started


def _run_benchmark():
    serial, serial_seconds = _sweep(jobs=1)
    workers = max(2, min(4, multiprocessing.cpu_count()))
    parallel, parallel_seconds = _sweep(jobs=workers)
    return serial, parallel, serial_seconds, parallel_seconds, workers


def test_parallel_sweep(benchmark, run_once):
    serial, parallel, serial_seconds, parallel_seconds, workers = run_once(
        benchmark, _run_benchmark)

    print()
    print(f"Batched sweep: {N_TASKSETS} random task sets, serial vs {workers} workers")
    print(format_markdown_table(
        ["mode", "wall-clock s", "mean acs improvement %"],
        [["serial (jobs=1)", serial_seconds, serial.mean_improvement("acs")],
         [f"parallel (jobs={workers})", parallel_seconds, parallel.mean_improvement("acs")]]))

    # The determinism contract: identical reports regardless of worker count.
    assert serial.to_markdown() == parallel.to_markdown()
    assert serial.total_misses() == parallel.total_misses()
