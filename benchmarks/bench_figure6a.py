"""Benchmark: Figure 6(a) — ACS vs WCS on random task sets.

The paper sweeps 2–10 tasks and BCEC/WCEC ∈ {0.1, 0.5, 0.9} with 100 task sets
× 1000 hyperperiods per point.  The benchmark uses a scaled-down sweep (the
full setting is available through ``repro-experiments figure6a --full``) and
checks the figure's two trends:

* the improvement of ACS over WCS grows with the number of tasks, and
* it shrinks as the BCEC/WCEC ratio approaches 1.

The end-to-end regeneration above is dominated by the NLP solves, so engine
speedups barely move it.  The ``*_sim_*`` benchmarks therefore time the
*simulation stage in isolation* — the schedules are solved once, untimed, and
the timed region replays a widened sweep's simulations (50 task sets per
point, 25 hyperperiods each -> 900 lock-step units) through either the
compiled event loop or the batched structure-of-arrays engine (which must
agree bitwise).  Batch width matters: per step the batched engine pays a
fixed ~190-numpy-call toll spread over however many units are still live, so
it only overtakes the compiled loop beyond roughly 200 concurrent units and
plateaus around 2x at 900+.  The width here sits on that plateau; sweeps
narrower than ~100 units should stay on the compiled engine.

The ``*_plan_*`` benchmarks isolate the other stage: the offline NLP solves.
``plan_sequential`` times the historical per-scheduler loop,
``plan_batched`` the cross-problem coordinator (every solve of the sweep
advancing in lock-step against stacked objective evaluations) with a fresh
memo per round, and ``plan_memo_warm`` the resume path — a pre-warmed solve
memo replays every schedule with **zero** optimizer calls, which is where
the real-world speedup lives (resumed, repeated and reseeded sweeps).  On a
single core the cold batched path is roughly cost-neutral — stacking the
objective evaluations cannot dodge SLSQP's own serial C iterations — so the
cold pair is tracked for parity, the warm number for the win.  All three
must agree bitwise with the sequential reference.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.preemption import expand_fully_preemptive
from repro.experiments.figure6a import Figure6aConfig, _build_jobs, run_figure6a
from repro.experiments.harness import _prepare_units, make_schedulers
from repro.offline.batched_solver import SolveMemo, plan_expansions
from repro.runtime.batched import simulate_batch
from repro.runtime.compiled import run_compiled

#: Scaled-down sweep: divisor-friendly periods keep the NLP small.
BENCH_CONFIG = Figure6aConfig(
    task_counts=(2, 4, 6),
    bcec_wcec_ratios=(0.1, 0.5, 0.9),
    tasksets_per_point=2,
    hyperperiods_per_taskset=10,
    periods=(10.0, 20.0, 40.0, 80.0),
    seed=2005,
)

#: Simulation-stage sweep: same points as BENCH_CONFIG but wide enough
#: (9 points x 50 task sets x 2 methods = 900 units) for lock-stepping to
#: amortise the batched engine's fixed per-step cost.
SIM_TASKSETS_PER_POINT = 50
SIM_HYPERPERIODS = 25


@pytest.fixture(scope="module")
def sim_units():
    """Every (task set, method) simulation unit of the sweep, schedules pre-solved.

    All NLP work happens here, outside any timed region.  The units keep
    ``rng=None`` placeholders; each timed replay seeds fresh generators so
    every round simulates the identical workload realisations.
    """
    config = replace(BENCH_CONFIG,
                     tasksets_per_point=SIM_TASKSETS_PER_POINT,
                     hyperperiods_per_taskset=SIM_HYPERPERIODS)
    processor = config.resolved_processor()
    units = []
    for job in _build_jobs(config, processor):
        methods = make_schedulers(job.schedulers, processor)
        _, job_units = _prepare_units(job.resolve_taskset(), processor, methods,
                                      job.config)
        units.extend(job_units)
    return units


def _reseeded(units):
    return [replace(unit, rng=np.random.default_rng(unit.config.seed))
            for unit in units]


def _simulate_compiled(units):
    return [
        run_compiled(unit.schedule, unit.processor, unit.policy, unit.config,
                     unit.workload, unit.rng)
        for unit in _reseeded(units)
    ]


def _simulate_batched(units):
    return simulate_batch(_reseeded(units))


def test_figure6a_random_tasksets(benchmark, run_once):
    result = run_once(benchmark, run_figure6a, BENCH_CONFIG)

    print()
    print("Figure 6(a): improvement of ACS over WCS (%) by task count and BCEC/WCEC ratio")
    print(result.to_markdown())

    # No deadline may ever be missed.
    assert all(point.deadline_misses == 0 for point in result.points)

    # Trend 1: at high workload variation (ratio 0.1) the improvement is substantial.
    largest = result.point(max(BENCH_CONFIG.task_counts), 0.1)
    assert largest.mean_improvement_percent > 15.0

    # Trend 2: for every task count, ratio 0.1 beats ratio 0.9 (small noise allowance).
    for n_tasks in BENCH_CONFIG.task_counts:
        low = result.point(n_tasks, 0.1).mean_improvement_percent
        high = result.point(n_tasks, 0.9).mean_improvement_percent
        assert low >= high - 3.0

    # Trend 3: more tasks give ACS at least as much room at ratio 0.1 (loose check).
    series = result.series(0.1)
    assert series[-1][1] >= series[0][1] - 5.0


def test_figure6a_sim_compiled(benchmark, sim_units):
    """Simulation stage only, compiled event loop (the pre-batching baseline)."""
    results = benchmark.pedantic(_simulate_compiled, args=(sim_units,),
                                 rounds=3, iterations=1)
    assert len(results) == len(sim_units)
    assert all(result.n_hyperperiods == SIM_HYPERPERIODS for result in results)


def test_figure6a_sim_batched(benchmark, sim_units):
    """Simulation stage only, batched SoA engine — must match compiled bitwise."""
    results = benchmark.pedantic(_simulate_batched, args=(sim_units,),
                                 rounds=3, iterations=1)
    compiled = _simulate_compiled(sim_units)
    for batched, reference in zip(results, compiled):
        assert batched.total_energy == reference.total_energy
        assert batched.energy_per_hyperperiod == reference.energy_per_hyperperiod
        assert batched.transition_energy == reference.transition_energy
        assert batched.energy_by_task == reference.energy_by_task
        assert batched.deadline_misses == reference.deadline_misses
        assert batched.jobs_completed == reference.jobs_completed


def _traced(units):
    return [replace(unit, config=replace(unit.config, trace=True))
            for unit in units]


def test_figure6a_sim_compiled_traced(benchmark, sim_units):
    """The same compiled replay with the typed event stream on.

    Paired with ``test_figure6a_sim_compiled`` this is the tracing-overhead
    guard: the trace-off number is the product path and must not regress when
    event emission evolves, while the on/off gap quantifies what ``trace=True``
    costs (event allocation is the dominant term).  The energies must be
    bitwise-unchanged — tracing is a pure observer.
    """
    traced_units = _traced(sim_units)
    results = benchmark.pedantic(_simulate_compiled, args=(traced_units,),
                                 rounds=3, iterations=1)
    compiled = _simulate_compiled(sim_units)
    for traced, reference in zip(results, compiled):
        assert traced.trace is not None and len(traced.trace) > 0
        assert reference.trace is None
        assert traced.total_energy == reference.total_energy
        assert traced.energy_by_task == reference.energy_by_task


@pytest.fixture(scope="module")
def plan_items():
    """Every (expansion, methods) planning group of the sweep, built untimed.

    18 jobs x 2 methods = 36 scheduler programs; the ACS half are NLP
    solves (two waves each: WCS seeding then the average-case refinement).
    """
    processor = BENCH_CONFIG.resolved_processor()
    return [
        (expand_fully_preemptive(job.resolve_taskset()),
         make_schedulers(job.schedulers, processor))
        for job in _build_jobs(BENCH_CONFIG, processor)
    ]


def _plan_sequential(items):
    return [{name: scheduler.schedule_expansion(expansion)
             for name, scheduler in methods.items()}
            for expansion, methods in items]


def _plan_batched(items):
    # Fresh empty memo per call: every timed round re-solves the whole
    # sweep, so the number measures the coordinator, not the cache.
    return plan_expansions(items, memo=SolveMemo())


def _plan_memoized(items, memo):
    return plan_expansions(items, memo=memo)


def _assert_plans_identical(results, reference):
    assert len(results) == len(reference)
    for group, expected in zip(results, reference):
        assert group.keys() == expected.keys()
        for name in expected:
            ours, theirs = group[name], expected[name]
            assert ours.method == theirs.method
            assert tuple(ours.end_times()) == tuple(theirs.end_times())
            assert tuple(ours.wc_budgets()) == tuple(theirs.wc_budgets())
            assert ours.objective_value == theirs.objective_value


def test_figure6a_plan_sequential(benchmark, plan_items):
    """Offline planning stage only, per-scheduler sequential solves (baseline)."""
    results = benchmark.pedantic(_plan_sequential, args=(plan_items,),
                                 rounds=3, iterations=1)
    assert len(results) == len(plan_items)


def test_figure6a_plan_batched(benchmark, plan_items):
    """Offline planning through the batched coordinator, cold memo every round."""
    results = benchmark.pedantic(_plan_batched, args=(plan_items,),
                                 rounds=3, iterations=1)
    _assert_plans_identical(results, _plan_sequential(plan_items))


def test_figure6a_plan_memo_warm(benchmark, plan_items):
    """Replanning from a warm solve memo — the resume path, zero optimizer calls."""
    memo = SolveMemo()
    plan_expansions(plan_items, memo=memo)  # warm it, untimed
    computed_cold = memo.computed
    results = benchmark.pedantic(_plan_memoized, args=(plan_items, memo),
                                 rounds=3, iterations=1)
    assert memo.computed == computed_cold  # no timed round ran a solver
    _assert_plans_identical(results, _plan_sequential(plan_items))
