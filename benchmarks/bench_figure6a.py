"""Benchmark: Figure 6(a) — ACS vs WCS on random task sets.

The paper sweeps 2–10 tasks and BCEC/WCEC ∈ {0.1, 0.5, 0.9} with 100 task sets
× 1000 hyperperiods per point.  The benchmark uses a scaled-down sweep (the
full setting is available through ``repro-experiments figure6a --full``) and
checks the figure's two trends:

* the improvement of ACS over WCS grows with the number of tasks, and
* it shrinks as the BCEC/WCEC ratio approaches 1.
"""


from repro.experiments.figure6a import Figure6aConfig, run_figure6a

#: Scaled-down sweep: divisor-friendly periods keep the NLP small.
BENCH_CONFIG = Figure6aConfig(
    task_counts=(2, 4, 6),
    bcec_wcec_ratios=(0.1, 0.5, 0.9),
    tasksets_per_point=2,
    hyperperiods_per_taskset=10,
    periods=(10.0, 20.0, 40.0, 80.0),
    seed=2005,
)


def test_figure6a_random_tasksets(benchmark, run_once):
    result = run_once(benchmark, run_figure6a, BENCH_CONFIG)

    print()
    print("Figure 6(a): improvement of ACS over WCS (%) by task count and BCEC/WCEC ratio")
    print(result.to_markdown())

    # No deadline may ever be missed.
    assert all(point.deadline_misses == 0 for point in result.points)

    # Trend 1: at high workload variation (ratio 0.1) the improvement is substantial.
    largest = result.point(max(BENCH_CONFIG.task_counts), 0.1)
    assert largest.mean_improvement_percent > 15.0

    # Trend 2: for every task count, ratio 0.1 beats ratio 0.9 (small noise allowance).
    for n_tasks in BENCH_CONFIG.task_counts:
        low = result.point(n_tasks, 0.1).mean_improvement_percent
        high = result.point(n_tasks, 0.9).mean_improvement_percent
        assert low >= high - 3.0

    # Trend 3: more tasks give ACS at least as much room at ratio 0.1 (loose check).
    series = result.series(0.1)
    assert series[-1][1] >= series[0][1] - 5.0
