"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (or an ablation)
at a laptop-friendly scale and prints the corresponding rows/series.  Absolute
numbers are not expected to match the paper (different simulator, different
random draws); the *shape* — who wins and by roughly how much — is asserted.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.power.presets import ideal_processor  # noqa: E402


@pytest.fixture(scope="session")
def processor():
    """The paper's simplified processor model shared by all benchmarks."""
    return ideal_processor(fmax=1000.0)


@pytest.fixture
def run_once():
    """Fixture: run an experiment exactly once under pytest-benchmark timing.

    The experiments are end-to-end sweeps (many NLP solves plus simulations),
    so repeating them for statistical timing would waste hours; a single round
    still records the wall-clock cost of regenerating the figure.
    """

    def _run(benchmark, function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
