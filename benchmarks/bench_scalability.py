"""Benchmark: multicore scalability sweep at laptop scale.

Regenerates a scaled-down version of the `repro scalability` report — CNC
partitioned across 1, 2 and 4 cores with the packing (ffd) and balancing
(wfd, energy) heuristics — and asserts its shape:

* balanced partitions must beat the single-core baseline by a wide margin
  (the quadratic energy law turns evenly spread slack into superlinear
  savings);
* first-fit packs the whole set onto one core whenever it fits, so its
  energy must equal the m=1 run exactly (paired seeding);
* nothing misses a deadline.
"""

from repro.experiments.scalability import ScalabilityConfig, run_scalability
from repro.utils.tables import format_markdown_table

CONFIG = ScalabilityConfig(
    core_counts=(1, 2, 4),
    partitioners=("ffd", "wfd", "energy"),
    application="cnc",
    n_hyperperiods=10,
    seed=2005,
)


def test_scalability(benchmark, run_once):
    result = run_once(benchmark, run_scalability, CONFIG)

    print()
    print("Multicore scalability (CNC, ACS per core, greedy reclamation):")
    rows = []
    for n_cores in CONFIG.core_counts:
        for partitioner in CONFIG.partitioners:
            point = result.point(n_cores, partitioner)
            rows.append([n_cores, partitioner,
                         point.mean_energy_per_hyperperiod,
                         result.improvement_over_single_core(n_cores, partitioner),
                         point.max_core_utilization])
    print(format_markdown_table(
        ["cores", "partitioner", "energy / hyperperiod", "improvement vs m=1 %",
         "max core utilisation"], rows))

    assert all(point.deadline_misses == 0 for point in result.points)
    # Packing: first-fit leaves everything on core 0, bitwise-equal to m=1.
    assert result.improvement_over_single_core(4, "ffd") == 0.0
    # Balancing: spreading a 0.7-utilisation set over 4 cores must save big.
    assert result.improvement_over_single_core(4, "wfd") > 50.0
    assert result.improvement_over_single_core(4, "energy") > 50.0
    # More cores never hurt a balancing heuristic on this workload.
    assert result.point(4, "wfd").mean_energy_per_hyperperiod <= \
        result.point(2, "wfd").mean_energy_per_hyperperiod
