"""Micro-benchmarks: cost of the building blocks as the problem grows.

Not a paper figure — these timings document the scalability envelope of the
reproduction (the paper reports its NLP sizes only indirectly via the
"maximum one thousand sub-instances" cap):

* fully preemptive expansion of a hyperperiod,
* one evaluation of the analytic average-case objective,
* a complete WCS NLP solve,
* one simulated hyperperiod of the runtime DVS.
"""

import numpy as np
import pytest

from repro.analysis.preemption import expand_fully_preemptive
from repro.offline.evaluation import evaluate_vectors
from repro.offline.initialization import worst_case_simulation_vectors
from repro.offline.wcs import WCSScheduler
from repro.offline.nlp import SolverOptions
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.workloads.distributions import NormalWorkload
from repro.workloads.random_tasksets import RandomTaskSetConfig, generate_random_taskset


def _taskset(processor, n_tasks):
    config = RandomTaskSetConfig(n_tasks=n_tasks, periods=(10.0, 20.0, 40.0, 80.0),
                                 bcec_wcec_ratio=0.5)
    return generate_random_taskset(config, processor, np.random.default_rng(n_tasks))


@pytest.mark.parametrize("n_tasks", [4, 8])
def test_benchmark_expansion(benchmark, processor, n_tasks):
    taskset = _taskset(processor, n_tasks)
    expansion = benchmark(expand_fully_preemptive, taskset)
    assert len(expansion) >= n_tasks


@pytest.mark.parametrize("n_tasks", [4, 8])
def test_benchmark_analytic_evaluation(benchmark, processor, n_tasks):
    taskset = _taskset(processor, n_tasks)
    expansion = expand_fully_preemptive(taskset)
    end_times, budgets = worst_case_simulation_vectors(expansion, processor)
    outcome = benchmark(evaluate_vectors, expansion, end_times, budgets, processor)
    assert outcome.energy > 0


def test_benchmark_wcs_solve(benchmark, processor):
    taskset = _taskset(processor, 4)
    scheduler = WCSScheduler(processor, options=SolverOptions(maxiter=60))
    schedule = benchmark.pedantic(scheduler.schedule, args=(taskset,), rounds=1, iterations=1)
    schedule.validate(processor)


def test_benchmark_simulated_hyperperiod(benchmark, processor):
    taskset = _taskset(processor, 8)
    schedule = WCSScheduler(processor, options=SolverOptions(maxiter=40)).schedule(taskset)
    simulator = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=1, seed=1))
    result = benchmark(simulator.run, schedule, NormalWorkload())
    assert result.total_energy > 0
