"""Ablation: discrete voltage levels.

The paper assumes a continuously variable supply voltage.  Real DVS processors
offer a handful of levels, and rounding the requested voltage up (the only
deadline-safe quantisation) gives back part of the ACS gain.  This ablation
measures the ACS-over-WCS improvement with a continuous supply and with 3, 5
and 9 uniformly spaced levels.  Expected shape: the improvement with many
levels approaches the continuous one; with very few levels it shrinks but the
ordering (ACS ≤ WCS in energy) is preserved.
"""

import numpy as np

from repro.offline.acs import ACSScheduler
from repro.offline.wcs import WCSScheduler
from repro.power.voltage import VoltageLevels
from repro.runtime.results import improvement_percent
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.utils.tables import format_markdown_table
from repro.workloads.cnc import cnc_taskset
from repro.workloads.distributions import NormalWorkload

N_HYPERPERIODS = 10
SEED = 2005


def _run_ablation(processor):
    taskset = cnc_taskset(processor, bcec_wcec_ratio=0.1)
    acs = ACSScheduler(processor).schedule(taskset)
    wcs = WCSScheduler(processor).schedule(taskset)
    scenarios = {"continuous": None}
    for count in (3, 5, 9):
        scenarios[f"{count} levels"] = VoltageLevels.uniform(processor.vmin, processor.vmax, count)

    rows = []
    improvements = {}
    acs_energies = {}
    for label, levels in scenarios.items():
        config = SimulationConfig(n_hyperperiods=N_HYPERPERIODS, voltage_levels=levels,
                                  quantization="ceiling")
        simulator = DVSSimulator(processor, config=config)
        acs_energy = simulator.run(acs, NormalWorkload(), np.random.default_rng(SEED)).mean_energy_per_hyperperiod
        wcs_energy = simulator.run(wcs, NormalWorkload(), np.random.default_rng(SEED)).mean_energy_per_hyperperiod
        improvement = improvement_percent(wcs_energy, acs_energy)
        improvements[label] = improvement
        acs_energies[label] = acs_energy
        rows.append([label, wcs_energy, acs_energy, improvement])
    return rows, improvements, acs_energies


def test_ablation_discrete_voltage_levels(benchmark, run_once, processor):
    rows, improvements, acs_energies = run_once(benchmark, _run_ablation, processor)

    print()
    print("Ablation: voltage quantisation (CNC, BCEC/WCEC = 0.1, ceiling rounding)")
    print(format_markdown_table(["supply voltage", "WCS energy", "ACS energy", "improvement %"], rows))

    # ACS keeps a clear advantage with a realistic number of levels (and even with 3).
    assert improvements["continuous"] > 15.0
    for label in ("3 levels", "5 levels", "9 levels"):
        assert improvements[label] > 10.0
    # Absolute energy decreases monotonically as the level set gets finer and
    # approaches the continuous value.  (The *relative* improvement is not
    # monotone because coarse quantisation also inflates the WCS baseline.)
    assert acs_energies["3 levels"] >= acs_energies["5 levels"] >= acs_energies["9 levels"]
    assert acs_energies["9 levels"] >= acs_energies["continuous"] - 1e-6
    assert acs_energies["9 levels"] <= 1.25 * acs_energies["continuous"]
