"""Ablation: voltage-transition overhead.

The paper ignores transition costs, arguing task execution times dwarf them.
This ablation re-runs the CNC comparison with increasingly pessimistic DC-DC
converter models and reports how much of the ACS gain survives.  Expected
shape: with realistic converter capacitances the overhead is a small fraction
of the dynamic energy and the ACS-over-WCS improvement barely moves, which is
exactly the paper's justification for ignoring it.
"""

import numpy as np

from repro.offline.acs import ACSScheduler
from repro.offline.wcs import WCSScheduler
from repro.power.transition import TransitionModel
from repro.runtime.results import improvement_percent
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.utils.tables import format_markdown_table
from repro.workloads.cnc import cnc_taskset
from repro.workloads.distributions import NormalWorkload

N_HYPERPERIODS = 10
SEED = 2005


def _run_ablation(processor):
    taskset = cnc_taskset(processor, bcec_wcec_ratio=0.1)
    acs = ACSScheduler(processor).schedule(taskset)
    wcs = WCSScheduler(processor).schedule(taskset)
    scenarios = {
        "ideal (paper)": TransitionModel.ideal(),
        "moderate converter": TransitionModel(cdd=10.0, efficiency_loss=0.9),
        "heavy converter": TransitionModel(cdd=100.0, efficiency_loss=1.0),
    }
    rows = []
    improvements = {}
    overhead_fraction = {}
    for label, model in scenarios.items():
        config = SimulationConfig(n_hyperperiods=N_HYPERPERIODS, transition_model=model)
        simulator = DVSSimulator(processor, config=config)
        acs_result = simulator.run(acs, NormalWorkload(), np.random.default_rng(SEED))
        wcs_result = simulator.run(wcs, NormalWorkload(), np.random.default_rng(SEED))
        acs_total = acs_result.mean_energy_per_hyperperiod + acs_result.transition_energy / N_HYPERPERIODS
        wcs_total = wcs_result.mean_energy_per_hyperperiod + wcs_result.transition_energy / N_HYPERPERIODS
        improvement = improvement_percent(wcs_total, acs_total)
        improvements[label] = improvement
        overhead_fraction[label] = (acs_result.transition_energy
                                    / max(acs_result.total_energy, 1e-12))
        rows.append([label, wcs_total, acs_total, improvement, 100 * overhead_fraction[label]])
    return rows, improvements, overhead_fraction


def test_ablation_transition_overhead(benchmark, run_once, processor):
    rows, improvements, overhead_fraction = run_once(benchmark, _run_ablation, processor)

    print()
    print("Ablation: voltage-transition energy overhead (CNC, BCEC/WCEC = 0.1)")
    print(format_markdown_table(
        ["converter model", "WCS energy", "ACS energy", "improvement %", "overhead % of ACS energy"],
        rows))

    # The paper's assumption: with a realistic converter the overhead is marginal.
    assert overhead_fraction["moderate converter"] < 0.05
    assert abs(improvements["moderate converter"] - improvements["ideal (paper)"]) < 5.0
    # Even a deliberately heavy converter does not flip the conclusion.
    assert improvements["heavy converter"] > 5.0
