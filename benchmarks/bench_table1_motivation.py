"""Benchmark: the motivational example (Table 1, Figures 1 and 2).

Regenerates the four energies of the paper's Section 2.2 narrative and checks
the two headline percentages' direction: ACS-style end-times save energy in
the average case (paper: ≈24 %) and cost extra if the worst case strikes
(paper: ≈33 %).
"""


from repro.experiments.motivation import run_motivation


def test_table1_motivational_example(benchmark, run_once):
    result = run_once(benchmark, run_motivation)

    print()
    print("Motivational example (Table 1 / Figures 1-2)")
    print(result.to_markdown())
    print(f"WCS end-times: {[round(e, 2) for e in result.wcs_end_times]}")
    print(f"ACS end-times: {[round(e, 2) for e in result.acs_end_times]}")
    print(f"average-case improvement: {result.improvement_average_case_percent:.1f}% (paper ≈24%)")
    print(f"worst-case penalty:       {result.penalty_worst_case_percent:.1f}% (paper ≈33%)")

    # Shape assertions (not absolute-value matches).
    assert result.wcs_end_times[0] < result.acs_end_times[0]
    assert result.improvement_average_case_percent > 10.0
    assert result.penalty_worst_case_percent >= 0.0
    # Figure 1(a) end-times: the WCEC-optimal schedule splits the frame evenly.
    assert abs(result.wcs_end_times[0] - 20 / 3) < 0.2
    # Figure 2 end-times and the ≈33 % worst-case penalty from the paper's text.
    assert abs(result.acs_end_times[0] - 10.0) < 0.5
    assert abs(result.penalty_worst_case_percent - 33.3) < 8.0
