"""Benchmark: Figure 6(b) — the CNC and GAP real-life case studies.

The paper reports ACS-over-WCS improvements of up to ≈41 % (CNC) and ≈30 %
(GAP) at BCEC/WCEC = 0.1, falling towards zero at 0.9.  The benchmark
regenerates both series (GAP restricted to its eight highest-rate tasks to
keep the NLP size laptop-friendly; pass ``gap_tasks=None`` for the full set).
"""

from repro.experiments.figure6b import Figure6bConfig, run_figure6b

BENCH_CONFIG = Figure6bConfig(
    bcec_wcec_ratios=(0.1, 0.5, 0.9),
    hyperperiods_per_point=10,
    gap_tasks=8,
    seed=2005,
)


def test_figure6b_cnc_and_gap(benchmark, run_once):
    result = run_once(benchmark, run_figure6b, BENCH_CONFIG)

    print()
    print("Figure 6(b): improvement of ACS over WCS (%) for the CNC and GAP applications")
    print(result.to_markdown())

    assert all(point.deadline_misses == 0 for point in result.points)

    for application, paper_peak in (("cnc", 41.0), ("gap", 30.0)):
        series = dict(result.series(application))
        # Strong improvement at high variation; same order of magnitude as the paper.
        assert series[0.1] > 10.0, f"{application}: expected a double-digit gain at ratio 0.1"
        # The gain decays as the ratio approaches 1.
        assert series[0.1] >= series[0.9] - 3.0
        print(f"{application.upper()}: measured {series[0.1]:.1f}% at ratio 0.1 "
              f"(paper ≈{paper_peak:.0f}%)")
