#!/usr/bin/env python
"""Run the pytest-benchmark suite and record a machine-readable perf snapshot.

The runner executes the benchmarks under ``benchmarks/`` (optionally filtered
with ``-k``-style selection) through pytest-benchmark, then condenses the raw
report into ``BENCH_<date>.json`` — one small, diff-friendly file per run that
tracks the repository's performance trajectory over time:

```
python benchmarks/run_benchmarks.py                       # full suite
python benchmarks/run_benchmarks.py -k "figure6a or parallel_sweep"
python benchmarks/run_benchmarks.py --output-dir perf --meta machine=ci
```

Each snapshot records the per-benchmark wall-clock seconds, the commit it was
taken at, interpreter/platform info and any ``--meta key=value`` annotations
(used e.g. to record the pre-change baseline a speedup was measured against).
Exit status is pytest's, so CI can surface regressions while still uploading
the snapshot artifact.
"""

from __future__ import annotations

import argparse
import datetime as _datetime
import json
import os
import platform
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")


def _git_commit() -> str:
    try:
        output = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        return output or "unknown"
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _parse_meta(pairs: list) -> dict:
    meta = {}
    for pair in pairs:
        key, separator, value = pair.partition("=")
        if not separator:
            raise SystemExit(f"--meta expects key=value, got {pair!r}")
        meta[key] = value
    return meta


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-k", "--select", default=None,
                        help="pytest -k expression selecting benchmarks")
    parser.add_argument("--output-dir", default=REPO_ROOT,
                        help="directory for BENCH_<date>.json (default: repo root)")
    parser.add_argument("--date", default=None,
                        help="override the snapshot date (YYYY-MM-DD)")
    parser.add_argument("--meta", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="extra metadata recorded in the snapshot (repeatable)")
    parser.add_argument("--force", action="store_true",
                        help="overwrite an existing BENCH_<date>.json")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra arguments forwarded to pytest")
    options = parser.parse_args(argv)

    date = options.date or _datetime.date.today().isoformat()
    output_path = os.path.join(options.output_dir, f"BENCH_{date}.json")
    if os.path.exists(output_path) and not options.force:
        # Committed snapshots can carry hand-curated baseline metadata;
        # never clobber one silently.
        raise SystemExit(
            f"{output_path} already exists; pass --force to overwrite "
            f"or --output-dir/--date for a separate snapshot"
        )
    benchmarks = []
    with tempfile.TemporaryDirectory(prefix="bench-") as scratch_dir:
        raw_path = os.path.join(scratch_dir, "raw.json")
        command = [
            sys.executable, "-m", "pytest", BENCH_DIR,
            # The benchmark modules are named bench_*.py, which plain pytest
            # does not collect from a directory path.
            "-o", "python_files=bench_*.py",
            "--benchmark-only", f"--benchmark-json={raw_path}",
            "-q",
        ]
        if options.select:
            command += ["-k", options.select]
        command += options.pytest_args

        environment = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        environment["PYTHONPATH"] = src + os.pathsep + environment.get("PYTHONPATH", "")
        status = subprocess.run(command, cwd=REPO_ROOT, env=environment).returncode

        if os.path.exists(raw_path) and os.path.getsize(raw_path) > 0:
            with open(raw_path) as handle:
                raw = json.load(handle)
            for record in raw.get("benchmarks", []):
                stats = record.get("stats", {})
                benchmarks.append({
                    "name": record.get("fullname", record.get("name", "unknown")),
                    "wall_s": stats.get("mean"),
                    "min_s": stats.get("min"),
                    "max_s": stats.get("max"),
                    "rounds": stats.get("rounds"),
                })

    snapshot = {
        "date": date,
        "commit": _git_commit(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "pytest_exit_status": status,
        "meta": _parse_meta(options.meta),
        "benchmarks": benchmarks,
    }
    os.makedirs(options.output_dir, exist_ok=True)
    with open(output_path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"wrote {output_path} ({len(benchmarks)} benchmark(s))")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
