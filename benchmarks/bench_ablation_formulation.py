"""Ablation: literal Section 3.2 NLP vs the reduced formulation.

The paper solves an NLP whose variables are the per-sub-instance start/end
times, average/worst workloads and both voltages.  The library's production
path is an equivalent *reduced* formulation over end-times and worst-case
budgets only.  This ablation solves a small frame with both and compares the
predicted average-case energy and the solve time.  Expected shape: both land
in the same optimum region (within tens of percent); the reduced formulation
is the faster and more robust of the two.
"""

import time

from repro.core.task import Task
from repro.offline.acs import ACSScheduler
from repro.offline.evaluation import average_case_energy
from repro.offline.nlp_literal import LiteralNLPScheduler
from repro.offline.nonpreemptive import frame_based_taskset
from repro.offline.wcs import WCSScheduler
from repro.utils.tables import format_markdown_table


def _small_frame():
    tasks = [Task(f"T{i}", period=20, wcec=6000, acec=2400, bcec=1200) for i in range(1, 4)]
    return frame_based_taskset(tasks, 20.0)


def _run_ablation(processor):
    taskset = _small_frame()
    rows = []
    energies = {}
    for name, scheduler in (
        ("wcs (baseline)", WCSScheduler(processor)),
        ("acs reduced", ACSScheduler(processor)),
        ("acs literal (Sec. 3.2)", LiteralNLPScheduler(processor)),
    ):
        started = time.perf_counter()
        schedule = scheduler.schedule(taskset)
        elapsed = time.perf_counter() - started
        energy = average_case_energy(schedule, processor)
        energies[name] = energy
        rows.append([name, energy, elapsed, schedule.metadata.get("fallback", False)])
    return rows, energies


def test_ablation_nlp_formulations(benchmark, run_once, processor):
    rows, energies = run_once(benchmark, _run_ablation, processor)

    print()
    print("Ablation: NLP formulation (3-task frame, average-case energy prediction)")
    print(format_markdown_table(["method", "avg-case energy", "solve time [s]", "fallback"], rows,
                                float_format=".4g"))

    # Both ACS formulations beat the WCS baseline on the average-case objective.
    assert energies["acs reduced"] < energies["wcs (baseline)"]
    assert energies["acs literal (Sec. 3.2)"] <= energies["wcs (baseline)"] * 1.02
    # And they agree with each other within a loose band.
    ratio = energies["acs literal (Sec. 3.2)"] / energies["acs reduced"]
    assert 0.7 < ratio < 1.4
