#!/usr/bin/env python
"""Diff a fresh benchmark snapshot against the committed BENCH_* trajectory.

The CI benchmarks job runs ``benchmarks/run_benchmarks.py`` into a scratch
directory and then calls this script to compare the fresh numbers against the
newest ``BENCH_<date>.json`` committed at the repository root.  Benchmarks are
matched by name; anything more than ``--threshold`` percent slower is
annotated with a GitHub ``::warning::`` line.  The step is informational by
default (shared runners are noisy), so the exit status is 0 unless ``--fail``
is given.

With ``--manifests`` the script instead diffs the *stage timings* recorded in
two stores' run manifests (written by ``repro run`` next to the result store,
see docs/architecture.md "Telemetry and run manifests"): scenarios are matched
by name and each recorded stage (``plan.batched``, ``sim.comparison``, …) is
compared like a benchmark, which localises a regression to plan vs simulate vs
store instead of one end-to-end number.

Usage::

    python benchmarks/compare_bench.py bench-artifacts/BENCH_*.json
    python benchmarks/compare_bench.py fresh.json --baseline BENCH_2026-07-29.json
    python benchmarks/compare_bench.py fresh.json --threshold 10 --fail
    python benchmarks/compare_bench.py --manifests old-store new-store
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_snapshot(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot read benchmark snapshot {path}: {error}")


def newest_committed_baseline(exclude: Path) -> Path | None:
    """The lexically newest BENCH_<date>.json at the repo root (dates sort lexically)."""
    candidates = [
        path
        for path in sorted(REPO_ROOT.glob("BENCH_*.json"))
        if path.resolve() != exclude.resolve()
    ]
    return candidates[-1] if candidates else None


def wall_by_name(snapshot: dict) -> dict:
    return {
        record["name"]: record.get("wall_s")
        for record in snapshot.get("benchmarks", [])
        if record.get("wall_s") is not None
    }


def load_manifests(store: Path) -> dict:
    """``{scenario: manifest}`` read from ``<store>/manifests/*.json``."""
    manifests = {}
    for path in sorted((store / "manifests").glob("*.json")):
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise SystemExit(f"cannot read run manifest {path}: {error}")
        manifests[data.get("scenario", path.stem)] = data
    return manifests


def stage_walls(manifest: dict) -> dict:
    """Stage name -> total seconds, plus the end-to-end ``elapsed`` wall."""
    walls = {
        name: data.get("total_seconds")
        for name, data in manifest.get("stage_timings", {}).items()
        if data.get("total_seconds") is not None
    }
    if manifest.get("elapsed_seconds") is not None:
        walls["elapsed"] = manifest["elapsed_seconds"]
    return walls


def compare_manifests(baseline_store: Path, fresh_store: Path, threshold: float, fail: bool) -> int:
    baseline_manifests = load_manifests(baseline_store)
    fresh_manifests = load_manifests(fresh_store)
    shared_scenarios = sorted(set(baseline_manifests) & set(fresh_manifests))
    if not shared_scenarios:
        print(f"no overlapping scenario manifests between {baseline_store} and {fresh_store}")
        return 0
    print(f"baseline: {baseline_store}")
    print(f"fresh:    {fresh_store}")
    regressions = []
    for scenario in shared_scenarios:
        baseline_walls = stage_walls(baseline_manifests[scenario])
        fresh_walls = stage_walls(fresh_manifests[scenario])
        print(f"{scenario}:")
        for stage in sorted(set(baseline_walls) & set(fresh_walls)):
            base = baseline_walls[stage]
            now = fresh_walls[stage]
            if base <= 0:
                print(f"  ? {stage}: unusable baseline wall time {base:.3f}s (fresh {now:.3f}s)")
                continue
            delta = 100.0 * (now - base) / base
            marker = " "
            if delta > threshold:
                marker = "!"
                regressions.append((f"{scenario}/{stage}", base, now, delta))
            print(f"  {marker} {stage}: {base:.3f}s -> {now:.3f}s ({delta:+.1f}%)")
        only_one_side = sorted(set(baseline_walls) ^ set(fresh_walls))
        if only_one_side:
            print(f"  not compared (recorded on one side only): {', '.join(only_one_side)}")
    for name, base, now, delta in regressions:
        print(
            f"::warning title=stage regression::{name} is {delta:.1f}% slower "
            f"({base:.3f}s -> {now:.3f}s)"
        )
    if regressions and fail:
        return 1
    return 0


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh",
        nargs="?",
        default=None,
        help="snapshot JSON produced by run_benchmarks.py",
    )
    parser.add_argument(
        "--manifests",
        nargs=2,
        default=None,
        metavar=("BASELINE_STORE", "FRESH_STORE"),
        help="compare per-stage timings from two stores' run manifests instead of snapshots",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline snapshot (default: newest committed BENCH_*.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="warn when a benchmark is this many percent slower (default 25)",
    )
    parser.add_argument(
        "--fail",
        action="store_true",
        help="exit non-zero when any benchmark crosses the threshold",
    )
    options = parser.parse_args(argv)

    if options.manifests:
        if options.fresh is not None:
            parser.error("--manifests replaces the snapshot argument; give stores only")
        baseline_store, fresh_store = (Path(store) for store in options.manifests)
        return compare_manifests(baseline_store, fresh_store, options.threshold, options.fail)
    if options.fresh is None:
        parser.error("a snapshot JSON (or --manifests) is required")

    fresh_path = Path(options.fresh)
    fresh = load_snapshot(fresh_path)
    if options.baseline:
        baseline_path = Path(options.baseline)
    else:
        baseline_path = newest_committed_baseline(exclude=fresh_path)
        if baseline_path is None:
            print("no committed BENCH_*.json baseline found; nothing to compare")
            return 0
    baseline = load_snapshot(baseline_path)

    fresh_walls = wall_by_name(fresh)
    baseline_walls = wall_by_name(baseline)
    shared = sorted(set(fresh_walls) & set(baseline_walls))
    if not shared:
        print(f"no overlapping benchmarks between {fresh_path.name} and {baseline_path.name}")
        return 0

    print(f"baseline: {baseline_path.name} (commit {baseline.get('commit', '?')[:12]})")
    print(f"fresh:    {fresh_path.name} (commit {fresh.get('commit', '?')[:12]})")
    regressions = []
    for name in shared:
        base = baseline_walls[name]
        now = fresh_walls[name]
        if base <= 0:
            # A zero/negative baseline makes the percentage meaningless; it
            # used to be silently mapped to 0.0, masking any regression.
            print(f"  ? {name}: unusable baseline wall time {base:.3f}s (fresh {now:.3f}s)")
            print(
                f"::warning title=unusable benchmark baseline::{name} has a "
                f"non-positive baseline wall time ({base:.3f}s) in "
                f"{baseline_path.name}; regression check skipped"
            )
            continue
        delta = 100.0 * (now - base) / base
        marker = " "
        if delta > options.threshold:
            marker = "!"
            regressions.append((name, base, now, delta))
        print(f"  {marker} {name}: {base:.3f}s -> {now:.3f}s ({delta:+.1f}%)")
    skipped = sorted(set(fresh_walls) ^ set(baseline_walls))
    if skipped:
        print(f"not compared (present on one side only): {', '.join(skipped)}")
    dropped = sorted(set(baseline_walls) - set(fresh_walls))
    if dropped:
        # Baseline-only benchmarks mean coverage shrank (renamed, deselected
        # or broken) — a silent drop would hide a benchmark going missing.
        print(
            f"::warning title=benchmarks dropped::{len(dropped)} benchmark(s) in "
            f"{baseline_path.name} missing from the fresh run: {', '.join(dropped)}"
        )

    for name, base, now, delta in regressions:
        print(
            f"::warning title=benchmark regression::{name} is {delta:.1f}% slower "
            f"than {baseline_path.name} ({base:.3f}s -> {now:.3f}s)"
        )
    if regressions and options.fail:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
