#!/usr/bin/env python3
"""Partition the CNC and GAP case studies across 4 cores and compare heuristics.

Partitioned multiprocessor DVS in three steps, all on top of the single-core
pipeline:

1. **allocate** — a `Partitioner` assigns every task to one core (here the
   worst-fit-decreasing and energy-aware heuristics, against first-fit as the
   packing extreme);
2. **plan** — `plan_multicore` runs the paper's ACS offline NLP independently
   on every core's task subset;
3. **simulate** — `MulticoreRunner` drives one compiled single-core runner
   per core and aggregates energy, utilisation and deadline misses.

The point the table makes: with a quadratic energy law, *balancing* slack
across cores (wfd/energy) beats *packing* tasks onto few cores (ffd) by a
wide margin, because every core's NLP can stretch its sub-instances further.

Run with:  python examples/multicore_partitioning.py [--quick]
"""

import argparse

from repro import (
    MulticoreProblem,
    MulticoreRunner,
    SimulationConfig,
    cnc_taskset,
    gap_taskset,
    ideal_processor,
    plan_multicore,
)
from repro.utils.tables import format_markdown_table

N_CORES = 4
PARTITIONERS = ("ffd", "wfd", "energy")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smoke-test size (fewer hyperperiods, smaller GAP)")
    args = parser.parse_args()
    n_hyperperiods = 5 if args.quick else 50
    gap_tasks = 6 if args.quick else 8

    processor = ideal_processor(fmax=1000.0)
    applications = (
        ("cnc", cnc_taskset(processor, bcec_wcec_ratio=0.5)),
        ("gap", gap_taskset(processor, bcec_wcec_ratio=0.5, n_tasks=gap_tasks)),
    )

    rows = []
    for app_name, taskset in applications:
        for partitioner in PARTITIONERS:
            problem = MulticoreProblem(
                taskset=taskset,
                processor=processor,
                n_cores=N_CORES,
                partitioner=partitioner,
                method="acs",
            )
            plan = plan_multicore(problem)
            runner = MulticoreRunner(
                processor, policy="greedy",
                config=SimulationConfig(n_hyperperiods=n_hyperperiods),
            )
            result = runner.run(plan, seed=2005)
            used = len(plan.partition.used_cores())
            rows.append([
                app_name, partitioner, used,
                max(result.core_utilizations),
                result.mean_energy_per_hyperperiod,
                result.miss_count,
            ])

    print(f"{N_CORES}-core partitioned DVS, ACS per core, greedy reclamation, "
          f"{n_hyperperiods} hyperperiods")
    print()
    print(format_markdown_table(
        ["application", "partitioner", "used cores", "max core utilisation",
         "energy / hyperperiod", "misses"],
        rows))
    print()
    print("Balancing heuristics (wfd, energy) spread slack evenly and let every "
          "core run slower; first-fit packs tasks onto few cores and leaves the "
          "quadratic energy saving on the table.")


if __name__ == "__main__":
    main()
