#!/usr/bin/env python3
"""Compare online slack-reclamation policies on the same static schedule.

The paper uses greedy reclamation; this example shows how much of the energy
saving comes from the static ACS schedule versus the online policy, by running
the same ACS schedule with three different policies (and WCS/greedy as the
reference point):

* ``static``       — run at the statically planned worst-case speed (no reclamation);
* ``greedy``       — the paper's policy (stretch to the sub-instance end-time);
* ``lookahead``    — stretch the job's remaining work to its last planned end-time;
* ``proportional`` — stretch the whole job's remaining work to the job deadline.

Run with:  python examples/slack_policy_comparison.py
"""

import numpy as np

from repro import (
    ACSScheduler,
    DVSSimulator,
    NormalWorkload,
    SimulationConfig,
    Task,
    TaskSet,
    WCSScheduler,
    available_policies,
    ideal_processor,
)
from repro.utils.tables import format_markdown_table


def main() -> None:
    processor = ideal_processor(fmax=1000.0)
    taskset = TaskSet([
        Task("camera", period=10, wcec=3000, acec=1650, bcec=300),
        Task("planner", period=20, wcec=8000, acec=4400, bcec=800),
        Task("logger", period=40, wcec=6000, acec=3300, bcec=600),
    ], name="policy-demo")

    acs_schedule = ACSScheduler(processor).schedule(taskset)
    wcs_schedule = WCSScheduler(processor).schedule(taskset)
    workload = NormalWorkload()

    rows = []
    for schedule, schedule_name in ((wcs_schedule, "wcs"), (acs_schedule, "acs")):
        for policy_name in available_policies():
            simulator = DVSSimulator(
                processor,
                policy=policy_name,
                config=SimulationConfig(n_hyperperiods=100),
            )
            result = simulator.run(schedule, workload, np.random.default_rng(7))
            rows.append([schedule_name, policy_name,
                         result.mean_energy_per_hyperperiod, result.miss_count])

    print(format_markdown_table(
        ["static schedule", "online policy", "energy / hyperperiod", "deadline misses"], rows))
    print()
    print("Reading the table: greedy reclamation on ACS end-times (the paper's combination) "
          "is the cheapest deadline-safe point; lookahead and proportional can undercut it "
          "by stretching work further, but they do not preserve the worst-case guarantee "
          "(watch the miss column).")


if __name__ == "__main__":
    main()
