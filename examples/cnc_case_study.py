#!/usr/bin/env python3
"""Case study: the CNC machine controller (Figure 6(b), CNC series).

Reproduces the paper's real-life experiment: take the published CNC controller
task set, rescale it to 70 % worst-case utilisation, sweep the BCEC/WCEC ratio
and report how much runtime energy the ACS schedule saves over the WCS
baseline under greedy slack reclamation.

Run with:  python examples/cnc_case_study.py
"""

from repro.experiments.harness import ComparisonConfig, compare_schedulers, default_schedulers
from repro.power.presets import ideal_processor
from repro.utils.tables import format_markdown_table
from repro.workloads.cnc import cnc_taskset


def main() -> None:
    processor = ideal_processor()
    rows = []
    for ratio in (0.1, 0.3, 0.5, 0.7, 0.9):
        taskset = cnc_taskset(processor, target_utilization=0.7, bcec_wcec_ratio=ratio)
        result = compare_schedulers(
            taskset, processor, default_schedulers(processor),
            ComparisonConfig(n_hyperperiods=50, seed=2005),
        )
        rows.append([
            ratio,
            result.energy("wcs"),
            result.energy("acs"),
            result.improvement_over_baseline("acs"),
            sum(o.simulation.miss_count for o in result.outcomes.values()),
        ])
        print(f"ratio {ratio:.1f}: ACS saves {rows[-1][3]:.1f}% over WCS")

    print()
    print(format_markdown_table(
        ["BCEC/WCEC", "WCS energy", "ACS energy", "improvement %", "misses"], rows))
    print()
    print("Paper (Fig. 6b, CNC): ≈41 % at ratio 0.1, falling towards 0 % at 0.9.")


if __name__ == "__main__":
    main()
