#!/usr/bin/env python3
"""Random task-set sweep (a scaled-down Figure 6(a)).

Generates random task sets of increasing size at 70 % worst-case utilisation,
schedules each with ACS and WCS, simulates both under the truncated-normal
workload and prints the mean energy improvement per (task count, BCEC/WCEC
ratio) point — the series of the paper's Figure 6(a).

Run with:  python examples/random_taskset_sweep.py            (a few minutes)
           python examples/random_taskset_sweep.py --quick    (seconds)
"""

import argparse

from repro.experiments.figure6a import Figure6aConfig, run_figure6a


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="tiny sample sizes for a fast demo")
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (any value gives identical results)")
    args = parser.parse_args()

    if args.quick:
        config = Figure6aConfig(task_counts=(2, 4), bcec_wcec_ratios=(0.1, 0.9),
                                tasksets_per_point=2, hyperperiods_per_taskset=10,
                                seed=args.seed, jobs=args.jobs)
    else:
        config = Figure6aConfig(task_counts=(2, 4, 6), bcec_wcec_ratios=(0.1, 0.5, 0.9),
                                tasksets_per_point=3, hyperperiods_per_taskset=20,
                                seed=args.seed, jobs=args.jobs)

    result = run_figure6a(config, verbose=True)
    print()
    print("Improvement of ACS over WCS (percent, runtime energy):")
    print(result.to_markdown())
    print()
    print("Paper (Fig. 6a): improvement grows with the task count, peaks ≈60 % at ratio 0.1, "
          "and vanishes as the ratio approaches 1.")


if __name__ == "__main__":
    main()
