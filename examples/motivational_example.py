#!/usr/bin/env python3
"""The paper's motivational example (Table 1, Figures 1 and 2).

Three tasks share a 20 ms frame.  The energy-optimal schedule for the worst
case stretches each task over an equal share of the frame (end-times
6.7 / 13.3 / 20 ms — Figure 1a).  Because the tasks usually need far fewer
cycles, greedy slack reclamation already helps (Figure 1b) — but end-times
chosen with the *average* case in mind (the ACS idea, Figure 2) do noticeably
better, at the price of a higher energy bill in the rare worst case.

Run with:  python examples/motivational_example.py
"""

from repro.experiments.motivation import MotivationConfig, run_motivation


def main() -> None:
    config = MotivationConfig()
    result = run_motivation(config)

    print("Reconstructed motivational example (three tasks, 20 ms frame)")
    print()
    print(result.to_markdown())
    print()
    print(f"WCS end-times (Fig. 1):  {[round(e, 2) for e in result.wcs_end_times]} ms")
    print(f"ACS end-times (Fig. 2):  {[round(e, 2) for e in result.acs_end_times]} ms")
    print()
    print(f"Average-case energy reduction of the ACS end-times: "
          f"{result.improvement_average_case_percent:.1f}%  (paper: ≈24 %)")
    print(f"Worst-case energy penalty of the ACS end-times:     "
          f"{result.penalty_worst_case_percent:.1f}%  (paper: ≈33 %)")


if __name__ == "__main__":
    main()
