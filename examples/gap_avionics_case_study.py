#!/usr/bin/env python3
"""Case study: the Generic Avionics Platform (Figure 6(b), GAP series) with schedule visualisation.

Schedules the GAP avionics task set with ACS and WCS, prints an ASCII Gantt
chart of the ACS static schedule and of one simulated hyperperiod (so the
preemptions and the reclaimed slack are visible), and reports the runtime
energy improvement.  Also demonstrates saving the deployable schedule to JSON.

Run with:  python examples/gap_avionics_case_study.py
"""

import numpy as np

from repro import (
    ACSScheduler,
    DVSSimulator,
    NormalWorkload,
    SimulationConfig,
    WCSScheduler,
    ideal_processor,
    improvement_percent,
)
from repro.reporting import render_static_schedule, render_timeline, save_json, schedule_to_dict
from repro.workloads.gap import gap_taskset


def main() -> None:
    processor = ideal_processor()
    # The eight highest-rate GAP tasks keep the example fast; drop n_tasks for the full set.
    taskset = gap_taskset(processor, target_utilization=0.7, bcec_wcec_ratio=0.1, n_tasks=8)
    print(taskset.describe())
    print()

    acs = ACSScheduler(processor).schedule(taskset)
    wcs = WCSScheduler(processor).schedule(taskset)

    print(render_static_schedule(acs, width=100))
    print()

    simulator = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=1, seed=3,
                                                                record_timeline=True))
    trace = simulator.run(acs, NormalWorkload(), np.random.default_rng(3))
    print(render_timeline(trace.timeline, processor, width=100))
    print()

    comparison = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=50))
    acs_energy = comparison.run(acs, NormalWorkload(), np.random.default_rng(1)).mean_energy_per_hyperperiod
    wcs_energy = comparison.run(wcs, NormalWorkload(), np.random.default_rng(1)).mean_energy_per_hyperperiod
    print(f"WCS energy per hyperperiod: {wcs_energy:,.0f}")
    print(f"ACS energy per hyperperiod: {acs_energy:,.0f}")
    print(f"improvement: {improvement_percent(wcs_energy, acs_energy):.1f}%  (paper, full GAP set: ≈30% at ratio 0.1)")

    path = save_json(schedule_to_dict(acs), "gap_acs_schedule.json")
    print(f"deployable static schedule written to {path}")


if __name__ == "__main__":
    main()
