#!/usr/bin/env python3
"""Quickstart: schedule a small task set with ACS and WCS and compare runtime energy.

This is the minimal end-to-end use of the library:

1. describe the periodic task set (periods, worst/average/best-case cycles);
2. pick a DVS processor model;
3. compute the two static voltage schedules — the paper's ACS and the
   worst-case-only WCS baseline;
4. simulate both under the same randomly varying workload with greedy slack
   reclamation and compare the energy.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ACSScheduler,
    DVSSimulator,
    NormalWorkload,
    SimulationConfig,
    Task,
    TaskSet,
    WCSScheduler,
    ideal_processor,
    improvement_percent,
)


def main() -> None:
    # 1. The task set: three periodic tasks whose actual execution cycles are
    #    usually far below the worst case (bcec/wcec = 0.2).
    taskset = TaskSet([
        Task("control_loop", period=10, wcec=3000, acec=1800, bcec=600),
        Task("sensor_fusion", period=20, wcec=8000, acec=4400, bcec=1600),
        Task("telemetry", period=40, wcec=6000, acec=3300, bcec=1200),
    ], name="quickstart")

    # 2. The processor: frequency proportional to voltage, 1000 cycles/ms at 5 V.
    processor = ideal_processor(fmax=1000.0)
    print(processor.describe())
    print(taskset.describe())
    print()

    # 3. Offline voltage scheduling.
    acs_schedule = ACSScheduler(processor).schedule(taskset)
    wcs_schedule = WCSScheduler(processor).schedule(taskset)
    print("ACS static schedule (end-times drive the online DVS):")
    print(acs_schedule.describe())
    print()

    # 4. Online simulation with greedy slack reclamation, identical workloads.
    simulator = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=200))
    workload = NormalWorkload()
    acs_result = simulator.run(acs_schedule, workload, np.random.default_rng(1))
    wcs_result = simulator.run(wcs_schedule, workload, np.random.default_rng(1))

    print(f"WCS runtime energy per hyperperiod: {wcs_result.mean_energy_per_hyperperiod:,.0f}")
    print(f"ACS runtime energy per hyperperiod: {acs_result.mean_energy_per_hyperperiod:,.0f}")
    print(f"deadline misses: WCS={wcs_result.miss_count}, ACS={acs_result.miss_count}")
    improvement = improvement_percent(wcs_result.mean_energy_per_hyperperiod,
                                      acs_result.mean_energy_per_hyperperiod)
    print(f"energy reduction of ACS over WCS: {improvement:.1f}%")


if __name__ == "__main__":
    main()
