"""Run manifests: one JSON document per scenario run, next to the store.

A manifest answers "what ran, from which config, at which revision, and
where did the time go" without replaying anything: config hash, git
revision, unit accounting, stage timings aggregated from the telemetry
spans, and the full counter dump.  ``repro run`` writes one per scenario
under ``<store>/manifests/`` (latest run wins), and ``repro stats``
renders them.

The config hash is a SHA-256 over the canonical-JSON scenario document —
the same canonicalisation discipline as the result store's signature
keys, but deliberately *separate* from them: manifests describe runs,
they never feed back into store addressing, and telemetry state never
enters a store signature.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

__all__ = [
    "MANIFEST_FORMAT",
    "config_hash",
    "build_manifest",
    "write_manifest",
    "manifest_path",
    "read_manifests",
]

MANIFEST_FORMAT = 1


def config_hash(document: Mapping[str, Any]) -> str:
    """SHA-256 of the canonical-JSON form of a scenario document."""
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def git_revision(cwd: Optional[Union[str, Path]] = None) -> str:
    """Current ``git`` commit hash, or ``"unknown"`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def build_manifest(
    *,
    scenario: str,
    config: Mapping[str, Any],
    computed: int,
    skipped: int,
    elapsed_seconds: float,
    stage_timings: Optional[Mapping[str, Mapping[str, float]]] = None,
    counters: Optional[Mapping[str, int]] = None,
) -> Dict[str, Any]:
    """Assemble a manifest document (plain JSON-serialisable data).

    ``stage_timings``/``counters`` come from an enabled telemetry
    collector; with telemetry off the manifest still records the config
    hash, revision, unit accounting, and wall-clock.
    """
    manifest: Dict[str, Any] = {
        "manifest_format": MANIFEST_FORMAT,
        "scenario": scenario,
        "config_hash": config_hash(config),
        "git_rev": git_revision(),
        "created_unix": time.time(),
        "computed": computed,
        "skipped": skipped,
        "elapsed_seconds": elapsed_seconds,
    }
    if stage_timings:
        manifest["stage_timings"] = {name: dict(row) for name, row in stage_timings.items()}
    if counters:
        manifest["counters"] = dict(counters)
    return manifest


def manifest_path(store_root: Union[str, Path], scenario: str) -> Path:
    return Path(store_root) / "manifests" / f"{scenario}.json"


def write_manifest(store_root: Union[str, Path], manifest: Mapping[str, Any]) -> Path:
    """Atomically write ``<store>/manifests/<scenario>.json`` (latest wins)."""
    target = manifest_path(store_root, str(manifest["scenario"]))
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f".tmp-{os.getpid()}-{target.name}")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, target)
    return target


def read_manifests(store_root: Union[str, Path]) -> List[Dict[str, Any]]:
    """All manifests under a store, sorted by scenario name."""
    directory = Path(store_root) / "manifests"
    if not directory.is_dir():
        return []
    manifests = []
    for path in sorted(directory.glob("*.json")):
        manifests.append(json.loads(path.read_text(encoding="utf-8")))
    return manifests
