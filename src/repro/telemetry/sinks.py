"""Pluggable telemetry sinks.

A sink receives a finished run's :meth:`Telemetry.snapshot` dictionary.
Three implementations cover the pipeline's needs:

* :class:`MemorySink` — keeps snapshots in a list; used by tests.
* :class:`JsonlSink` — appends one JSON line per span / counter /
  observation (plus a ``meta`` header line), so a single file can hold
  many runs and stream-oriented tooling can tail it.  :func:`read_jsonl`
  reconstructs the snapshots, round-tripping bitwise through
  ``json`` (integers stay integers; ``perf_counter_ns`` values are
  exact).
* :class:`SummarySink` — renders the end-of-run stderr table (stage
  timings plus counters) without touching stdout, whose byte-exact
  report format the scenario CLI owns.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

from ..utils.tables import format_markdown_table

__all__ = [
    "MemorySink",
    "JsonlSink",
    "SummarySink",
    "read_jsonl",
    "render_summary",
]


class MemorySink:
    """Collects snapshots in memory (test double)."""

    def __init__(self) -> None:
        self.snapshots: List[Dict[str, Any]] = []

    def emit(self, snapshot: Dict[str, Any], *, scenario: Optional[str] = None) -> None:
        record = dict(snapshot)
        if scenario is not None:
            record["scenario"] = scenario
        self.snapshots.append(record)


class JsonlSink:
    """Appends snapshots to a JSONL file, one record per line.

    Each ``emit`` writes a ``{"type": "meta", ...}`` header followed by
    ``span`` / ``counter`` / ``observation`` lines.  Appending (rather
    than overwriting) lets one ``--telemetry PATH`` file accumulate a
    multi-scenario invocation.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def emit(self, snapshot: Dict[str, Any], *, scenario: Optional[str] = None) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps({"type": "meta", "scenario": scenario}, sort_keys=True)]
        for span in snapshot.get("spans", []):
            lines.append(json.dumps({"type": "span", **span}, sort_keys=True))
        for name, value in snapshot.get("counters", {}).items():
            lines.append(
                json.dumps({"type": "counter", "name": name, "value": value}, sort_keys=True)
            )
        for name, values in snapshot.get("observations", {}).items():
            lines.append(
                json.dumps({"type": "observation", "name": name, "values": values}, sort_keys=True)
            )
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a :class:`JsonlSink` file back into snapshot dictionaries.

    Returns one ``{"scenario", "spans", "counters", "observations"}``
    record per ``meta`` header encountered, in file order.
    """
    snapshots: List[Dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            record = json.loads(raw)
            kind = record.pop("type")
            if kind == "meta":
                snapshots.append(
                    {
                        "scenario": record.get("scenario"),
                        "spans": [],
                        "counters": {},
                        "observations": {},
                    }
                )
            elif not snapshots:
                raise ValueError(f"{path}: {kind!r} record before any meta header")
            elif kind == "span":
                snapshots[-1]["spans"].append(record)
            elif kind == "counter":
                snapshots[-1]["counters"][record["name"]] = record["value"]
            elif kind == "observation":
                snapshots[-1]["observations"][record["name"]] = record["values"]
            else:
                raise ValueError(f"{path}: unknown telemetry record type {kind!r}")
    return snapshots


def aggregate_spans(spans: List[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Aggregate span rows by name into ``{name: {count, total_seconds}}``."""
    timings: Dict[str, Dict[str, float]] = {}
    for span in spans:
        row = timings.setdefault(span["name"], {"count": 0, "total_seconds": 0.0})
        row["count"] += 1
        row["total_seconds"] += (span["end_ns"] - span["start_ns"]) / 1e9
    return dict(sorted(timings.items()))


def render_summary(snapshot: Dict[str, Any], *, scenario: Optional[str] = None) -> str:
    """Markdown tables for stage timings and counters."""
    parts: List[str] = []
    title = f"telemetry summary — {scenario}" if scenario else "telemetry summary"
    parts.append(title)
    timings = aggregate_spans(snapshot.get("spans", []))
    if timings:
        rows = [
            [name, row["count"], f"{row['total_seconds']:.6f}"] for name, row in timings.items()
        ]
        parts.append(format_markdown_table(["stage", "spans", "total_s"], rows))
    counters = snapshot.get("counters", {})
    if counters:
        rows = [[name, value] for name, value in sorted(counters.items())]
        parts.append(format_markdown_table(["counter", "value"], rows))
    if not timings and not counters:
        parts.append("(no telemetry recorded)")
    return "\n".join(parts)


class SummarySink:
    """Writes :func:`render_summary` to a stream (stderr by default)."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def emit(self, snapshot: Dict[str, Any], *, scenario: Optional[str] = None) -> None:
        print(render_summary(snapshot, scenario=scenario), file=self.stream)
