"""Telemetry collector: hierarchical spans, counters, and gauges.

The pipeline is instrumented at stage granularity (a scenario run, a
planning wave, a batched simulation, a store lookup) — never inside the
per-step hot loops.  Instrumentation sites call :func:`current` and talk
to whatever collector is active:

* :class:`NullTelemetry` (the default) — every operation is a no-op and,
  crucially, allocates **zero** telemetry objects.  ``span()`` hands back
  a shared singleton context manager; ``count()``/``observe()`` return
  immediately.  ``tests/telemetry/test_telemetry_overhead.py`` proves
  this with raising-tripwire constructors, mirroring the PR-7 trace
  discipline.
* :class:`Telemetry` — records :class:`Span` rows (``perf_counter_ns``
  start/stop with parent links), monotonic counters, and value
  observations (gauges), all thread-safe so the batched-solver worker
  threads can report without coordination.

Timing sites that must keep producing a wall-clock number even when
telemetry is off (``elapsed_seconds`` result fields) use ``stage()``,
which always returns a :class:`Stopwatch`.  The enabled path records the
stage as a span whose duration is *bitwise-derivable* from the span row:
``elapsed_seconds == (end_ns - start_ns) / 1e9`` exactly.

Telemetry never enters store signatures: enabling it changes neither
result payloads nor store keys (see docs/scenarios.md).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter_ns
from typing import Dict, Iterator, List, Optional, Union

__all__ = [
    "Span",
    "Stopwatch",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "current",
    "activate",
    "deactivate",
    "using",
]


@dataclass(frozen=True)
class Span:
    """One completed timed region.

    ``index`` is the span's position in the recording order; ``parent``
    is the index of the enclosing span on the same thread (or ``None``
    for a root), giving the ``scenario.run > plan.batched > solve.wave``
    hierarchy without any tree bookkeeping at record time.
    """

    name: str
    index: int
    parent: Optional[int]
    start_ns: int
    end_ns: int

    @property
    def elapsed_seconds(self) -> float:
        return (self.end_ns - self.start_ns) / 1e9

    def to_dict(self) -> Dict[str, Union[str, int, None]]:
        return {
            "name": self.name,
            "index": self.index,
            "parent": self.parent,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
        }


class Stopwatch:
    """Bare ``perf_counter_ns`` context manager with no recording.

    This is what ``NullTelemetry.stage()`` returns: the pre-telemetry
    code paths measured ``elapsed_seconds`` with an inline
    ``time.perf_counter()`` pair, and the stopwatch is that pair as an
    object.  It is deliberately *not* a telemetry record — one is
    allocated per run/sweep, never per hot-loop iteration — so the
    allocation tripwires exclude it.
    """

    __slots__ = ("start_ns", "end_ns")

    def __init__(self) -> None:
        self.start_ns = 0
        self.end_ns = 0

    def __enter__(self) -> "Stopwatch":
        self.start_ns = perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end_ns = perf_counter_ns()

    @property
    def elapsed_seconds(self) -> float:
        return (self.end_ns - self.start_ns) / 1e9


class SpanHandle(Stopwatch):
    """A stopwatch that records a :class:`Span` into its collector."""

    __slots__ = ("_telemetry", "_name", "_parent")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        super().__init__()
        self._telemetry = telemetry
        self._name = name
        self._parent: Optional[int] = None

    def __enter__(self) -> "SpanHandle":
        self._parent = self._telemetry._push()
        self.start_ns = perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end_ns = perf_counter_ns()
        self._telemetry._pop(self._name, self._parent, self.start_ns, self.end_ns)


class _NullSpan:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


#: Singleton handed out by ``NullTelemetry.span`` — entering a disabled
#: span allocates nothing.
_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Disabled collector: every operation is a no-op.

    ``span`` returns the shared :data:`_NULL_SPAN` singleton and
    ``count``/``observe`` return immediately, so instrumentation sites
    cost one attribute lookup and one call when telemetry is off and
    allocate no objects (proven by the tripwire tests).
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def stage(self, name: str) -> Stopwatch:
        return Stopwatch()

    def count(self, name: str, value: int = 1) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None


class Telemetry:
    """Recording collector: spans with parent links, counters, gauges.

    Thread-safe: the batched NLP coordinator's worker threads and a
    process's main thread can record concurrently.  Span parent links
    are per-thread (each thread keeps its own stack), so a worker's
    spans root at the wave they run under without cross-thread races.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_index = -1
        self.spans: List[Span] = []
        self.counters: Dict[str, int] = {}
        self.observations: Dict[str, List[float]] = {}

    # -- spans ---------------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self) -> Optional[int]:
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            self._next_index += 1
            index = self._next_index
        stack.append(index)
        return parent

    def _pop(self, name: str, parent: Optional[int], start_ns: int, end_ns: int) -> None:
        stack = self._stack()
        index = stack.pop()
        with self._lock:
            self.spans.append(Span(name, index, parent, start_ns, end_ns))

    def span(self, name: str) -> SpanHandle:
        return SpanHandle(self, name)

    def stage(self, name: str) -> SpanHandle:
        """Like :meth:`span`, but guaranteed to expose ``elapsed_seconds``.

        Sites that feed a result field use this so the same expression —
        ``(end_ns - start_ns) / 1e9`` — produces both the recorded span
        duration and the result's ``elapsed_seconds`` (bitwise equal).
        """
        return SpanHandle(self, name)

    # -- counters / gauges --------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.observations.setdefault(name, []).append(value)

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view of everything recorded so far."""
        with self._lock:
            return {
                "spans": [span.to_dict() for span in sorted(self.spans, key=lambda s: s.index)],
                "counters": dict(sorted(self.counters.items())),
                "observations": {k: list(v) for k, v in sorted(self.observations.items())},
            }

    def stage_timings(self) -> Dict[str, Dict[str, float]]:
        """Aggregate spans by name: ``{name: {count, total_seconds}}``."""
        with self._lock:
            spans = list(self.spans)
        timings: Dict[str, Dict[str, float]] = {}
        for span in spans:
            row = timings.setdefault(span.name, {"count": 0, "total_seconds": 0.0})
            row["count"] += 1
            row["total_seconds"] += span.elapsed_seconds
        return dict(sorted(timings.items()))


#: The process-wide default collector.  Instrumentation sites resolve it
#: through :func:`current` at call time, so worker processes spawned by
#: the multicore planner / comparison pool start disabled (telemetry
#: does not propagate across process boundaries; pooled counters stay in
#: the workers — a documented limitation until the sharded server adds a
#: return channel).
NULL_TELEMETRY = NullTelemetry()

_ACTIVE: Union[Telemetry, NullTelemetry] = NULL_TELEMETRY


def current() -> Union[Telemetry, NullTelemetry]:
    """The active collector (the shared ``NullTelemetry`` by default)."""
    return _ACTIVE


def activate(telemetry: Telemetry) -> None:
    """Install *telemetry* as the process-wide active collector."""
    global _ACTIVE
    _ACTIVE = telemetry


def deactivate() -> None:
    """Restore the disabled default collector."""
    global _ACTIVE
    _ACTIVE = NULL_TELEMETRY


@contextmanager
def using(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Scope *telemetry* as the active collector for a ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous
