"""Pipeline telemetry: spans, counters, sinks, and run manifests.

Default-off observability for the plan → simulate → store pipeline.
Instrumentation sites resolve the active collector via
:func:`~repro.telemetry.core.current`; the disabled path (a process-wide
``NullTelemetry``) is proven allocation-free and bitwise-inert by
``tests/telemetry/``.  Telemetry never enters result-store signatures.
"""

from .core import (
    NULL_TELEMETRY,
    NullTelemetry,
    Span,
    Stopwatch,
    Telemetry,
    activate,
    current,
    deactivate,
    using,
)
from .manifest import (
    MANIFEST_FORMAT,
    build_manifest,
    config_hash,
    manifest_path,
    read_manifests,
    write_manifest,
)
from .sinks import (
    JsonlSink,
    MemorySink,
    SummarySink,
    aggregate_spans,
    read_jsonl,
    render_summary,
)

__all__ = [
    "Span",
    "Stopwatch",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "current",
    "activate",
    "deactivate",
    "using",
    "MemorySink",
    "JsonlSink",
    "SummarySink",
    "read_jsonl",
    "render_summary",
    "aggregate_spans",
    "MANIFEST_FORMAT",
    "config_hash",
    "build_manifest",
    "write_manifest",
    "manifest_path",
    "read_manifests",
]
