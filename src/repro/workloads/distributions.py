"""Execution-cycle (workload) distributions.

The paper's experiments draw the actual number of execution cycles of every
job from a normal distribution truncated to ``[BCEC, WCEC]`` whose mean is the
ACEC; the ratio ``BCEC/WCEC`` is swept from 0.1 (highly variable workload) to
0.9 (nearly fixed workload).  Additional distributions are provided for
ablations and for the property-based tests: uniform, fixed (always ACEC or
always WCEC) and bimodal (mostly short with occasional worst-case bursts — the
"small number of cycles but occasionally a large number" scenario the paper's
abstract motivates).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..core.errors import WorkloadError
from ..core.task import Task

__all__ = [
    "WorkloadModel",
    "NormalWorkload",
    "UniformWorkload",
    "FixedWorkload",
    "BimodalWorkload",
    "get_workload_model",
]


class WorkloadModel(ABC):
    """Draws the actual execution cycles of a job of a given task."""

    #: short name used in experiment reports
    name: str = "abstract"

    @abstractmethod
    def sample(self, rng: np.random.Generator, task: Task) -> float:
        """Return the cycles the next job of ``task`` actually requires (within [BCEC, WCEC])."""

    def expected(self, task: Task) -> float:
        """Expected cycles per job (defaults to the task's ACEC)."""
        return task.acec


@dataclass
class NormalWorkload(WorkloadModel):
    """Truncated normal distribution between BCEC and WCEC (the paper's model).

    Parameters
    ----------
    sigma_fraction:
        Standard deviation as a fraction of the ``WCEC − BCEC`` range.  The
        default of 1/6 puts ±3σ at the interval ends, the usual convention for
        "normal between best and worst case".
    """

    sigma_fraction: float = 1.0 / 6.0
    name: str = "normal"

    def __post_init__(self) -> None:
        if self.sigma_fraction <= 0:
            raise WorkloadError("sigma_fraction must be positive")

    def sample(self, rng: np.random.Generator, task: Task) -> float:
        span = task.wcec - task.bcec
        if span <= 0:
            return task.wcec
        mean = task.acec
        sigma = self.sigma_fraction * span
        value = rng.normal(mean, sigma)
        return float(np.clip(value, task.bcec, task.wcec))


@dataclass
class UniformWorkload(WorkloadModel):
    """Uniform distribution between BCEC and WCEC."""

    name: str = "uniform"

    def sample(self, rng: np.random.Generator, task: Task) -> float:
        if task.wcec <= task.bcec:
            return task.wcec
        return float(rng.uniform(task.bcec, task.wcec))

    def expected(self, task: Task) -> float:
        return 0.5 * (task.bcec + task.wcec)


@dataclass
class FixedWorkload(WorkloadModel):
    """Deterministic workload: always the ACEC, BCEC or WCEC.

    ``mode`` is one of ``"acec"`` (default), ``"bcec"`` or ``"wcec"``.  The
    WCEC mode is what the worst-case feasibility tests simulate.
    """

    mode: str = "acec"
    name: str = "fixed"

    def __post_init__(self) -> None:
        if self.mode not in ("acec", "bcec", "wcec"):
            raise WorkloadError(f"mode must be 'acec', 'bcec' or 'wcec', got {self.mode!r}")

    def sample(self, rng: np.random.Generator, task: Task) -> float:
        return {"acec": task.acec, "bcec": task.bcec, "wcec": task.wcec}[self.mode]

    def expected(self, task: Task) -> float:
        return {"acec": task.acec, "bcec": task.bcec, "wcec": task.wcec}[self.mode]


@dataclass
class BimodalWorkload(WorkloadModel):
    """Mostly-short jobs with occasional worst-case bursts.

    With probability ``burst_probability`` a job takes its WCEC; otherwise it
    takes the BCEC (plus small jitter).  This is the "small number of cycles
    but occasionally a large number" pattern from the paper's abstract, where
    ACS has the most room to win.
    """

    burst_probability: float = 0.1
    jitter_fraction: float = 0.05
    name: str = "bimodal"

    def __post_init__(self) -> None:
        if not 0.0 <= self.burst_probability <= 1.0:
            raise WorkloadError("burst_probability must lie in [0, 1]")
        if self.jitter_fraction < 0:
            raise WorkloadError("jitter_fraction must be non-negative")

    def sample(self, rng: np.random.Generator, task: Task) -> float:
        if rng.random() < self.burst_probability:
            return task.wcec
        span = task.wcec - task.bcec
        jitter = rng.uniform(0.0, self.jitter_fraction * span) if span > 0 else 0.0
        return float(min(task.bcec + jitter, task.wcec))

    def expected(self, task: Task) -> float:
        span = task.wcec - task.bcec
        base = task.bcec + 0.5 * self.jitter_fraction * span
        return self.burst_probability * task.wcec + (1.0 - self.burst_probability) * base


_MODELS = {
    "normal": NormalWorkload,
    "uniform": UniformWorkload,
    "fixed": FixedWorkload,
    "bimodal": BimodalWorkload,
}


def get_workload_model(name: str, **kwargs) -> WorkloadModel:
    """Instantiate a workload model by name (``"normal"``, ``"uniform"``, ``"fixed"``, ``"bimodal"``)."""
    try:
        factory = _MODELS[name.lower()]
    except KeyError:
        raise WorkloadError(f"unknown workload model {name!r}; known: {sorted(_MODELS)}") from None
    return factory(**kwargs)
