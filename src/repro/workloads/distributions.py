"""Execution-cycle (workload) distributions.

The paper's experiments draw the actual number of execution cycles of every
job from a normal distribution truncated to ``[BCEC, WCEC]`` whose mean is the
ACEC; the ratio ``BCEC/WCEC`` is swept from 0.1 (highly variable workload) to
0.9 (nearly fixed workload).  Additional distributions are provided for
ablations and for the property-based tests: uniform, fixed (always ACEC or
always WCEC) and bimodal (mostly short with occasional worst-case bursts — the
"small number of cycles but occasionally a large number" scenario the paper's
abstract motivates).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.errors import WorkloadError
from ..core.task import Task

__all__ = [
    "WorkloadModel",
    "NormalWorkload",
    "UniformWorkload",
    "FixedWorkload",
    "BimodalWorkload",
    "get_workload_model",
]


class WorkloadModel(ABC):
    """Draws the actual execution cycles of a job of a given task."""

    #: short name used in experiment reports
    name: str = "abstract"

    @abstractmethod
    def sample(self, rng: np.random.Generator, task: Task) -> float:
        """Return the cycles the next job of ``task`` actually requires (within [BCEC, WCEC])."""

    def sample_batch(self, rng: np.random.Generator, tasks: Sequence[Task],
                     n: int = 1) -> np.ndarray:
        """Draw the actual cycles of ``n`` consecutive hyperperiods in one call.

        Returns an ``(n, len(tasks))`` array whose row ``i`` holds the draws of
        hyperperiod ``i``, one per task in ``tasks`` (one entry per *job*: the
        caller passes the per-job task list of the hyperperiod, in job order).

        **Determinism contract:** the draws consume the generator stream in
        exactly the order of the nested scalar loops ``for i in range(n): for
        task in tasks: sample(rng, task)`` and produce bitwise-identical
        values, so a batched caller and a per-job caller starting from the
        same generator state obtain the same realisations and leave the
        generator in the same state.  Vectorized overrides must preserve this
        (see the tests in ``tests/workloads/test_distributions.py``).

        The base implementation is the scalar loop itself, which satisfies the
        contract by construction; subclasses override it with vectorized draws
        when the distribution allows.
        """
        out = np.empty((n, len(tasks)), dtype=float)
        for row in range(n):
            for column, task in enumerate(tasks):
                out[row, column] = self.sample(rng, task)
        return out

    def expected(self, task: Task) -> float:
        """Expected cycles per job (defaults to the task's ACEC)."""
        return task.acec


@dataclass
class NormalWorkload(WorkloadModel):
    """Truncated normal distribution between BCEC and WCEC (the paper's model).

    Parameters
    ----------
    sigma_fraction:
        Standard deviation as a fraction of the ``WCEC − BCEC`` range.  The
        default of 1/6 puts ±3σ at the interval ends, the usual convention for
        "normal between best and worst case".
    """

    sigma_fraction: float = 1.0 / 6.0
    name: str = "normal"

    def __post_init__(self) -> None:
        if self.sigma_fraction <= 0:
            raise WorkloadError("sigma_fraction must be positive")

    def sample(self, rng: np.random.Generator, task: Task) -> float:
        span = task.wcec - task.bcec
        if span <= 0:
            return task.wcec
        mean = task.acec
        sigma = self.sigma_fraction * span
        value = rng.normal(mean, sigma)
        return float(np.clip(value, task.bcec, task.wcec))

    def sample_batch(self, rng: np.random.Generator, tasks: Sequence[Task],
                     n: int = 1) -> np.ndarray:
        wcec = np.array([task.wcec for task in tasks], dtype=float)
        bcec = np.array([task.bcec for task in tasks], dtype=float)
        acec = np.array([task.acec for task in tasks], dtype=float)
        span = wcec - bcec
        drawn = span > 0
        out = np.empty((n, len(tasks)), dtype=float)
        # Degenerate tasks consume no randomness, exactly like the scalar path.
        out[:, ~drawn] = wcec[~drawn]
        if drawn.any():
            draws = rng.normal(acec[drawn], self.sigma_fraction * span[drawn],
                               size=(n, int(drawn.sum())))
            out[:, drawn] = np.clip(draws, bcec[drawn], wcec[drawn])
        return out


@dataclass
class UniformWorkload(WorkloadModel):
    """Uniform distribution between BCEC and WCEC."""

    name: str = "uniform"

    def sample(self, rng: np.random.Generator, task: Task) -> float:
        if task.wcec <= task.bcec:
            return task.wcec
        return float(rng.uniform(task.bcec, task.wcec))

    def sample_batch(self, rng: np.random.Generator, tasks: Sequence[Task],
                     n: int = 1) -> np.ndarray:
        wcec = np.array([task.wcec for task in tasks], dtype=float)
        bcec = np.array([task.bcec for task in tasks], dtype=float)
        drawn = wcec > bcec
        out = np.empty((n, len(tasks)), dtype=float)
        out[:, ~drawn] = wcec[~drawn]
        if drawn.any():
            out[:, drawn] = rng.uniform(bcec[drawn], wcec[drawn],
                                        size=(n, int(drawn.sum())))
        return out

    def expected(self, task: Task) -> float:
        return 0.5 * (task.bcec + task.wcec)


@dataclass
class FixedWorkload(WorkloadModel):
    """Deterministic workload: always the ACEC, BCEC or WCEC.

    ``mode`` is one of ``"acec"`` (default), ``"bcec"`` or ``"wcec"``.  The
    WCEC mode is what the worst-case feasibility tests simulate.
    """

    mode: str = "acec"
    name: str = "fixed"

    def __post_init__(self) -> None:
        if self.mode not in ("acec", "bcec", "wcec"):
            raise WorkloadError(f"mode must be 'acec', 'bcec' or 'wcec', got {self.mode!r}")

    def sample(self, rng: np.random.Generator, task: Task) -> float:
        return {"acec": task.acec, "bcec": task.bcec, "wcec": task.wcec}[self.mode]

    def sample_batch(self, rng: np.random.Generator, tasks: Sequence[Task],
                     n: int = 1) -> np.ndarray:
        values = np.array([self.sample(rng, task) for task in tasks], dtype=float)
        return np.tile(values, (n, 1))

    def expected(self, task: Task) -> float:
        return {"acec": task.acec, "bcec": task.bcec, "wcec": task.wcec}[self.mode]


@dataclass
class BimodalWorkload(WorkloadModel):
    """Mostly-short jobs with occasional worst-case bursts.

    With probability ``burst_probability`` a job takes its WCEC; otherwise it
    takes the BCEC (plus small jitter).  This is the "small number of cycles
    but occasionally a large number" pattern from the paper's abstract, where
    ACS has the most room to win.
    """

    burst_probability: float = 0.1
    jitter_fraction: float = 0.05
    name: str = "bimodal"

    def __post_init__(self) -> None:
        if not 0.0 <= self.burst_probability <= 1.0:
            raise WorkloadError("burst_probability must lie in [0, 1]")
        if self.jitter_fraction < 0:
            raise WorkloadError("jitter_fraction must be non-negative")

    def sample(self, rng: np.random.Generator, task: Task) -> float:
        if rng.random() < self.burst_probability:
            return task.wcec
        span = task.wcec - task.bcec
        jitter = rng.uniform(0.0, self.jitter_fraction * span) if span > 0 else 0.0
        return float(min(task.bcec + jitter, task.wcec))

    def sample_batch(self, rng: np.random.Generator, tasks: Sequence[Task],
                     n: int = 1) -> np.ndarray:
        """Batched draws with the scalar stream order preserved.

        Whether a job consumes a jitter draw depends on the outcome of its own
        burst draw, so the stream cannot be split into one burst block and one
        jitter block: the draws must stay interleaved — burst draw, then
        jitter draw, job by job — or batched results would diverge from the
        per-job path and break the serial/parallel equivalence guarantees.
        The override therefore keeps the per-job loop and only hoists the
        per-task constants out of it.
        """
        stats = [(task.wcec, task.bcec, task.wcec - task.bcec) for task in tasks]
        burst_probability = self.burst_probability
        jitter_fraction = self.jitter_fraction
        random = rng.random
        uniform = rng.uniform
        out = np.empty((n, len(tasks)), dtype=float)
        for row in range(n):
            values = out[row]
            for column, (wcec, bcec, span) in enumerate(stats):
                if random() < burst_probability:
                    values[column] = wcec
                else:
                    jitter = uniform(0.0, jitter_fraction * span) if span > 0 else 0.0
                    values[column] = min(bcec + jitter, wcec)
        return out

    def expected(self, task: Task) -> float:
        span = task.wcec - task.bcec
        base = task.bcec + 0.5 * self.jitter_fraction * span
        return self.burst_probability * task.wcec + (1.0 - self.burst_probability) * base


_MODELS = {
    "normal": NormalWorkload,
    "uniform": UniformWorkload,
    "fixed": FixedWorkload,
    "bimodal": BimodalWorkload,
}


def get_workload_model(name: str, **kwargs) -> WorkloadModel:
    """Instantiate a workload model by name (``"normal"``, ``"uniform"``, ``"fixed"``, ``"bimodal"``)."""
    try:
        factory = _MODELS[name.lower()]
    except KeyError:
        raise WorkloadError(f"unknown workload model {name!r}; known: {sorted(_MODELS)}") from None
    return factory(**kwargs)
