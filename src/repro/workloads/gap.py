"""The GAP (Generic Avionics Platform) task set.

The paper's second real-life case study is the Generic Avionics Platform of
Locke, Vogel and Mesler ("Building a predictable avionics platform in Ada: a
case study"), another standard fixed-priority benchmark.  The published
application consists of periodic tasks with rates between 1 Hz and 40 Hz
(periods 25 ms – 1000 ms) covering weapon release, radar tracking, navigation,
displays and housekeeping.

The representative subset below preserves the published period structure and
the relative execution weights.  As with the CNC set (and as in the paper),
the worst-case cycles are rescaled to a target utilisation and the BCEC/WCEC
ratio is swept externally; DESIGN.md records this substitution.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.task import Task
from ..core.taskset import TaskSet
from ..power.processor import ProcessorModel

__all__ = ["gap_taskset", "GAP_TASK_PARAMETERS"]

#: (name, period [ms], worst-case execution time at full speed [ms])
GAP_TASK_PARAMETERS = (
    ("weapon_release", 200.0, 3.0),
    ("radar_tracking", 25.0, 2.0),
    ("target_tracking", 50.0, 4.0),
    ("aircraft_flight_data", 50.0, 8.0),
    ("display_graphic", 80.0, 9.0),
    ("hook_update", 80.0, 2.0),
    ("steering", 200.0, 6.0),
    ("display_hud", 100.0, 6.0),
    ("display_status", 200.0, 3.0),
    ("nav_update", 100.0, 8.0),
    ("display_stores", 200.0, 1.0),
    ("display_keyset", 200.0, 1.0),
    ("tracking_filter", 25.0, 2.0),
    ("nav_steering", 200.0, 3.0),
    ("data_bus_poll", 40.0, 1.0),
    ("weapon_aim", 50.0, 3.0),
    ("weapon_protocol", 200.0, 1.0),
)


def gap_taskset(processor: Optional[ProcessorModel] = None, *,
                target_utilization: float = 0.7,
                bcec_wcec_ratio: float = 0.5,
                n_tasks: Optional[int] = None) -> TaskSet:
    """Build the Generic Avionics Platform task set.

    Parameters
    ----------
    processor:
        When given, worst-case cycles are rescaled so the set utilises
        ``target_utilization`` at maximum speed.
    target_utilization:
        Desired worst-case utilisation after rescaling.
    bcec_wcec_ratio:
        BCEC/WCEC ratio applied to every task (ACEC is the midpoint).
    n_tasks:
        Optionally keep only the first ``n_tasks`` tasks (useful to bound the
        hyperperiod expansion in quick test runs).
    """
    parameters = GAP_TASK_PARAMETERS if n_tasks is None else GAP_TASK_PARAMETERS[:n_tasks]
    tasks: List[Task] = [
        Task(name=name, period=period, wcec=wcet)
        for name, period, wcet in parameters
    ]
    taskset = TaskSet(tasks, name="gap")
    if processor is not None:
        taskset = taskset.scaled_to_utilization(target_utilization, processor.fmax)
    return taskset.with_bcec_ratio(bcec_wcec_ratio)
