"""Workload models: execution-cycle distributions, arrival models and benchmark task sets."""

from .arrivals import (
    ArrivalModel,
    PeriodicArrivals,
    SporadicArrivals,
    available_arrival_models,
    get_arrival_model,
)
from .cnc import CNC_TASK_PARAMETERS, cnc_taskset
from .distributions import (
    BimodalWorkload,
    FixedWorkload,
    NormalWorkload,
    UniformWorkload,
    WorkloadModel,
    get_workload_model,
)
from .gap import GAP_TASK_PARAMETERS, gap_taskset
from .random_tasksets import (
    RandomTaskSetConfig,
    generate_random_taskset,
    generate_random_tasksets,
)

__all__ = [
    "WorkloadModel",
    "NormalWorkload",
    "UniformWorkload",
    "FixedWorkload",
    "BimodalWorkload",
    "get_workload_model",
    "ArrivalModel",
    "PeriodicArrivals",
    "SporadicArrivals",
    "available_arrival_models",
    "get_arrival_model",
    "RandomTaskSetConfig",
    "generate_random_taskset",
    "generate_random_tasksets",
    "cnc_taskset",
    "CNC_TASK_PARAMETERS",
    "gap_taskset",
    "GAP_TASK_PARAMETERS",
]
