"""The CNC (computer numerical control) controller task set.

The paper's first real-life case study is the CNC controller of Kim et al.
("Visual assessment of a real-time system design: a case study on a CNC
controller", RTSS 1996), a standard benchmark of the fixed-priority and DVS
literature.  The task set below follows the published structure: eight
periodic tasks in three rate groups (servo control at 2.4 ms, interpolation at
4.8 ms, command/housekeeping at 9.6 ms) with worst-case execution times of a
few hundred microseconds each.

As in the paper, the absolute worst-case cycle counts are then *rescaled* so
the set utilises a configurable fraction (70 % by default) of the processor at
maximum speed, and the BCEC/WCEC ratio is swept externally — so only the
period structure and the relative execution weights matter, both of which are
preserved from the published case study.  DESIGN.md records this substitution.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.task import Task
from ..core.taskset import TaskSet
from ..power.processor import ProcessorModel

__all__ = ["cnc_taskset", "CNC_TASK_PARAMETERS"]

#: (name, period [µs], worst-case execution time at full speed [µs])
CNC_TASK_PARAMETERS = (
    ("x_axis_servo", 2_400.0, 35.0),
    ("y_axis_servo", 2_400.0, 40.0),
    ("z_axis_servo", 2_400.0, 165.0),
    ("interpolator", 4_800.0, 570.0),
    ("position_update", 4_800.0, 570.0),
    ("command_read", 9_600.0, 720.0),
    ("status_display", 9_600.0, 620.0),
    ("panel_keys", 9_600.0, 80.0),
)


def cnc_taskset(processor: Optional[ProcessorModel] = None, *,
                target_utilization: float = 0.7,
                bcec_wcec_ratio: float = 0.5) -> TaskSet:
    """Build the CNC controller task set.

    Parameters
    ----------
    processor:
        When given, worst-case cycles are rescaled so the set utilises
        ``target_utilization`` of this processor at maximum speed (the paper's
        setting).  Without a processor the raw execution times are used as
        cycle counts at ``fmax = 1``.
    target_utilization:
        Desired worst-case utilisation after rescaling.
    bcec_wcec_ratio:
        BCEC/WCEC ratio applied to every task (ACEC is the midpoint).
    """
    tasks: List[Task] = [
        Task(name=name, period=period, wcec=wcet)
        for name, period, wcet in CNC_TASK_PARAMETERS
    ]
    taskset = TaskSet(tasks, name="cnc")
    if processor is not None:
        taskset = taskset.scaled_to_utilization(target_utilization, processor.fmax)
    return taskset.with_bcec_ratio(bcec_wcec_ratio)
