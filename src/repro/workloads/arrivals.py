"""Arrival models: when a hyperperiod's jobs are actually released.

The paper's system model is strictly periodic — job ``j`` of a task is
released exactly at ``j · period``.  This module generalises the release
*instant* behind a small :class:`ArrivalModel` interface so the simulator can
open workloads the paper never measured, starting with **sporadic arrivals
with bounded release jitter**: each job is released ``release + U(0, J)``
where ``J = min(max_jitter, window)`` is clamped to the job's own execution
window.

Semantics (deliberately conservative, so the static schedule stays the
authority):

* only the *release* shifts — absolute deadlines and the static schedule's
  slots and end-times stay nominal, so jitter eats into the job's own slack
  (a heavily jittered job can miss its deadline, which the simulator records
  as usual);
* the dispatcher still runs fixed-priority preemptive over the jittered
  releases, so release order — and therefore the preemption structure — can
  genuinely change from hyperperiod to hyperperiod.

**Determinism contract:** :meth:`ArrivalModel.sample_offsets` draws *all* of
a run's jitter in one vectorized call, consumed from the generator *before*
any workload-cycle draws.  Both scalar engines (reference and compiled) make
the identical single call, so their RNG streams — and hence their traces and
results — stay bitwise-identical (the same scheme the workload models use,
see :meth:`repro.workloads.distributions.WorkloadModel.sample_batch`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.errors import WorkloadError
from ..core.task import TaskInstance

__all__ = [
    "ArrivalModel",
    "PeriodicArrivals",
    "SporadicArrivals",
    "get_arrival_model",
    "available_arrival_models",
]


class ArrivalModel(ABC):
    """Draws per-job release offsets (added to the nominal releases)."""

    #: short name used in scenario specs and experiment reports
    name: str = "abstract"

    @abstractmethod
    def sample_offsets(self, rng: np.random.Generator,
                       instances: Sequence[TaskInstance], n: int = 1) -> np.ndarray:
        """Release offsets of ``n`` consecutive hyperperiods in one call.

        Returns an ``(n, len(instances))`` array whose row ``i`` holds
        hyperperiod ``i``'s non-negative offsets, one per job instance (in the
        expansion's job order).  Implementations must consume the generator in
        a single vectorized draw (or not at all) so every engine advances the
        stream identically.
        """


@dataclass(frozen=True)
class PeriodicArrivals(ArrivalModel):
    """The paper's model: zero jitter, and no randomness consumed."""

    name: str = "periodic"

    def sample_offsets(self, rng: np.random.Generator,
                       instances: Sequence[TaskInstance], n: int = 1) -> np.ndarray:
        return np.zeros((n, len(instances)), dtype=float)


@dataclass(frozen=True)
class SporadicArrivals(ArrivalModel):
    """Bounded uniform release jitter: job ``j`` arrives at ``release_j + U(0, J_j)``.

    ``J_j = min(max_jitter, window_j)`` clamps the jitter to each job's own
    execution window so a release can never be pushed past its deadline.
    """

    max_jitter: float = 1.0
    name: str = "sporadic"

    def __post_init__(self) -> None:
        if self.max_jitter < 0:
            raise WorkloadError(f"max_jitter must be non-negative, got {self.max_jitter}")

    def sample_offsets(self, rng: np.random.Generator,
                       instances: Sequence[TaskInstance], n: int = 1) -> np.ndarray:
        bounds = np.array([min(self.max_jitter, instance.window) for instance in instances],
                          dtype=float)
        return rng.uniform(0.0, bounds, size=(n, len(instances)))


_MODELS = {
    "periodic": PeriodicArrivals,
    "sporadic": SporadicArrivals,
}


def available_arrival_models() -> tuple:
    """Registry names accepted by :func:`get_arrival_model` (and scenario specs)."""
    return tuple(sorted(_MODELS))


def get_arrival_model(name: str, **kwargs) -> ArrivalModel:
    """Instantiate an arrival model by name (``"periodic"``, ``"sporadic"``)."""
    try:
        factory = _MODELS[name.lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown arrival model {name!r}; known: {sorted(_MODELS)}") from None
    return factory(**kwargs)
