"""Random task-set generator reproducing the paper's experimental setup.

For Figure 6(a) the paper constructs, for each task-set size, one hundred
random task sets with

* periods/deadlines drawn uniformly from a range (10–100 time units here);
* WCEC scaled so the processor utilisation at maximum speed is about 70 %;
* BCEC = ratio × WCEC with the ratio swept over {0.1, 0.5, 0.9};
* ACEC = (BCEC + WCEC) / 2, the mean of the truncated normal workload.

Two practical adjustments keep the reproduction laptop-friendly and are
documented in DESIGN.md:

* periods are drawn from a divisor-friendly set (so the hyperperiod — and with
  it the number of sub-instances the NLP optimises over — stays bounded); the
  paper similarly caps each task set at one thousand sub-instances;
* random task sets that are not RM-schedulable at maximum speed are discarded
  and regenerated, as they admit no voltage schedule at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..analysis.feasibility import check_feasibility
from ..analysis.preemption import expand_fully_preemptive
from ..core.errors import WorkloadError
from ..core.task import Task
from ..core.taskset import TaskSet
from ..power.processor import ProcessorModel

__all__ = ["RandomTaskSetConfig", "generate_random_taskset", "generate_random_tasksets"]

#: Period values used by default.  All divide 600, so the hyperperiod of any
#: subset is at most 600 and the sub-instance count stays manageable.
_DEFAULT_PERIODS = (10.0, 20.0, 25.0, 30.0, 50.0, 60.0, 75.0, 100.0)


@dataclass(frozen=True)
class RandomTaskSetConfig:
    """Parameters of the random task-set generator."""

    n_tasks: int = 4
    target_utilization: float = 0.7
    bcec_wcec_ratio: float = 0.5
    periods: Sequence[float] = _DEFAULT_PERIODS
    wcec_range: tuple = (1_000.0, 10_000.0)
    max_sub_instances: int = 1_000
    max_attempts: int = 200

    def __post_init__(self) -> None:
        if self.n_tasks <= 0:
            raise WorkloadError("n_tasks must be positive")
        if not 0 < self.target_utilization <= 1.0:
            raise WorkloadError("target_utilization must lie in (0, 1]")
        if not 0 < self.bcec_wcec_ratio <= 1.0:
            raise WorkloadError("bcec_wcec_ratio must lie in (0, 1]")
        if not self.periods:
            raise WorkloadError("periods must be non-empty")
        if self.wcec_range[0] <= 0 or self.wcec_range[1] < self.wcec_range[0]:
            raise WorkloadError("wcec_range must be a positive, ordered pair")


def _draw_taskset(config: RandomTaskSetConfig, rng: np.random.Generator,
                  processor: ProcessorModel, index: int) -> TaskSet:
    periods = rng.choice(np.asarray(config.periods, dtype=float), size=config.n_tasks, replace=True)
    wcecs = rng.uniform(config.wcec_range[0], config.wcec_range[1], size=config.n_tasks)
    tasks: List[Task] = []
    for task_index, (period, wcec) in enumerate(zip(periods, wcecs)):
        tasks.append(Task(name=f"T{task_index + 1}", period=float(period), wcec=float(wcec)))
    taskset = TaskSet(tasks, name=f"random-{index}")
    taskset = taskset.scaled_to_utilization(config.target_utilization, processor.fmax)
    taskset = taskset.with_bcec_ratio(config.bcec_wcec_ratio)
    return taskset


def generate_random_taskset(config: RandomTaskSetConfig, processor: ProcessorModel,
                            rng: Optional[np.random.Generator] = None,
                            index: int = 0) -> TaskSet:
    """Draw one feasible random task set (retrying until schedulable at max speed)."""
    generator = rng if rng is not None else np.random.default_rng()
    for _ in range(config.max_attempts):
        taskset = _draw_taskset(config, generator, processor, index)
        report = check_feasibility(taskset, processor)
        if not report.schedulable:
            continue
        expansion = expand_fully_preemptive(taskset)
        if len(expansion) > config.max_sub_instances:
            continue
        return taskset
    raise WorkloadError(
        f"could not generate a feasible task set with {config.n_tasks} tasks at utilisation "
        f"{config.target_utilization} within {config.max_attempts} attempts"
    )


def generate_random_tasksets(config: RandomTaskSetConfig, processor: ProcessorModel,
                             count: int, seed: Optional[int] = None) -> List[TaskSet]:
    """Draw ``count`` independent feasible task sets (the paper uses 100 per data point)."""
    if count <= 0:
        raise WorkloadError("count must be positive")
    rng = np.random.default_rng(seed)
    return [generate_random_taskset(config, processor, rng, index) for index in range(count)]
