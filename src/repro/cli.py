"""Command-line entry point: ``python -m repro`` or the ``repro-experiments`` script.

Sub-commands regenerate the paper's experiments and print the corresponding
table to standard output:

* ``motivation`` — Table 1 / Figures 1–2 (the non-preemptive example);
* ``figure6a``   — random task-set sweep (supports ``--jobs N``);
* ``figure6b``   — CNC and GAP case studies (supports ``--jobs N``);

and expose the online runtime and the batched harness directly:

* ``simulate``   — schedule one application and simulate it under one or more
  online DVS policies (``--policy static|greedy|lookahead|proportional|all``);
* ``sweep``      — configurable random-taskset sweep on a process pool
  (``--jobs N``; any worker count produces bitwise-identical output).

Use ``--full`` for the paper-scale sample sizes (slow) and ``--quick`` for a
smoke-test-sized run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .core.errors import ExperimentError, ReproError
from .experiments.figure6a import Figure6aConfig, run_figure6a
from .experiments.figure6b import Figure6bConfig, run_figure6b
from .experiments.harness import make_schedulers, scheduler_names
from .experiments.motivation import run_motivation
from .experiments.sweep import SweepConfig, run_sweep
from .power.presets import ideal_processor
from .runtime.policies import available_policies, get_policy
from .runtime.simulator import DVSSimulator, SimulationConfig
from .utils.tables import format_markdown_table
from .workloads.cnc import cnc_taskset
from .workloads.distributions import NormalWorkload
from .workloads.gap import gap_taskset

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the experiments of the DATE 2005 ACS paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    motivation = subparsers.add_parser("motivation", help="Table 1 / Figures 1-2")
    motivation.set_defaults(runner=_run_motivation)

    figure6a = subparsers.add_parser("figure6a", help="random task-set sweep (Figure 6a)")
    figure6a.add_argument("--quick", action="store_true", help="tiny sample sizes (smoke test)")
    figure6a.add_argument("--full", action="store_true", help="paper-scale sample sizes (slow)")
    figure6a.add_argument("--seed", type=int, default=2005)
    figure6a.add_argument("--jobs", type=int, default=1,
                          help="worker processes (results identical for any value)")
    figure6a.set_defaults(runner=_run_figure6a)

    figure6b = subparsers.add_parser("figure6b", help="CNC and GAP case studies (Figure 6b)")
    figure6b.add_argument("--quick", action="store_true", help="tiny sample sizes (smoke test)")
    figure6b.add_argument("--full", action="store_true", help="paper-scale sample sizes (slow)")
    figure6b.add_argument("--seed", type=int, default=2005)
    figure6b.add_argument("--jobs", type=int, default=1,
                          help="worker processes (results identical for any value)")
    figure6b.set_defaults(runner=_run_figure6b)

    simulate = subparsers.add_parser(
        "simulate",
        help="simulate one application under one or more online DVS policies")
    simulate.add_argument("--app", choices=("demo", "cnc", "gap"), default="demo",
                          help="task set to schedule (demo = small 3-task example)")
    simulate.add_argument("--method", choices=scheduler_names(), default="acs",
                          help="offline scheduler producing the static schedule")
    simulate.add_argument("--policy", default="greedy",
                          help="online policy name, comma-separated list, or 'all' "
                               f"(known: {', '.join(available_policies())})")
    simulate.add_argument("--hyperperiods", type=int, default=50)
    simulate.add_argument("--seed", type=int, default=2005)
    simulate.add_argument("--ratio", type=float, default=0.5,
                          help="BCEC/WCEC ratio of the workload")
    simulate.set_defaults(runner=_run_simulate)

    sweep = subparsers.add_parser(
        "sweep",
        help="random-taskset sweep on a process pool (batched harness)")
    sweep.add_argument("--tasksets", type=int, default=8, help="number of random task sets")
    sweep.add_argument("--tasks", type=int, default=4, help="tasks per task set")
    sweep.add_argument("--ratio", type=float, default=0.5, help="BCEC/WCEC ratio")
    sweep.add_argument("--utilization", type=float, default=0.7)
    sweep.add_argument("--hyperperiods", type=int, default=20)
    sweep.add_argument("--seed", type=int, default=2005)
    sweep.add_argument("--policy", choices=available_policies(), default="greedy")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (results identical for any value)")
    sweep.add_argument("--quick", action="store_true", help="tiny sample sizes (smoke test)")
    sweep.add_argument("--output", default=None,
                       help="also write the full result as JSON to this path")
    sweep.set_defaults(runner=_run_sweep)

    return parser


def _run_motivation(args: argparse.Namespace) -> str:
    result = run_motivation()
    lines = [
        result.to_markdown(),
        "",
        f"average-case improvement of ACS end-times: {result.improvement_average_case_percent:.1f}%",
        f"worst-case penalty of ACS end-times:       {result.penalty_worst_case_percent:.1f}%",
    ]
    return "\n".join(lines)


def _run_figure6a(args: argparse.Namespace) -> str:
    if args.full:
        config = Figure6aConfig(tasksets_per_point=100, hyperperiods_per_taskset=1000,
                                seed=args.seed, jobs=args.jobs)
    elif args.quick:
        config = Figure6aConfig(task_counts=(2, 4), tasksets_per_point=2,
                                hyperperiods_per_taskset=5, seed=args.seed, jobs=args.jobs)
    else:
        config = Figure6aConfig(seed=args.seed, jobs=args.jobs)
    result = run_figure6a(config, verbose=True)
    return result.to_markdown()


def _run_figure6b(args: argparse.Namespace) -> str:
    if args.full:
        config = Figure6bConfig(hyperperiods_per_point=1000, gap_tasks=None,
                                seed=args.seed, jobs=args.jobs)
    elif args.quick:
        config = Figure6bConfig(hyperperiods_per_point=5, gap_tasks=5,
                                seed=args.seed, jobs=args.jobs)
    else:
        config = Figure6bConfig(seed=args.seed, jobs=args.jobs)
    result = run_figure6b(config, verbose=True)
    return result.to_markdown()


def _demo_taskset(ratio: float):
    from .core.task import Task
    from .core.taskset import TaskSet

    taskset = TaskSet([
        Task("camera", period=10, wcec=3000),
        Task("planner", period=20, wcec=8000),
        Task("logger", period=40, wcec=6000),
    ], name="demo")
    return taskset.with_bcec_ratio(ratio)


def _run_simulate(args: argparse.Namespace) -> str:
    if args.policy == "all":
        policies = available_policies()
    else:
        policies = tuple(name.strip() for name in args.policy.split(",") if name.strip())
    if not policies:
        raise ExperimentError(
            f"--policy needs at least one policy name (known: {', '.join(available_policies())})")
    for name in policies:  # validate before the (expensive) offline scheduling
        try:
            get_policy(name)
        except ValueError as error:
            raise ExperimentError(str(error)) from None

    processor = ideal_processor(fmax=1000.0)
    if args.app == "demo":
        taskset = _demo_taskset(args.ratio)
    elif args.app == "cnc":
        taskset = cnc_taskset(processor, bcec_wcec_ratio=args.ratio)
    else:
        taskset = gap_taskset(processor, bcec_wcec_ratio=args.ratio, n_tasks=8)

    scheduler = make_schedulers([args.method], processor)[args.method]
    schedule = scheduler.schedule(taskset)

    rows: List[List[object]] = []
    energies = {}
    for name in policies:
        simulator = DVSSimulator(
            processor, policy=name,
            config=SimulationConfig(n_hyperperiods=args.hyperperiods),
        )
        result = simulator.run(schedule, NormalWorkload(), np.random.default_rng(args.seed))
        energies[name] = result.mean_energy_per_hyperperiod
        rows.append([name, result.mean_energy_per_hyperperiod, result.miss_count])

    reference_name = "static" if "static" in energies else policies[0]
    reference = energies[reference_name]
    for row in rows:
        row.append(100.0 * (reference - energies[row[0]]) / reference if reference > 0 else 0.0)

    header = (f"app={args.app} method={args.method} ratio={args.ratio:g} "
              f"hyperperiods={args.hyperperiods} seed={args.seed}")
    table = format_markdown_table(
        ["policy", "energy / hyperperiod", "misses", f"saving vs {reference_name} %"], rows)
    return "\n".join([header, "", table])


def _run_sweep(args: argparse.Namespace) -> str:
    if args.quick:
        # --quick caps the *size* knobs (tasksets, tasks, hyperperiods) and
        # restricts the period pool so the NLPs stay tiny, but scenario knobs
        # (ratio, utilization, policy, seed) are honoured as given.
        config = SweepConfig(n_tasksets=min(args.tasksets, 2), n_tasks=min(args.tasks, 3),
                             bcec_wcec_ratio=args.ratio,
                             target_utilization=args.utilization, n_hyperperiods=5,
                             seed=args.seed, policy=args.policy, jobs=args.jobs,
                             periods=(10.0, 20.0, 40.0))
    else:
        config = SweepConfig(n_tasksets=args.tasksets, n_tasks=args.tasks,
                             bcec_wcec_ratio=args.ratio,
                             target_utilization=args.utilization,
                             n_hyperperiods=args.hyperperiods,
                             seed=args.seed, policy=args.policy, jobs=args.jobs)
    result = run_sweep(config)
    if args.output:
        from .reporting.serialization import save_json, sweep_result_to_dict
        save_json(sweep_result_to_dict(result), args.output)
    report = result.to_markdown()
    # Wall-clock goes on a separate trailing line so the deterministic report
    # above stays byte-identical across --jobs values.
    return f"{report}\n\nwall-clock: {result.elapsed_seconds:.2f}s (jobs={config.jobs})"


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        output = args.runner(args)
    except ReproError as error:
        # Bad user input surfaces as a clean message; genuine library bugs
        # (anything not derived from ReproError) keep their traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
