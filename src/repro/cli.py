"""Command-line entry point: ``python -m repro`` or the ``repro-experiments`` script.

Sub-commands regenerate the paper's experiments and print the corresponding
table to standard output:

* ``motivation`` — Table 1 / Figures 1–2 (the non-preemptive example);
* ``figure6a``   — random task-set sweep;
* ``figure6b``   — CNC and GAP case studies.

Use ``--full`` for the paper-scale sample sizes (slow) and ``--quick`` for a
smoke-test-sized run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments.figure6a import Figure6aConfig, run_figure6a
from .experiments.figure6b import Figure6bConfig, run_figure6b
from .experiments.motivation import run_motivation

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the experiments of the DATE 2005 ACS paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    motivation = subparsers.add_parser("motivation", help="Table 1 / Figures 1-2")
    motivation.set_defaults(runner=_run_motivation)

    figure6a = subparsers.add_parser("figure6a", help="random task-set sweep (Figure 6a)")
    figure6a.add_argument("--quick", action="store_true", help="tiny sample sizes (smoke test)")
    figure6a.add_argument("--full", action="store_true", help="paper-scale sample sizes (slow)")
    figure6a.add_argument("--seed", type=int, default=2005)
    figure6a.set_defaults(runner=_run_figure6a)

    figure6b = subparsers.add_parser("figure6b", help="CNC and GAP case studies (Figure 6b)")
    figure6b.add_argument("--quick", action="store_true", help="tiny sample sizes (smoke test)")
    figure6b.add_argument("--full", action="store_true", help="paper-scale sample sizes (slow)")
    figure6b.add_argument("--seed", type=int, default=2005)
    figure6b.set_defaults(runner=_run_figure6b)

    return parser


def _run_motivation(args: argparse.Namespace) -> str:
    result = run_motivation()
    lines = [
        result.to_markdown(),
        "",
        f"average-case improvement of ACS end-times: {result.improvement_average_case_percent:.1f}%",
        f"worst-case penalty of ACS end-times:       {result.penalty_worst_case_percent:.1f}%",
    ]
    return "\n".join(lines)


def _run_figure6a(args: argparse.Namespace) -> str:
    if args.full:
        config = Figure6aConfig(tasksets_per_point=100, hyperperiods_per_taskset=1000, seed=args.seed)
    elif args.quick:
        config = Figure6aConfig(task_counts=(2, 4), tasksets_per_point=2,
                                hyperperiods_per_taskset=5, seed=args.seed)
    else:
        config = Figure6aConfig(seed=args.seed)
    result = run_figure6a(config, verbose=True)
    return result.to_markdown()


def _run_figure6b(args: argparse.Namespace) -> str:
    if args.full:
        config = Figure6bConfig(hyperperiods_per_point=1000, gap_tasks=None, seed=args.seed)
    elif args.quick:
        config = Figure6bConfig(hyperperiods_per_point=5, gap_tasks=5, seed=args.seed)
    else:
        config = Figure6bConfig(seed=args.seed)
    result = run_figure6b(config, verbose=True)
    return result.to_markdown()


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    output = args.runner(args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
