"""Command-line entry point: ``python -m repro`` or the ``repro-experiments`` script.

Sub-commands regenerate the paper's experiments and print the corresponding
table to standard output:

* ``motivation`` — Table 1 / Figures 1–2 (the non-preemptive example);
* ``figure6a``   — random task-set sweep (supports ``--jobs N``);
* ``figure6b``   — CNC and GAP case studies (supports ``--jobs N``);

and expose the online runtime and the batched harness directly:

* ``simulate``   — schedule one application and simulate it under one or more
  online DVS policies (``--policy static|greedy|lookahead|proportional|all``);
* ``trace``      — simulate one application with the typed event stream
  recorded (``SimulationConfig(trace=True)``): prints per-kind event counts
  plus the ASCII Gantt chart projected from the trace, optionally with
  sporadic release jitter (``--jitter J``) and a JSON event dump
  (``--output FILE``);
* ``sweep``      — configurable random-taskset sweep on a process pool
  (``--jobs N``; any worker count produces bitwise-identical output);
* ``partition``  — partition an application across ``--cores`` processors,
  plan each core offline, simulate the multicore system and serialise the
  resulting ``MulticoreResult``;
* ``scalability`` — the multicore sweep: energy across core counts m ∈
  {1, 2, 4, 8} and across partitioning heuristics (Figure-6-style report);

and the declarative scenario runner (see ``docs/scenarios.md``):

* ``run``       — execute one or more scenario spec files (TOML/JSON) through
  the resumable, content-addressed result store (``--store DIR``, ``--force``,
  ``--profile smoke``, ``--jobs N``); ``--telemetry [PATH]`` records spans and
  counters (JSONL dump plus a stderr summary table), and every store-backed
  run writes a run manifest under ``<store>/manifests/``;
* ``stats``     — render the stage timings, counters and fallback tallies of
  past runs from the stored manifests (and optionally a telemetry JSONL)
  without re-running anything;
* ``store``     — inspect (``ls``) or garbage-collect (``gc``) the store;

and the sweep service (see the "Sweep service" section of
``docs/architecture.md``):

* ``serve``     — run the sharded, deduplicating experiment server over one
  result store (``--workers N``, ``--unit-timeout S``, ``--retries N``);
  SIGTERM drains in-flight requests before exit;
* ``submit``    — send a scenario file to a running server and stream its
  per-unit progress; the final table is identical to a local ``run``.

Use ``--full`` for the paper-scale sample sizes (slow) and ``--quick`` for a
smoke-test-sized run.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
import warnings
from datetime import datetime, timezone
from pathlib import Path
from typing import List, Optional

import numpy as np

from .allocation.multicore import MulticoreProblem, plan_multicore
from .allocation.partitioners import available_partitioners
from .core.errors import ExperimentError, ReproError
from .experiments.figure6a import Figure6aConfig, run_figure6a
from .experiments.figure6b import Figure6bConfig, run_figure6b
from .experiments.harness import make_schedulers, scheduler_names
from .experiments.motivation import run_motivation
from .experiments.scalability import ScalabilityConfig, run_scalability
from .experiments.sweep import SweepConfig, run_sweep
from .power.presets import ideal_processor
from .runtime.multicore import MulticoreRunner
from .runtime.policies import available_policies, get_policy
from .runtime.simulator import DVSSimulator, SimulationConfig
from .utils.tables import format_markdown_table
from .workloads.cnc import cnc_taskset
from .workloads.distributions import NormalWorkload
from .workloads.gap import gap_taskset

__all__ = ["main", "build_parser"]

#: Default scenario result-store directory (overridable via $REPRO_STORE or --store).
DEFAULT_STORE_DIR = ".repro-store"


def _resolve_store_dir(value: Optional[str]) -> str:
    return value or os.environ.get("REPRO_STORE") or DEFAULT_STORE_DIR


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the experiments of the DATE 2005 ACS paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    motivation = subparsers.add_parser("motivation", help="Table 1 / Figures 1-2")
    motivation.set_defaults(runner=_run_motivation)

    figure6a = subparsers.add_parser("figure6a", help="random task-set sweep (Figure 6a)")
    figure6a.add_argument("--quick", action="store_true", help="tiny sample sizes (smoke test)")
    figure6a.add_argument("--full", action="store_true", help="paper-scale sample sizes (slow)")
    figure6a.add_argument("--seed", type=int, default=2005)
    figure6a.add_argument("--jobs", type=int, default=1,
                          help="worker processes (results identical for any value)")
    figure6a.set_defaults(runner=_run_figure6a)

    figure6b = subparsers.add_parser("figure6b", help="CNC and GAP case studies (Figure 6b)")
    figure6b.add_argument("--quick", action="store_true", help="tiny sample sizes (smoke test)")
    figure6b.add_argument("--full", action="store_true", help="paper-scale sample sizes (slow)")
    figure6b.add_argument("--seed", type=int, default=2005)
    figure6b.add_argument("--jobs", type=int, default=1,
                          help="worker processes (results identical for any value)")
    figure6b.set_defaults(runner=_run_figure6b)

    simulate = subparsers.add_parser(
        "simulate",
        help="simulate one application under one or more online DVS policies")
    simulate.add_argument("--app", choices=("demo", "cnc", "gap"), default="demo",
                          help="task set to schedule (demo = small 3-task example)")
    simulate.add_argument("--method", choices=scheduler_names(), default="acs",
                          help="offline scheduler producing the static schedule")
    simulate.add_argument("--policy", default="greedy",
                          help="online policy name, comma-separated list, or 'all' "
                               f"(known: {', '.join(available_policies())})")
    simulate.add_argument("--hyperperiods", type=int, default=50)
    simulate.add_argument("--seed", type=int, default=2005)
    simulate.add_argument("--ratio", type=float, default=0.5,
                          help="BCEC/WCEC ratio of the workload")
    simulate.set_defaults(runner=_run_simulate)

    trace = subparsers.add_parser(
        "trace",
        help="simulate one application with the typed event stream recorded")
    trace.add_argument("--app", choices=("demo", "cnc", "gap"), default="demo",
                       help="task set to schedule (demo = small 3-task example)")
    trace.add_argument("--method", choices=scheduler_names(), default="acs",
                       help="offline scheduler producing the static schedule")
    trace.add_argument("--policy", choices=available_policies(), default="greedy",
                       help="online DVS policy")
    trace.add_argument("--hyperperiods", type=int, default=2)
    trace.add_argument("--seed", type=int, default=2005)
    trace.add_argument("--ratio", type=float, default=0.5,
                       help="BCEC/WCEC ratio of the workload")
    trace.add_argument("--jitter", type=float, default=None, metavar="J",
                       help="sporadic arrivals with release jitter U(0, J) "
                            "(default: strictly periodic)")
    trace.add_argument("--width", type=int, default=72, help="chart width in columns")
    trace.add_argument("--output", default=None, metavar="FILE",
                       help="also write the serialised events as JSON to this path")
    trace.set_defaults(runner=_run_trace)

    sweep = subparsers.add_parser(
        "sweep",
        help="random-taskset sweep on a process pool (batched harness)")
    sweep.add_argument("--tasksets", type=int, default=8, help="number of random task sets")
    sweep.add_argument("--tasks", type=int, default=4, help="tasks per task set")
    sweep.add_argument("--ratio", type=float, default=0.5, help="BCEC/WCEC ratio")
    sweep.add_argument("--utilization", type=float, default=0.7)
    sweep.add_argument("--hyperperiods", type=int, default=20)
    sweep.add_argument("--seed", type=int, default=2005)
    sweep.add_argument("--policy", choices=available_policies(), default="greedy")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (results identical for any value)")
    sweep.add_argument("--quick", action="store_true", help="tiny sample sizes (smoke test)")
    sweep.add_argument("--output", default=None,
                       help="also write the full result as JSON to this path")
    sweep.set_defaults(runner=_run_sweep)

    partition = subparsers.add_parser(
        "partition",
        help="partition one application across cores, plan and simulate it")
    partition.add_argument("--cores", type=int, default=4, help="number of cores m")
    partition.add_argument("--partitioner", choices=available_partitioners(),
                           default="wfd", help="task-to-core allocation heuristic")
    partition.add_argument("--app", choices=("demo", "cnc", "gap"), default="cnc",
                           help="task set to partition (demo = small 3-task example)")
    partition.add_argument("--method", choices=scheduler_names(), default="acs",
                           help="offline scheduler run independently per core")
    partition.add_argument("--policy", choices=available_policies(), default="greedy",
                           help="online DVS policy driving every core")
    partition.add_argument("--hyperperiods", type=int, default=20,
                           help="global hyperperiods to simulate")
    partition.add_argument("--ratio", type=float, default=0.5,
                           help="BCEC/WCEC ratio of the workload")
    partition.add_argument("--seed", type=int, default=2005)
    partition.add_argument("--jobs", type=int, default=1,
                           help="worker processes for the per-core NLP solves")
    partition.add_argument("--output", default="multicore_result.json",
                           help="path of the serialized MulticoreResult JSON")
    partition.set_defaults(runner=_run_partition)

    scalability = subparsers.add_parser(
        "scalability",
        help="multicore scalability sweep: energy across core counts and partitioners")
    scalability.add_argument("--cores", default=None,
                             help="comma-separated core counts "
                                  "(default 1,2,4,8; 1,2 with --quick)")
    scalability.add_argument("--partitioners", default=None,
                             help="comma-separated partitioner names "
                                  "(default all; ffd,wfd with --quick)")
    scalability.add_argument("--app", choices=("cnc", "gap"), default="cnc")
    scalability.add_argument("--method", choices=scheduler_names(), default="acs")
    scalability.add_argument("--policy", choices=available_policies(), default="greedy")
    scalability.add_argument("--ratio", type=float, default=0.5)
    scalability.add_argument("--hyperperiods", type=int, default=None,
                             help="global hyperperiods per point "
                                  "(default 20; 5 with --quick)")
    scalability.add_argument("--seed", type=int, default=2005)
    scalability.add_argument("--jobs", type=int, default=1,
                             help="worker processes (results identical for any value)")
    scalability.add_argument("--quick", action="store_true",
                             help="tiny sweep (smoke test): shrinks the defaults of "
                                  "--cores/--partitioners/--hyperperiods; explicitly "
                                  "given values are honoured as-is")
    scalability.add_argument("--output", default=None,
                             help="also write the full result as JSON to this path")
    scalability.set_defaults(runner=_run_scalability)

    run = subparsers.add_parser(
        "run",
        help="execute declarative scenario spec files (TOML/JSON) via the result store")
    run.add_argument("specs", nargs="+", metavar="SPEC",
                     help="scenario file(s); see docs/scenarios.md and examples/scenarios/")
    run.add_argument("--profile", default=None,
                     help="named override profile declared in the spec (e.g. 'smoke')")
    run.add_argument("--jobs", type=int, default=1,
                     help="worker processes (results identical for any value)")
    run.add_argument("--store", default=None, metavar="DIR",
                     help=f"result store directory (default: $REPRO_STORE or {DEFAULT_STORE_DIR})")
    run.add_argument("--no-store", action="store_true",
                     help="compute everything in-process without touching a store")
    run.add_argument("--force", action="store_true",
                     help="recompute (and overwrite) units already present in the store")
    run.add_argument("--output", default=None, metavar="DIR",
                     help="also write one <scenario-name>.json result file per spec here")
    run.add_argument("--telemetry", nargs="?", const="", default=None, metavar="PATH",
                     help="record spans/counters; JSONL goes to PATH, or to "
                          "<store>/telemetry/<scenario>.jsonl when PATH is omitted "
                          "(a summary table is printed to stderr either way)")
    run.set_defaults(runner=_run_scenarios)

    stats = subparsers.add_parser(
        "stats",
        help="render run manifests (stage timings, counters) from a store without re-running")
    stats.add_argument("store", nargs="?", default=None, metavar="STORE",
                       help=f"result store directory (default: $REPRO_STORE or {DEFAULT_STORE_DIR})")
    stats.add_argument("--telemetry", default=None, metavar="PATH",
                       help="also aggregate spans/counters from this telemetry JSONL dump")
    stats.set_defaults(runner=_run_stats)

    serve = subparsers.add_parser(
        "serve",
        help="run the sweep server: one shared store, dedup, sharded workers")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral; the bound address is printed)")
    serve.add_argument("--store", default=None, metavar="DIR",
                       help=f"result store directory (default: $REPRO_STORE or {DEFAULT_STORE_DIR})")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent unit computations (worker processes)")
    serve.add_argument("--unit-timeout", type=float, default=None, metavar="S",
                       help="wall-clock bound per unit attempt; on expiry the "
                            "worker is killed and the unit retried")
    serve.add_argument("--retries", type=int, default=2,
                       help="additional attempts after a retryable unit failure "
                            "(worker death, timeout)")
    serve.add_argument("--backoff", type=float, default=0.5, metavar="S",
                       help="initial retry backoff, doubling per attempt")
    serve.set_defaults(runner=_run_serve)

    submit = subparsers.add_parser(
        "submit",
        help="submit a scenario file to a running sweep server")
    submit.add_argument("spec", metavar="SPEC",
                        help="scenario file (TOML/JSON); sent unvalidated, the "
                             "server applies the usual loader rules")
    submit.add_argument("--profile", default=None,
                        help="named override profile declared in the spec (e.g. 'smoke')")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, required=True,
                        help="port of the running server (see its startup line)")
    submit.set_defaults(runner=_run_submit)

    store = subparsers.add_parser(
        "store",
        help="inspect or garbage-collect the scenario result store")
    store_commands = store.add_subparsers(dest="store_command", required=True)
    store_ls = store_commands.add_parser("ls", help="list stored result records")
    store_ls.add_argument("--store", default=None, metavar="DIR")
    store_ls.set_defaults(runner=_run_store_ls)
    store_gc = store_commands.add_parser("gc", help="remove stored result records")
    store_gc.add_argument("--store", default=None, metavar="DIR")
    criteria = store_gc.add_mutually_exclusive_group(required=True)
    criteria.add_argument("--all", action="store_true", help="remove every record")
    criteria.add_argument("--older-than", type=float, default=None, metavar="DAYS",
                          help="remove records created more than DAYS days ago")
    criteria.add_argument("--stale", action="store_true",
                          help="remove unreadable records and records from old store formats")
    store_gc.add_argument("--dry-run", action="store_true",
                          help="report what would be removed without deleting anything")
    store_gc.set_defaults(runner=_run_store_gc)

    return parser


def _run_motivation(args: argparse.Namespace) -> str:
    result = run_motivation()
    lines = [
        result.to_markdown(),
        "",
        f"average-case improvement of ACS end-times: {result.improvement_average_case_percent:.1f}%",
        f"worst-case penalty of ACS end-times:       {result.penalty_worst_case_percent:.1f}%",
    ]
    return "\n".join(lines)


def _run_figure6a(args: argparse.Namespace) -> str:
    if args.full:
        config = Figure6aConfig(tasksets_per_point=100, hyperperiods_per_taskset=1000,
                                seed=args.seed, jobs=args.jobs)
    elif args.quick:
        config = Figure6aConfig(task_counts=(2, 4), tasksets_per_point=2,
                                hyperperiods_per_taskset=5, seed=args.seed, jobs=args.jobs)
    else:
        config = Figure6aConfig(seed=args.seed, jobs=args.jobs)
    result = run_figure6a(config, verbose=True)
    return result.to_markdown()


def _run_figure6b(args: argparse.Namespace) -> str:
    if args.full:
        config = Figure6bConfig(hyperperiods_per_point=1000, gap_tasks=None,
                                seed=args.seed, jobs=args.jobs)
    elif args.quick:
        config = Figure6bConfig(hyperperiods_per_point=5, gap_tasks=5,
                                seed=args.seed, jobs=args.jobs)
    else:
        config = Figure6bConfig(seed=args.seed, jobs=args.jobs)
    result = run_figure6b(config, verbose=True)
    return result.to_markdown()


def _demo_taskset(ratio: float):
    from .core.task import Task
    from .core.taskset import TaskSet

    taskset = TaskSet([
        Task("camera", period=10, wcec=3000),
        Task("planner", period=20, wcec=8000),
        Task("logger", period=40, wcec=6000),
    ], name="demo")
    return taskset.with_bcec_ratio(ratio)


def _select_taskset(app: str, ratio: float, processor):
    """The ``--app`` dispatch shared by ``simulate`` and ``partition``."""
    if app == "demo":
        return _demo_taskset(ratio)
    if app == "cnc":
        return cnc_taskset(processor, bcec_wcec_ratio=ratio)
    return gap_taskset(processor, bcec_wcec_ratio=ratio, n_tasks=8)


def _run_simulate(args: argparse.Namespace) -> str:
    if args.policy == "all":
        policies = available_policies()
    else:
        policies = tuple(name.strip() for name in args.policy.split(",") if name.strip())
    if not policies:
        raise ExperimentError(
            f"--policy needs at least one policy name (known: {', '.join(available_policies())})")
    for name in policies:  # validate before the (expensive) offline scheduling
        try:
            get_policy(name)
        except ValueError as error:
            raise ExperimentError(str(error)) from None

    processor = ideal_processor(fmax=1000.0)
    taskset = _select_taskset(args.app, args.ratio, processor)

    scheduler = make_schedulers([args.method], processor)[args.method]
    schedule = scheduler.schedule(taskset)

    rows: List[List[object]] = []
    energies = {}
    for name in policies:
        simulator = DVSSimulator(
            processor, policy=name,
            config=SimulationConfig(n_hyperperiods=args.hyperperiods),
        )
        result = simulator.run(schedule, NormalWorkload(), np.random.default_rng(args.seed))
        energies[name] = result.mean_energy_per_hyperperiod
        rows.append([name, result.mean_energy_per_hyperperiod, result.miss_count])

    reference_name = "static" if "static" in energies else policies[0]
    reference = energies[reference_name]
    for row in rows:
        row.append(100.0 * (reference - energies[row[0]]) / reference if reference > 0 else 0.0)

    header = (f"app={args.app} method={args.method} ratio={args.ratio:g} "
              f"hyperperiods={args.hyperperiods} seed={args.seed}")
    table = format_markdown_table(
        ["policy", "energy / hyperperiod", "misses", f"saving vs {reference_name} %"], rows)
    return "\n".join([header, "", table])


def _run_trace(args: argparse.Namespace) -> str:
    if args.hyperperiods < 1:
        raise ExperimentError(f"--hyperperiods must be at least 1, got {args.hyperperiods}")
    processor = ideal_processor(fmax=1000.0)
    taskset = _select_taskset(args.app, args.ratio, processor)

    scheduler = make_schedulers([args.method], processor)[args.method]
    schedule = scheduler.schedule(taskset)

    arrivals = None
    if args.jitter is not None:
        from .workloads.arrivals import SporadicArrivals
        arrivals = SporadicArrivals(max_jitter=args.jitter)
    simulator = DVSSimulator(
        processor, policy=args.policy,
        config=SimulationConfig(n_hyperperiods=args.hyperperiods,
                                trace=True, arrivals=arrivals),
    )
    result = simulator.run(schedule, NormalWorkload(), np.random.default_rng(args.seed))
    trace = result.trace
    assert trace is not None  # trace=True guarantees a recorded stream

    from .reporting.gantt import render_trace
    counts = trace.counts()
    count_rows: List[List[object]] = [[kind, counts[kind]] for kind in sorted(counts)]
    arrivals_label = f"sporadic(max_jitter={args.jitter:g})" if arrivals else "periodic"
    header = (f"app={args.app} method={args.method} policy={args.policy} "
              f"ratio={args.ratio:g} hyperperiods={args.hyperperiods} "
              f"seed={args.seed} arrivals={arrivals_label}")
    sections = [
        header,
        "",
        render_trace(trace, processor, width=args.width),
        "",
        format_markdown_table(["event", "count"], count_rows),
        "",
        (f"{len(trace)} events | energy/hyperperiod "
         f"{result.mean_energy_per_hyperperiod:.6g} | misses {result.miss_count}"),
    ]
    if args.output:
        from .reporting.serialization import save_json, trace_to_dicts
        output_path = save_json({"events": trace_to_dicts(trace)}, args.output)
        sections.append(f"wrote {len(trace)} events to {output_path}")
    return "\n".join(sections)


def _run_sweep(args: argparse.Namespace) -> str:
    if args.quick:
        # --quick caps the *size* knobs (tasksets, tasks, hyperperiods) and
        # restricts the period pool so the NLPs stay tiny, but scenario knobs
        # (ratio, utilization, policy, seed) are honoured as given.
        config = SweepConfig(n_tasksets=min(args.tasksets, 2), n_tasks=min(args.tasks, 3),
                             bcec_wcec_ratio=args.ratio,
                             target_utilization=args.utilization, n_hyperperiods=5,
                             seed=args.seed, policy=args.policy, jobs=args.jobs,
                             periods=(10.0, 20.0, 40.0))
    else:
        config = SweepConfig(n_tasksets=args.tasksets, n_tasks=args.tasks,
                             bcec_wcec_ratio=args.ratio,
                             target_utilization=args.utilization,
                             n_hyperperiods=args.hyperperiods,
                             seed=args.seed, policy=args.policy, jobs=args.jobs)
    result = run_sweep(config)
    if args.output:
        from .reporting.serialization import save_json, sweep_result_to_dict
        save_json(sweep_result_to_dict(result), args.output)
    report = result.to_markdown()
    # Wall-clock goes on a separate trailing line so the deterministic report
    # above stays byte-identical across --jobs values.
    return f"{report}\n\nwall-clock: {result.elapsed_seconds:.2f}s (jobs={config.jobs})"


def _run_partition(args: argparse.Namespace) -> str:
    if args.cores < 1:
        raise ExperimentError(f"--cores must be at least 1, got {args.cores}")
    if args.jobs < 1:
        raise ExperimentError(f"--jobs must be at least 1, got {args.jobs}")
    processor = ideal_processor(fmax=1000.0)
    taskset = _select_taskset(args.app, args.ratio, processor)

    problem = MulticoreProblem(
        taskset=taskset,
        processor=processor,
        n_cores=args.cores,
        partitioner=args.partitioner,
        method=args.method,
    )
    plan = plan_multicore(problem, jobs=args.jobs)
    runner = MulticoreRunner(
        processor, policy=args.policy,
        config=SimulationConfig(n_hyperperiods=args.hyperperiods),
    )
    result = runner.run(plan, seed=args.seed)

    from .reporting.serialization import multicore_result_to_dict, save_json
    output_path = save_json(multicore_result_to_dict(result), args.output)

    rows: List[List[object]] = []
    for core, core_result in enumerate(result.core_results):
        if core_result is None:
            rows.append([core, "idle", 0.0, 0.0, 0.0, 0])
            continue
        tasks = ", ".join(sorted(
            name for name, owner in result.assignment.items() if owner == core))
        rows.append([
            core, tasks, result.core_utilizations[core],
            result.core_slacks[core],
            core_result.mean_energy_per_hyperperiod, core_result.miss_count,
        ])
    header = (f"app={args.app} cores={args.cores} partitioner={args.partitioner} "
              f"method={args.method} policy={args.policy} "
              f"hyperperiods={args.hyperperiods} seed={args.seed}")
    table = format_markdown_table(
        ["core", "tasks", "utilisation", "slack", "energy / core hyperperiod", "misses"],
        rows)
    summary = (f"total energy: {result.total_energy:.6g} | "
               f"mean energy per global hyperperiod: "
               f"{result.mean_energy_per_hyperperiod:.6g} | "
               f"misses: {result.miss_count}")
    return "\n".join([header, "", table, "", summary,
                      f"wrote MulticoreResult to {output_path}"])


def _run_scalability(args: argparse.Namespace) -> str:
    # --quick only shrinks the *defaults*; values the user gave explicitly
    # (--cores/--partitioners/--hyperperiods) are honoured as-is.
    cores_spec = args.cores if args.cores is not None else ("1,2" if args.quick else "1,2,4,8")
    partitioners_spec = args.partitioners if args.partitioners is not None \
        else ("ffd,wfd" if args.quick else "ffd,bfd,wfd,energy")
    n_hyperperiods = args.hyperperiods if args.hyperperiods is not None \
        else (5 if args.quick else 20)
    try:
        core_counts = tuple(int(part) for part in cores_spec.split(",") if part.strip())
    except ValueError:
        raise ExperimentError(f"--cores must be comma-separated integers, got {cores_spec!r}")
    partitioners = tuple(part.strip() for part in partitioners_spec.split(",") if part.strip())
    if not core_counts or not partitioners:
        raise ExperimentError("--cores and --partitioners must each name at least one value")
    unknown = [name for name in partitioners if name not in available_partitioners()]
    if unknown:
        raise ExperimentError(
            f"unknown partitioners {unknown}; known: {', '.join(available_partitioners())}")
    config = ScalabilityConfig(
        core_counts=core_counts, partitioners=partitioners,
        application=args.app, method=args.method, policy=args.policy,
        bcec_wcec_ratio=args.ratio,
        n_hyperperiods=n_hyperperiods,
        seed=args.seed, jobs=args.jobs,
        gap_tasks=5 if args.quick else 8,
    )
    result = run_scalability(config, verbose=True)
    if args.output:
        from .reporting.serialization import save_json, scalability_result_to_dict
        save_json(scalability_result_to_dict(result), args.output)
    report = result.to_markdown()
    # Wall-clock goes on a separate trailing line so the deterministic report
    # above stays byte-identical across --jobs values.
    return f"{report}\n\nwall-clock: {result.elapsed_seconds:.2f}s (jobs={config.jobs})"


def _run_serve(args: argparse.Namespace) -> str:
    import asyncio
    import signal

    from .scenarios import ResultStore
    from .server import SweepServer

    if args.workers < 1:
        raise ExperimentError(f"--workers must be at least 1, got {args.workers}")
    if args.retries < 0:
        raise ExperimentError(f"--retries must be at least 0, got {args.retries}")
    store = ResultStore(_resolve_store_dir(args.store))
    server = SweepServer(store, workers=args.workers, unit_timeout=args.unit_timeout,
                         retries=args.retries, backoff=args.backoff)

    async def serve() -> None:
        host, port = await server.start(args.host, args.port)
        # The startup line is the machine-readable contract scripts (and the
        # CI serve job) parse for the ephemeral port — printed eagerly, the
        # runner's return value only appears after the drain.
        print(f"serving on {host}:{port} (store: {store.root})", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("draining in-flight requests...", file=sys.stderr, flush=True)
        await server.drain()

    asyncio.run(serve())
    counters = server.telemetry.snapshot()["counters"]
    return (f"drained cleanly: {counters.get('serve.requests', 0)} request(s), "
            f"{counters.get('serve.units.computed', 0)} unit(s) computed "
            f"(store: {store.root})")


def _run_submit(args: argparse.Namespace) -> str:
    from .scenarios.loader import ScenarioLoader
    from .server import client

    document = ScenarioLoader().read_document(args.spec)
    if "name" not in document:
        # Same fallback a local run applies: an unnamed scenario is named
        # after its file stem (the server never sees the filename).
        document = {**document, "name": Path(args.spec).stem}
    final = None
    try:
        for event in client.submit(document, host=args.host, port=args.port,
                                   profile=args.profile):
            kind = event.get("event")
            if kind == "accepted":
                print(f"accepted: {event['scenario']} — {event['units']} unit(s), "
                      f"{event['points']} point(s)", file=sys.stderr, flush=True)
            elif kind == "unit":
                attempts = event.get("attempts", 0)
                suffix = f" after {attempts} attempt(s)" if attempts > 1 else ""
                print(f"unit {event['key'][:12]} [{event['label']}]: "
                      f"{event['status']}{suffix}", file=sys.stderr, flush=True)
            elif kind == "error":
                print(f"server error: {event.get('message')}", file=sys.stderr, flush=True)
            elif kind == "result":
                final = event
    except OSError as error:
        raise ExperimentError(
            f"cannot reach sweep server at {args.host}:{args.port}: {error}") from None
    if final is None:
        raise ExperimentError(
            f"server at {args.host}:{args.port} closed the stream without a result")
    if final["status"] != "ok":
        raise ExperimentError(f"{final['failed']} unit(s) failed permanently on the server")
    summary = (f"units: computed={final['computed']} deduped={final['deduped']} "
               f"coalesced={final['coalesced']}")
    return "\n".join([final["markdown"], "", summary])


def _telemetry_jsonl_path(store_dir: Optional[str], name: str, spec_path: str,
                          seen: dict) -> Path:
    """Derived ``--telemetry`` JSONL path for one spec, collision-safe.

    The default ``<store>/telemetry/<scenario>.jsonl`` is ambiguous when two
    spec files in different directories share a scenario name: the second
    would silently append to (and pollute) the first's dump.  The first file
    to claim a name keeps the pretty path; later *distinct* spec files get a
    ``-<hash-of-path>`` suffix and a warning.
    """
    base = Path(store_dir or ".") / "telemetry"
    resolved = str(Path(spec_path).resolve())
    default = base / f"{name}.jsonl"
    claimed = seen.setdefault(default, resolved)
    if claimed == resolved:
        return default
    digest = hashlib.sha256(resolved.encode("utf-8")).hexdigest()[:8]
    unique = base / f"{name}-{digest}.jsonl"
    warnings.warn(
        f"telemetry for {spec_path} would collide with {default} (already "
        f"written for {claimed}); writing {unique} instead — pass "
        f"--telemetry PATH to choose the destination",
        RuntimeWarning, stacklevel=2)
    seen.setdefault(unique, resolved)
    return unique


def _run_scenarios(args: argparse.Namespace) -> str:
    from .reporting.serialization import save_json, scenario_result_to_dict
    from .scenarios import ResultStore, ScenarioEngine, load_scenario
    from .telemetry import (
        JsonlSink,
        SummarySink,
        Telemetry,
        build_manifest,
        using,
        write_manifest,
    )

    if args.jobs < 1:
        raise ExperimentError(f"--jobs must be at least 1, got {args.jobs}")
    if args.no_store and args.store:
        raise ExperimentError("--no-store and --store are mutually exclusive")
    store_dir = None if args.no_store else _resolve_store_dir(args.store)
    engine = ScenarioEngine(ResultStore(store_dir) if store_dir else None)
    telemetry_arg = getattr(args, "telemetry", None)
    telemetry_enabled = telemetry_arg is not None
    claimed_jsonl: dict = {}
    sections: List[str] = []
    for path in args.specs:
        spec = load_scenario(path, profile=args.profile)
        stage_timings = counters = None
        if telemetry_enabled:
            # One fresh collector per spec so every manifest and JSONL block
            # describes exactly one scenario run.
            telemetry = Telemetry()
            with using(telemetry):
                result = engine.run(spec, n_jobs=args.jobs, force=args.force)
            snapshot = telemetry.snapshot()
            stage_timings = telemetry.stage_timings()
            counters = snapshot["counters"]
            if telemetry_arg:
                jsonl_path = Path(telemetry_arg)
            else:
                jsonl_path = _telemetry_jsonl_path(store_dir, spec.name, path, claimed_jsonl)
            JsonlSink(jsonl_path).emit(snapshot, scenario=spec.name)
            SummarySink().emit(snapshot, scenario=spec.name)
        else:
            result = engine.run(spec, n_jobs=args.jobs, force=args.force)
        if store_dir:
            manifest = build_manifest(
                scenario=spec.name,
                config=spec.to_dict(),
                computed=result.computed,
                skipped=result.skipped,
                elapsed_seconds=result.elapsed_seconds,
                stage_timings=stage_timings,
                counters=counters,
            )
            write_manifest(store_dir, manifest)
        if args.output:
            output_dir = Path(args.output)
            output_dir.mkdir(parents=True, exist_ok=True)
            save_json(scenario_result_to_dict(result), output_dir / f"{spec.name}.json")
        where = store_dir if store_dir else "disabled"
        # Wall-clock goes on a separate trailing line so the deterministic
        # report above stays byte-identical across --jobs values and reruns.
        sections.append("\n".join([
            f"== {spec.name} ({path})",
            "",
            result.to_markdown(),
            "",
            f"{result.summary()} (store: {where})",
            f"wall-clock: {result.elapsed_seconds:.2f}s (jobs={args.jobs})",
        ]))
    return "\n\n".join(sections)


def _run_stats(args: argparse.Namespace) -> str:
    from .telemetry import aggregate_spans, read_jsonl, read_manifests

    store_dir = _resolve_store_dir(args.store)
    manifests = read_manifests(store_dir)
    sections: List[str] = []
    for manifest in manifests:
        created = datetime.fromtimestamp(manifest.get("created_unix", 0.0), tz=timezone.utc)
        lines = [
            f"== {manifest.get('scenario', '?')}",
            "",
            f"created: {created.strftime('%Y-%m-%d %H:%M:%S')} UTC | "
            f"git: {manifest.get('git_rev', 'unknown')[:12]} | "
            f"config: {manifest.get('config_hash', '?')[:12]}",
            f"units: computed={manifest.get('computed', 0)} "
            f"skipped={manifest.get('skipped', 0)} | "
            f"elapsed: {manifest.get('elapsed_seconds', 0.0):.2f}s",
        ]
        timings = manifest.get("stage_timings")
        if timings:
            rows: List[List[object]] = [
                [name, data["count"], f"{data['total_seconds']:.6f}"]
                for name, data in sorted(timings.items())
            ]
            lines += ["", format_markdown_table(["stage", "spans", "total_s"], rows)]
        counters = manifest.get("counters")
        if counters:
            rows = [[name, value] for name, value in sorted(counters.items())]
            lines += ["", format_markdown_table(["counter", "value"], rows)]
        sections.append("\n".join(lines))
    if not sections:
        sections.append(f"store {store_dir}: no run manifests "
                        "(run `repro-experiments run ... --store` first)")
    if args.telemetry:
        spans: List[dict] = []
        counters_total: dict = {}
        records = read_jsonl(args.telemetry)
        for record in records:
            spans.extend(record["spans"])
            for name, value in record["counters"].items():
                counters_total[name] = counters_total.get(name, 0) + value
        lines = [f"== telemetry {args.telemetry} ({len(records)} run(s))"]
        aggregated = aggregate_spans(spans)
        if aggregated:
            rows = [[name, data["count"], f"{data['total_seconds']:.6f}"]
                    for name, data in sorted(aggregated.items())]
            lines += ["", format_markdown_table(["stage", "spans", "total_s"], rows)]
        if counters_total:
            rows = [[name, value] for name, value in sorted(counters_total.items())]
            lines += ["", format_markdown_table(["counter", "value"], rows)]
        if not aggregated and not counters_total:
            lines.append("(no telemetry recorded)")
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


def _run_store_ls(args: argparse.Namespace) -> str:
    from .scenarios import ResultStore

    store = ResultStore(_resolve_store_dir(args.store))
    entries = store.entries()
    if not entries:
        return f"store {store.root}: empty"
    rows: List[List[object]] = []
    for entry in entries:
        created = datetime.fromtimestamp(entry.created, tz=timezone.utc)
        rows.append([
            entry.key[:12],
            entry.scenario or "-",
            entry.label or "-",
            created.strftime("%Y-%m-%d %H:%M:%S"),
            "stale" if entry.stale else "ok",
            entry.size_bytes,
        ])
    table = format_markdown_table(
        ["key", "scenario", "label", "created (UTC)", "state", "bytes"], rows)
    return "\n".join([table, "", f"{len(entries)} record(s) in {store.root}"])


def _run_store_gc(args: argparse.Namespace) -> str:
    from .scenarios import ResultStore

    store = ResultStore(_resolve_store_dir(args.store))
    removed = store.gc(
        remove_all=args.all,
        older_than_days=args.older_than,
        stale_only=args.stale,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    lines = [f"{verb} {entry.key[:12]}  {entry.scenario or '-'}  {entry.label or '-'}"
             for entry in removed]
    lines.append(f"{verb} {len(removed)} record(s) from {store.root}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        output = args.runner(args)
    except ReproError as error:
        # Bad user input surfaces as a clean message; genuine library bugs
        # (anything not derived from ReproError) keep their traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
