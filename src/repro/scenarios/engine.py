"""Scenario engine: compile declarative specs down to the existing harnesses.

The engine turns a :class:`~repro.scenarios.spec.ScenarioSpec` into the same
work units the hand-written experiment modules build — picklable
:class:`~repro.experiments.harness.ComparisonJob` batches for ``comparison``
scenarios (executed through :func:`run_comparisons`, so ``--jobs N`` keeps the
bitwise serial/parallel guarantee), per-``(m, partitioner)`` multicore plans
for ``multicore`` scenarios, and the motivation table for ``motivation`` ones.

Seed derivation matches the figure modules exactly: a point's matrix-axis
indices are the seed coordinates of its work units (plus the repetition index
for random task sets), so ``examples/scenarios/figure6a.toml`` reproduces
``repro figure6a`` bit for bit — and because every unit is keyed in the
result store by a content hash of its full signature, rerunning a finished or
interrupted scenario recomputes only the missing units.
"""

from __future__ import annotations

import copy
import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field, is_dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..allocation.multicore import MulticoreProblem, plan_multicore
from ..core.errors import ExperimentError
from ..core.task import Task
from ..core.taskset import TaskSet
from ..experiments.harness import (
    ComparisonConfig,
    ComparisonJob,
    aggregate_fallback_reasons,
    iter_comparisons,
    random_comparison_job,
    warn_if_excessive_fallback,
)
from ..experiments.motivation import MotivationConfig, run_motivation
from ..experiments.seeding import SIMULATION_STREAM
from ..power.processor import ProcessorModel
from ..runtime.multicore import MulticoreRunner
from ..runtime.policies import get_policy
from ..runtime.simulator import SimulationConfig
from ..telemetry.core import current as _telemetry
from ..utils.tables import format_markdown_table
from ..workloads.cnc import cnc_taskset
from ..workloads.gap import gap_taskset
from ..workloads.random_tasksets import RandomTaskSetConfig
from .spec import ScenarioError, ScenarioSpec, TasksetSpec, _set_dotted
from .store import STORE_FORMAT, MemoryStore, ResultStore, signature_key

__all__ = [
    "AUTO_BATCH_THRESHOLD",
    "ScenarioEngine",
    "ScenarioResult",
    "CompiledPoint",
    "CompiledScenario",
    "run_unit",
]

#: ``simulation.engine = "auto"`` crossover: sweeps with at least this many
#: simulation work units (jobs x scheduler methods) run on the batched SoA
#: engine, smaller ones on the compiled scalar loop.  Measured on the
#: Figure-6a shape: below ~200 units the batched engine's padding and
#: array-allocation overhead outweighs its lock-step amortisation.
AUTO_BATCH_THRESHOLD = 200


# --------------------------------------------------------------------- #
# Work-unit signatures (what the store hashes)
# --------------------------------------------------------------------- #
def _processor_signature(processor: ProcessorModel) -> Dict[str, Any]:
    return {
        "vmax": processor.vmax,
        "vmin": processor.vmin,
        "fmax": processor.fmax,
        "vth": processor.vth,
        "alpha": processor.alpha,
        "ceff": processor.ceff,
        "law": processor.law,
    }


def _model_signature(model: Any) -> Dict[str, Any]:
    signature = dict(asdict(model)) if is_dataclass(model) else {}
    signature["type"] = type(model).__name__
    return signature


def _comparison_signature(job: ComparisonJob) -> Dict[str, Any]:
    from ..reporting.serialization import taskset_to_dict

    config = job.config
    signature: Dict[str, Any] = {
        "store_format": STORE_FORMAT,
        "kind": "comparison",
        "processor": _processor_signature(job.processor),
        "schedulers": list(job.schedulers),
        "n_hyperperiods": config.n_hyperperiods,
        "seed": config.seed,
        "baseline": config.baseline,
        "fast_path": config.fast_path,
        "workload": _model_signature(config.workload),
        "policy": {"type": type(config.policy).__name__, "name": config.policy.name},
    }
    # Added only when non-default so every pre-existing store hash is
    # preserved; trace-on payloads carry the event stream, hence must key
    # differently from trace-off ones.
    if config.trace:
        signature["trace"] = True
    if config.arrivals is not None:
        signature["arrivals"] = _model_signature(config.arrivals)
    if job.taskset is not None:
        signature["taskset"] = taskset_to_dict(job.taskset)
    else:
        signature["taskset_config"] = asdict(job.taskset_config)
        signature["taskset_seed"] = job.taskset_seed
        signature["taskset_index"] = job.taskset_index
    return signature


@dataclass(frozen=True)
class _MulticoreUnit:
    """One picklable ``(core count, partitioner)`` work unit."""

    processor: ProcessorModel
    taskset: TaskSet
    n_cores: int
    partitioner: str
    method: str
    policy: str
    n_hyperperiods: int
    seed: int
    fast_path: bool = True

    def signature(self) -> Dict[str, Any]:
        from ..reporting.serialization import taskset_to_dict

        return {
            "store_format": STORE_FORMAT,
            "kind": "multicore",
            "processor": _processor_signature(self.processor),
            "taskset": taskset_to_dict(self.taskset),
            "n_cores": self.n_cores,
            "partitioner": self.partitioner,
            "method": self.method,
            "policy": self.policy,
            "n_hyperperiods": self.n_hyperperiods,
            "seed": self.seed,
            "fast_path": self.fast_path,
        }


def _run_multicore_unit(unit: _MulticoreUnit) -> Dict[str, Any]:
    """Worker entry point (module-level so the process pool can pickle it)."""
    from ..reporting.serialization import multicore_result_to_dict

    problem = MulticoreProblem(
        taskset=unit.taskset,
        processor=unit.processor,
        n_cores=unit.n_cores,
        partitioner=unit.partitioner,
        method=unit.method,
    )
    plan = plan_multicore(problem)
    runner = MulticoreRunner(
        unit.processor,
        policy=unit.policy,
        config=SimulationConfig(n_hyperperiods=unit.n_hyperperiods, fast_path=unit.fast_path),
    )
    return multicore_result_to_dict(runner.run(plan, seed=unit.seed))


@dataclass(frozen=True)
class _MotivationUnit:
    """The motivation table as a (cheap, deterministic) work unit."""

    config: MotivationConfig

    def signature(self) -> Dict[str, Any]:
        return {
            "store_format": STORE_FORMAT,
            "kind": "motivation",
            "frame_length": self.config.frame_length,
            "wcec": self.config.wcec,
            "acec": self.config.acec,
            "bcec": self.config.bcec,
            "processor": _processor_signature(self.config.resolved_processor()),
        }


def _run_motivation_unit(unit: _MotivationUnit) -> Dict[str, Any]:
    result = run_motivation(unit.config)
    return {
        "wcs_end_times": list(result.wcs_end_times),
        "acs_end_times": list(result.acs_end_times),
        "wcs_worst_case_energy": result.wcs_worst_case_energy,
        "wcs_average_case_energy": result.wcs_average_case_energy,
        "acs_average_case_energy": result.acs_average_case_energy,
        "acs_worst_case_energy": result.acs_worst_case_energy,
        "improvement_average_case_percent": result.improvement_average_case_percent,
        "penalty_worst_case_percent": result.penalty_worst_case_percent,
    }


_Unit = Union[ComparisonJob, _MulticoreUnit, _MotivationUnit]


def run_unit(unit: _Unit, solve_memo_root: Optional[str] = None) -> Dict[str, Any]:
    """Execute one compiled work unit to its serialised payload form.

    This is the unit-level entry point shared by every execution path: the
    batch runner uses it for the serial multicore/motivation cases, and the
    sweep server's worker processes call nothing else — a unit computed by a
    server shard is byte-for-byte the payload a ``repro run`` of the same
    spec would have stored.  ``solve_memo_root`` (a store directory, as a
    picklable string) routes comparison planning through the shared
    persistent solve memo.  Module-level so process pools can pickle it.
    """
    if isinstance(unit, ComparisonJob):
        from ..reporting.serialization import comparison_result_to_dict

        (result,) = iter_comparisons([unit], n_jobs=1, solve_memo_root=solve_memo_root)
        return comparison_result_to_dict(result)
    if isinstance(unit, _MulticoreUnit):
        return _run_multicore_unit(unit)
    if isinstance(unit, _MotivationUnit):
        return _run_motivation_unit(unit)
    raise ExperimentError(f"unknown work-unit type {type(unit).__name__}")


#: One expanded matrix cell: axis indices, axis values, and the resolved point spec.
_ExpandedPoint = Tuple[Tuple[int, ...], Dict[str, Any], ScenarioSpec]


# --------------------------------------------------------------------- #
# Compilation
# --------------------------------------------------------------------- #
@dataclass
class CompiledPoint:
    """One sweep point: its axis coordinates and the keys of its work units."""

    coords: Dict[str, Any]
    label: str
    unit_keys: List[str] = field(default_factory=list)


@dataclass
class CompiledScenario:
    """A spec lowered to content-addressed work units grouped into points."""

    spec: ScenarioSpec
    points: List[CompiledPoint]
    units: Dict[str, _Unit]


def build_taskset(spec: TasksetSpec, processor: ProcessorModel) -> TaskSet:
    """Materialise a fixed (non-random) task set described by a spec section."""
    if spec.source == "cnc":
        return cnc_taskset(processor, target_utilization=spec.utilization, bcec_wcec_ratio=spec.ratio)
    if spec.source == "gap":
        return gap_taskset(
            processor,
            target_utilization=spec.utilization,
            bcec_wcec_ratio=spec.ratio,
            n_tasks=spec.gap_tasks,
        )
    if spec.source == "explicit":
        try:
            tasks = [Task(**dict(entry)) for entry in spec.tasks]
        except TypeError as error:
            raise ScenarioError(f"taskset.tasks: {error}") from None
        taskset = TaskSet(tasks, name=spec.name)
        if not any("acec" in entry or "bcec" in entry for entry in spec.tasks):
            taskset = taskset.with_bcec_ratio(spec.ratio)
        return taskset
    raise ScenarioError(f"taskset source {spec.source!r} does not describe a fixed task set")


def _coord_label(coords: Dict[str, Any]) -> str:
    return " ".join(f"{key.split('.')[-1]}={value}" for key, value in coords.items())


class ScenarioEngine:
    """Compiles and executes scenarios against an optional result store."""

    def __init__(self, store: Optional[ResultStore] = None):
        self.store = store if store is not None else MemoryStore()

    # ------------------------------------------------------------------ #
    # Compile
    # ------------------------------------------------------------------ #
    def compile(self, spec: ScenarioSpec) -> CompiledScenario:
        """Expand the matrix and lower every point to keyed work units."""
        if spec.kind == "comparison":
            return self._compile_comparison(spec)
        if spec.kind == "multicore":
            return self._compile_multicore(spec)
        return self._compile_motivation(spec)

    @staticmethod
    def unit_labels(compiled: CompiledScenario) -> Dict[str, str]:
        """``{unit key: point label}`` over every unit of a compiled scenario."""
        return {key: point.label for point in compiled.points for key in point.unit_keys}

    def iter_units(self, compiled: CompiledScenario) -> Iterator[Tuple[str, _Unit, str]]:
        """Yield ``(key, unit, label)`` for every work unit of a compiled scenario.

        This is the unit-level view the sweep server schedules from: each
        tuple is independently executable via :func:`run_unit` and
        independently persistable under ``key``.
        """
        labels = self.unit_labels(compiled)
        for key, unit in compiled.units.items():
            yield key, unit, labels[key]

    def _expand_matrix(self, spec: ScenarioSpec) -> List["_ExpandedPoint"]:
        base = spec.to_dict()
        base.pop("matrix")
        expanded = []
        ranges = [range(len(values)) for _, values in spec.matrix]
        for coords_idx in itertools.product(*ranges):
            point_dict = copy.deepcopy(base)
            coords: Dict[str, Any] = {}
            for (key, values), index in zip(spec.matrix, coords_idx):
                _set_dotted(point_dict, key, values[index])
                coords[key] = values[index]
            point_dict["matrix"] = {}
            expanded.append((coords_idx, coords, ScenarioSpec.from_dict(point_dict)))
        return expanded

    def _compile_comparison(self, spec: ScenarioSpec) -> CompiledScenario:
        points: List[CompiledPoint] = []
        units: Dict[str, _Unit] = {}
        auto_keys: List[str] = []
        for coords_idx, coords, point_spec in self._expand_matrix(spec):
            processor = point_spec.power.build()
            simulation = point_spec.simulation
            config = ComparisonConfig(
                n_hyperperiods=simulation.hyperperiods,
                seed=simulation.seed,
                baseline=point_spec.offline.baseline,
                workload=point_spec.workload.build(),
                policy=get_policy(point_spec.online.policy),
                fast_path=simulation.fast_path,
                # Engine choice is deliberately absent from the unit
                # signature: batched and compiled runs are bitwise-identical,
                # so either may serve the other's store hits.
                batched=simulation.engine == "batched",
                trace=simulation.trace,
                # None (not PeriodicArrivals) for the default keeps the
                # simulator's zero-overhead path and the store signature of
                # every pre-existing scenario unchanged.
                arrivals=None if point_spec.arrivals.model == "periodic"
                else point_spec.arrivals.build(),
            )
            methods = tuple(point_spec.offline.methods)
            point = CompiledPoint(coords=coords, label=_coord_label(coords) or spec.name)
            for repetition in range(simulation.repetitions):
                if point_spec.taskset.source == "random":
                    generator_kwargs: Dict[str, Any] = {
                        "n_tasks": point_spec.taskset.n_tasks,
                        "target_utilization": point_spec.taskset.utilization,
                        "bcec_wcec_ratio": point_spec.taskset.ratio,
                    }
                    if point_spec.taskset.periods is not None:
                        generator_kwargs["periods"] = point_spec.taskset.periods
                    job = random_comparison_job(
                        processor,
                        RandomTaskSetConfig(**generator_kwargs),
                        config,
                        *coords_idx,
                        repetition,
                        taskset_index=repetition,
                        schedulers=methods,
                    )
                else:
                    # A fixed task set with one repetition derives its seed from
                    # the point coordinates alone — exactly the Figure-6b path.
                    path = coords_idx if simulation.repetitions == 1 else (*coords_idx, repetition)
                    job = ComparisonJob(
                        processor=processor,
                        config=config.with_derived_seed(*path, SIMULATION_STREAM),
                        taskset=build_taskset(point_spec.taskset, processor),
                        schedulers=methods,
                    )
                key = signature_key(_comparison_signature(job))
                units[key] = job
                point.unit_keys.append(key)
                if simulation.engine == "auto":
                    auto_keys.append(key)
            points.append(point)
        # engine = "auto": pick the runtime per sweep size.  Each job
        # simulates one unit per scheduler method; past the measured
        # crossover the SoA engine's lock-step amortisation wins, below it
        # the compiled scalar loop does.  Flipping ``batched`` after keying
        # is deliberate — the engine choice is not part of the signature.
        if auto_keys:
            total_units = sum(len(job.schedulers) for job in units.values())
            if total_units >= AUTO_BATCH_THRESHOLD:
                for key in set(auto_keys):
                    job = units[key]
                    units[key] = replace(
                        job, config=replace(job.config, batched=True))
        return CompiledScenario(spec=spec, points=points, units=units)

    def _compile_multicore(self, spec: ScenarioSpec) -> CompiledScenario:
        if spec.matrix:
            raise ScenarioError(
                "multicore scenarios use the native cores x partitioners grid; "
                "a [matrix] is not supported for this kind"
            )
        processor = spec.power.build()
        taskset = build_taskset(spec.taskset, processor)
        points: List[CompiledPoint] = []
        units: Dict[str, _Unit] = {}
        for n_cores in spec.multicore.cores:
            for partitioner in spec.multicore.partitioners:
                unit = _MulticoreUnit(
                    processor=processor,
                    taskset=taskset,
                    n_cores=n_cores,
                    partitioner=partitioner,
                    method=spec.offline.methods[0],
                    policy=spec.online.policy,
                    n_hyperperiods=spec.simulation.hyperperiods,
                    seed=spec.simulation.seed,
                    fast_path=spec.simulation.fast_path,
                )
                key = signature_key(unit.signature())
                units[key] = unit
                coords = {"multicore.cores": n_cores, "multicore.partitioner": partitioner}
                points.append(CompiledPoint(coords=coords, label=_coord_label(coords), unit_keys=[key]))
        return CompiledScenario(spec=spec, points=points, units=units)

    def _compile_motivation(self, spec: ScenarioSpec) -> CompiledScenario:
        unit = _MotivationUnit(
            config=MotivationConfig(
                frame_length=spec.motivation.frame_length,
                wcec=spec.motivation.wcec,
                acec=spec.motivation.acec,
                bcec=spec.motivation.bcec,
                processor=spec.power.build(),
            )
        )
        key = signature_key(unit.signature())
        point = CompiledPoint(coords={}, label=spec.name, unit_keys=[key])
        return CompiledScenario(spec=spec, points=[point], units={key: unit})

    # ------------------------------------------------------------------ #
    # Execute
    # ------------------------------------------------------------------ #
    def run(self, spec: ScenarioSpec, *, n_jobs: int = 1, force: bool = False) -> "ScenarioResult":
        """Execute a scenario, replaying stored units and computing the rest.

        ``force=True`` ignores (and overwrites) stored results.  Aggregates
        are always computed from the serialised payload form, so warm and
        cold runs are bitwise-identical.
        """
        if n_jobs < 1:
            raise ExperimentError("n_jobs must be at least 1")
        telemetry = _telemetry()
        # The stage timer replaces the old inline perf_counter pair: with
        # telemetry enabled the same ns interval is recorded as a
        # "scenario.run" span, so elapsed_seconds stays bitwise-derivable
        # from the span row.
        with telemetry.stage("scenario.run") as timer:
            with telemetry.span("scenario.compile"):
                compiled = self.compile(spec)
            labels = self.unit_labels(compiled)
            payloads: Dict[str, Dict[str, Any]] = {}
            pending = []
            with telemetry.span("scenario.replay"):
                for key in compiled.units:
                    payload = None if force else self.store.get(key)
                    if payload is None:
                        pending.append(key)
                    else:
                        payloads[key] = payload
            telemetry.count("scenario.units_computed", len(pending))
            telemetry.count("scenario.units_replayed", len(compiled.units) - len(pending))
            with telemetry.span("scenario.execute"):
                self._execute_pending(compiled, pending, spec, labels, n_jobs)
            for key in pending:
                payload = self.store.get(key)
                if payload is None:
                    raise ExperimentError(f"store lost unit {key[:12]} mid-run; rerun with --force")
                payloads[key] = payload
            with telemetry.span("scenario.aggregate"):
                points = self.aggregate(compiled, payloads)
            fallback_reasons = self._fallback_reasons(spec, payloads)
        return ScenarioResult(
            spec=spec,
            points=points,
            computed=len(pending),
            skipped=len(compiled.units) - len(pending),
            elapsed_seconds=timer.elapsed_seconds,
            fallback_reasons=fallback_reasons,
        )

    def _fallback_reasons(
        self, spec: ScenarioSpec, payloads: Dict[str, Dict[str, Any]]
    ) -> Dict[str, int]:
        """Aggregate per-unit fallback tallies (and warn when they dominate).

        Payloads written before the tallies existed simply lack the key and
        contribute nothing, so warm replays of old stores stay valid.
        """
        if spec.kind != "comparison":
            return {}
        fallback_reasons = aggregate_fallback_reasons(
            payload.get("fallback_reasons") for payload in payloads.values()
        )
        total_units = sum(len(payload.get("methods", {})) for payload in payloads.values())
        warn_if_excessive_fallback(fallback_reasons, total_units,
                                   context=f"scenario {spec.name!r}")
        return fallback_reasons

    def _execute_pending(
        self,
        compiled: CompiledScenario,
        pending: Sequence[str],
        spec: ScenarioSpec,
        labels: Dict[str, str],
        n_jobs: int,
    ) -> None:
        # Every finished unit is persisted the moment its result arrives (the
        # executors are consumed lazily), so a run killed mid-sweep loses at
        # most the units still in flight — that is the resume guarantee.
        comparison_keys = [key for key in pending if isinstance(compiled.units[key], ComparisonJob)]
        if comparison_keys:
            from ..reporting.serialization import comparison_result_to_dict

            jobs = [compiled.units[key] for key in comparison_keys]
            # A disk-backed store doubles as the solve memo's persistence
            # root: NLP solves land next to the comparison payloads, so a
            # killed sweep resumes its offline planning for free.
            solve_memo_root = (
                str(self.store.root) if isinstance(self.store, ResultStore) else None
            )
            results = iter_comparisons(jobs, n_jobs=n_jobs,
                                       solve_memo_root=solve_memo_root)
            for key, result in zip(comparison_keys, results):
                payload = comparison_result_to_dict(result)
                self.store.put(key, payload, scenario=spec.name, label=labels[key])
        multicore_keys = [key for key in pending if isinstance(compiled.units[key], _MulticoreUnit)]
        if multicore_keys:
            units = [compiled.units[key] for key in multicore_keys]
            if n_jobs == 1 or len(units) <= 1:
                payload_stream = (run_unit(unit) for unit in units)
                for key, payload in zip(multicore_keys, payload_stream):
                    self.store.put(key, payload, scenario=spec.name, label=labels[key])
            else:
                with ProcessPoolExecutor(max_workers=min(n_jobs, len(units))) as pool:
                    for key, payload in zip(multicore_keys, pool.map(_run_multicore_unit, units)):
                        self.store.put(key, payload, scenario=spec.name, label=labels[key])
        for key in pending:
            unit = compiled.units[key]
            if isinstance(unit, _MotivationUnit):
                self.store.put(key, run_unit(unit), scenario=spec.name, label=labels[key])

    # ------------------------------------------------------------------ #
    # Aggregation (always from the serialised payload form)
    # ------------------------------------------------------------------ #
    def aggregate(
        self, compiled: CompiledScenario, payloads: Dict[str, Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Aggregate per-unit payloads into the scenario's point rows.

        ``payloads`` must cover every unit key of ``compiled``; because
        aggregation always reads the serialised payload form, it does not
        matter whether a payload was computed here, replayed from the store,
        or streamed back from a sweep server — the rows are bitwise-identical.
        """
        return [self._aggregate_point(compiled.spec, point, payloads) for point in compiled.points]

    def _aggregate_point(
        self,
        spec: ScenarioSpec,
        point: CompiledPoint,
        payloads: Dict[str, Dict[str, Any]],
    ) -> Dict[str, Any]:
        rows = [payloads[key] for key in point.unit_keys]
        if spec.kind == "comparison":
            methods: Dict[str, Dict[str, Any]] = {}
            for method in spec.offline.methods:
                energies = [row["methods"][method]["mean_energy_per_hyperperiod"] for row in rows]
                improvements = [row["methods"][method]["improvement_over_baseline_percent"] for row in rows]
                methods[method] = {
                    "mean_energy_per_hyperperiod": float(np.mean(energies)),
                    "mean_improvement_percent": float(np.mean(improvements)),
                    "std_improvement_percent": float(np.std(improvements)),
                    "deadline_misses": sum(row["methods"][method]["deadline_misses"] for row in rows),
                }
            return {
                "coords": dict(point.coords),
                "jobs": len(rows),
                "methods": methods,
                "deadline_misses": sum(entry["deadline_misses"] for entry in methods.values()),
            }
        if spec.kind == "multicore":
            (row,) = rows
            utilizations = list(row["core_utilizations"])
            return {
                "coords": dict(point.coords),
                "mean_energy_per_hyperperiod": row["mean_energy_per_hyperperiod"],
                "total_energy": row["total_energy"],
                "max_core_utilization": max(utilizations),
                "used_cores": sum(1 for value in utilizations if value > 0.0),
                "deadline_misses": row["deadline_misses"],
            }
        (row,) = rows
        return {"coords": dict(point.coords), **row}


# --------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------- #
@dataclass
class ScenarioResult:
    """Aggregated scenario outcome plus store bookkeeping.

    ``points`` holds plain dictionaries (the serialisable aggregate form);
    ``computed``/``skipped`` count work units executed versus replayed from
    the store.  Everything except ``elapsed_seconds`` is deterministic.
    """

    spec: ScenarioSpec
    points: List[Dict[str, Any]]
    computed: int
    skipped: int
    elapsed_seconds: float = 0.0
    #: Merged per-unit fallback tallies of a comparison sweep's batched
    #: stages (``"batch:<reason>"`` / ``"solve:<reason>"`` keys; empty when
    #: nothing fell back — see :class:`~repro.experiments.harness.ComparisonResult`).
    fallback_reasons: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        return f"units: computed={self.computed} skipped={self.skipped}"

    def point(self, **coords: Any) -> Dict[str, Any]:
        """The point whose coords match every given ``field=value`` (last path segment)."""
        for candidate in self.points:
            short = {key.split(".")[-1]: value for key, value in candidate["coords"].items()}
            if all(short.get(name) == value for name, value in coords.items()):
                return candidate
        raise KeyError(coords)

    def to_markdown(self) -> str:
        if self.spec.kind == "comparison":
            return self._comparison_markdown()
        if self.spec.kind == "multicore":
            return self._multicore_markdown()
        return self._motivation_markdown()

    def _comparison_markdown(self) -> str:
        axis_keys = [key for key, _ in self.spec.matrix]
        methods = list(self.spec.offline.methods)
        improving = [method for method in methods if method != self.spec.offline.baseline]
        headers = (
            [key.split(".")[-1] for key in axis_keys]
            + [f"{method} energy" for method in methods]
            + [f"{method} improvement %" for method in improving]
            + ["misses"]
        )
        rows = []
        for point in self.points:
            row: List[Any] = [point["coords"][key] for key in axis_keys]
            row += [point["methods"][method]["mean_energy_per_hyperperiod"] for method in methods]
            row += [point["methods"][method]["mean_improvement_percent"] for method in improving]
            row.append(point["deadline_misses"])
            rows.append(row)
        return format_markdown_table(headers, rows)

    def _multicore_markdown(self) -> str:
        cores = list(self.spec.multicore.cores)
        baseline_cores = 1 if 1 in cores else min(cores)
        baseline_energy = {
            point["coords"]["multicore.partitioner"]: point["mean_energy_per_hyperperiod"]
            for point in self.points
            if point["coords"]["multicore.cores"] == baseline_cores
        }
        headers = [
            "cores",
            "partitioner",
            "energy / hyperperiod",
            f"improvement vs m={baseline_cores} %",
            "max core util",
            "used cores",
            "misses",
        ]
        rows = []
        for point in self.points:
            partitioner = point["coords"]["multicore.partitioner"]
            reference = baseline_energy[partitioner]
            energy = point["mean_energy_per_hyperperiod"]
            improvement = 100.0 * (reference - energy) / reference if reference > 0 else 0.0
            rows.append(
                [
                    point["coords"]["multicore.cores"],
                    partitioner,
                    energy,
                    improvement,
                    point["max_core_utilization"],
                    point["used_cores"],
                    point["deadline_misses"],
                ]
            )
        return format_markdown_table(headers, rows)

    def _motivation_markdown(self) -> str:
        (point,) = self.points
        improvement = point["improvement_average_case_percent"]
        penalty = point["penalty_worst_case_percent"]
        table = format_markdown_table(
            ["scenario", "end-times", "workload", "energy"],
            [
                ["static schedule", "WCS", "WCEC", point["wcs_worst_case_energy"]],
                ["runtime (greedy)", "WCS", "ACEC", point["wcs_average_case_energy"]],
                ["runtime (greedy)", "ACS", "ACEC", point["acs_average_case_energy"]],
                ["worst case under ACS", "ACS", "WCEC", point["acs_worst_case_energy"]],
            ],
        )
        return "\n".join(
            [
                table,
                "",
                f"average-case improvement of ACS end-times: {improvement:.1f}%",
                f"worst-case penalty of ACS end-times:       {penalty:.1f}%",
            ]
        )
