"""The declarative scenario model: one validated, fully resolved experiment description.

A *scenario* is everything the paper's evaluation varies, expressed as data
instead of code: the task-set source (explicit tasks, the random generator, or
the CNC/GAP case studies), the offline method(s) under comparison, the online
DVS policy, the workload distribution, the power model, an optional multicore
grid, seeds and repetitions — plus a *matrix* of dotted-key axes whose cross
product the engine expands into sweep points (exactly how Figure 6a sweeps
task count x BCEC/WCEC ratio).

:class:`ScenarioSpec` is the **resolved** form: profiles have already been
applied by the loader (:mod:`repro.scenarios.loader`) and every field is
validated eagerly, so an invalid spec fails at parse time, not mid-sweep.
``to_dict``/``from_dict`` round-trip losslessly; the canonical dict form is
also what the result store hashes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..core.errors import ReproError

__all__ = [
    "ScenarioError",
    "TasksetSpec",
    "OfflineSpec",
    "OnlineSpec",
    "WorkloadSpec",
    "ArrivalsSpec",
    "PowerSpec",
    "SimulationSpec",
    "MulticoreSpec",
    "MotivationSpec",
    "ScenarioSpec",
    "SCENARIO_KINDS",
    "TASKSET_SOURCES",
    "POWER_MODELS",
    "SIMULATION_ENGINES",
]


class ScenarioError(ReproError):
    """A scenario file or dictionary is malformed."""


#: Scenario kinds the engine knows how to execute.
SCENARIO_KINDS = ("comparison", "multicore", "motivation")

#: Task-set sources understood by :class:`TasksetSpec`.
TASKSET_SOURCES = ("random", "explicit", "cnc", "gap")

#: Power-model presets understood by :class:`PowerSpec`.
POWER_MODELS = ("ideal", "cmos", "normalized")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ScenarioError(message)


def _check_type(value: Any, types: tuple, where: str) -> None:
    # bool is an int subtype; reject it explicitly for numeric fields.
    if isinstance(value, bool) and bool not in types:
        raise ScenarioError(f"{where}: expected {types}, got a boolean")
    if not isinstance(value, types):
        raise ScenarioError(f"{where}: expected {tuple(t.__name__ for t in types)}, got {value!r}")


@dataclass(frozen=True)
class TasksetSpec:
    """Where the task set(s) of the scenario come from.

    ``source`` selects the family: ``"random"`` (the Figure-6a generator,
    parameterised by ``n_tasks``/``utilization``/``periods``), ``"cnc"`` and
    ``"gap"`` (the case studies), or ``"explicit"`` (``tasks`` is a tuple of
    task dictionaries with at least ``name``/``period``/``wcec``).  ``ratio``
    is the BCEC/WCEC ratio applied to every source; explicit tasks that carry
    their own ``acec``/``bcec`` are left untouched.
    """

    source: str = "random"
    ratio: float = 0.5
    utilization: float = 0.7
    n_tasks: int = 4
    periods: Optional[Tuple[float, ...]] = None
    gap_tasks: Optional[int] = 8
    name: str = "taskset"
    tasks: Tuple[Mapping[str, Any], ...] = ()

    def __post_init__(self) -> None:
        _require(
            self.source in TASKSET_SOURCES,
            f"taskset.source must be one of {TASKSET_SOURCES}, got {self.source!r}",
        )
        _require(0.0 < self.ratio <= 1.0, f"taskset.ratio must lie in (0, 1], got {self.ratio}")
        _require(
            0.0 < self.utilization <= 1.0,
            f"taskset.utilization must lie in (0, 1], got {self.utilization}",
        )
        _require(self.n_tasks > 0, f"taskset.n_tasks must be positive, got {self.n_tasks}")
        if self.periods is not None:
            _require(len(self.periods) > 0, "taskset.periods must be non-empty when given")
            object.__setattr__(self, "periods", tuple(float(p) for p in self.periods))
        if self.gap_tasks is not None:
            _require(self.gap_tasks > 0, f"taskset.gap_tasks must be positive, got {self.gap_tasks}")
        if self.source == "explicit":
            _require(len(self.tasks) > 0, "an explicit taskset needs at least one [[taskset.tasks]] entry")
            for entry in self.tasks:
                missing = [key for key in ("name", "period", "wcec") if key not in entry]
                _require(not missing, f"explicit task {entry!r} is missing fields {missing}")
        else:
            _require(
                len(self.tasks) == 0,
                f"taskset.tasks is only valid with source='explicit', not {self.source!r}",
            )
        object.__setattr__(self, "tasks", tuple(dict(entry) for entry in self.tasks))


@dataclass(frozen=True)
class OfflineSpec:
    """Offline voltage schedulers under comparison, by registry name."""

    methods: Tuple[str, ...] = ("wcs", "acs")
    baseline: str = "wcs"

    def __post_init__(self) -> None:
        from ..experiments.harness import scheduler_names

        object.__setattr__(self, "methods", tuple(self.methods))
        _require(len(self.methods) > 0, "offline.methods must name at least one scheduler")
        known = scheduler_names()
        unknown = [name for name in self.methods if name not in known]
        _require(not unknown, f"unknown offline methods {unknown}; known: {list(known)}")
        _require(
            self.baseline in self.methods,
            f"offline.baseline {self.baseline!r} is not among methods {list(self.methods)}",
        )


@dataclass(frozen=True)
class OnlineSpec:
    """The online DVS policy driving every simulation of the scenario."""

    policy: str = "greedy"

    def __post_init__(self) -> None:
        from ..runtime.policies import available_policies

        _require(
            self.policy in available_policies(),
            f"unknown online policy {self.policy!r}; known: {list(available_policies())}",
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """Workload distribution (actual execution cycles) by registry name."""

    model: str = "normal"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        self.build()  # validate the name and the parameters eagerly

    def build(self):
        from ..core.errors import WorkloadError
        from ..workloads.distributions import get_workload_model

        try:
            return get_workload_model(self.model, **self.params)
        except (WorkloadError, TypeError) as error:
            raise ScenarioError(f"workload: {error}") from None


@dataclass(frozen=True)
class ArrivalsSpec:
    """Arrival model (job release jitter) by registry name.

    The default (``"periodic"``) is the paper's strictly periodic model; it
    is also what an absent ``[arrivals]`` section means, so existing
    scenarios are unaffected.  A non-default model is only meaningful for
    ``kind = "comparison"`` scenarios and forces batched work units onto the
    compiled fallback.
    """

    model: str = "periodic"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        self.build()  # validate the name and the parameters eagerly

    def build(self):
        from ..core.errors import WorkloadError
        from ..workloads.arrivals import get_arrival_model

        try:
            return get_arrival_model(self.model, **self.params)
        except (WorkloadError, TypeError) as error:
            raise ScenarioError(f"arrivals: {error}") from None


@dataclass(frozen=True)
class PowerSpec:
    """Processor model preset plus keyword overrides (``fmax``, ``vmax``, ...)."""

    model: str = "ideal"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require(self.model in POWER_MODELS, f"power.model must be one of {POWER_MODELS}, got {self.model!r}")
        object.__setattr__(self, "params", dict(self.params))
        self.build()  # validate the parameters eagerly

    def build(self):
        from ..core.errors import InvalidProcessorError
        from ..power import presets

        factory = {
            "ideal": presets.ideal_processor,
            "cmos": presets.cmos_processor,
            "normalized": presets.normalized_processor,
        }[self.model]
        try:
            return factory(**self.params)
        except (InvalidProcessorError, TypeError) as error:
            raise ScenarioError(f"power: {error}") from None


#: Simulation engines selectable from a scenario file.
SIMULATION_ENGINES = ("auto", "compiled", "batched")


@dataclass(frozen=True)
class SimulationSpec:
    """How long, how often and how reproducibly each point is simulated.

    ``engine`` selects the runtime event loop: ``"compiled"`` (the scalar
    fast path), ``"batched"`` (the structure-of-arrays engine of
    :mod:`repro.runtime.batched`, which advances all of a sweep's work units
    in lock-step), or ``"auto"`` (the default: the scenario engine counts
    the sweep's work units after expansion and picks batched only past the
    measured crossover, ~200 units, below which SoA padding overhead beats
    its amortisation).  All choices are bitwise-identical for the same
    spec, so the engine deliberately does **not** enter the result-store
    signature — a batched run store-hits records computed by a compiled
    run and vice versa.
    """

    hyperperiods: int = 20
    seed: int = 2005
    repetitions: int = 1
    fast_path: bool = True
    engine: str = "auto"
    #: Record the typed event stream of every simulation on the stored
    #: payloads (see :mod:`repro.runtime.trace`).  Only valid for
    #: ``kind = "comparison"``; batched units fall back to the compiled loop.
    trace: bool = False

    def __post_init__(self) -> None:
        _check_type(self.trace, (bool,), "simulation.trace")
        _require(self.hyperperiods > 0, f"simulation.hyperperiods must be positive, got {self.hyperperiods}")
        _require(self.repetitions > 0, f"simulation.repetitions must be positive, got {self.repetitions}")
        _check_type(self.seed, (int,), "simulation.seed")
        _require(
            self.engine in SIMULATION_ENGINES,
            f"simulation.engine must be one of {SIMULATION_ENGINES}, got {self.engine!r}",
        )


@dataclass(frozen=True)
class MulticoreSpec:
    """The ``(core count, partitioner)`` grid of a ``kind="multicore"`` scenario."""

    cores: Tuple[int, ...] = (1, 2, 4, 8)
    partitioners: Tuple[str, ...] = ("ffd", "bfd", "wfd", "energy")

    def __post_init__(self) -> None:
        from ..allocation.partitioners import available_partitioners

        object.__setattr__(self, "cores", tuple(int(m) for m in self.cores))
        object.__setattr__(self, "partitioners", tuple(self.partitioners))
        _require(len(self.cores) > 0, "multicore.cores must name at least one core count")
        _require(all(m >= 1 for m in self.cores), f"multicore.cores must all be >= 1, got {list(self.cores)}")
        _require(len(self.partitioners) > 0, "multicore.partitioners must name at least one heuristic")
        known = available_partitioners()
        unknown = [name for name in self.partitioners if name not in known]
        _require(not unknown, f"unknown partitioners {unknown}; known: {list(known)}")


@dataclass(frozen=True)
class MotivationSpec:
    """Parameters of the reconstructed motivational example (Table 1)."""

    frame_length: float = 20.0
    wcec: float = 5000.0
    acec: float = 1500.0
    bcec: float = 500.0

    def __post_init__(self) -> None:
        _require(self.frame_length > 0, "motivation.frame_length must be positive")
        _require(0 < self.bcec <= self.acec <= self.wcec, "motivation needs 0 < bcec <= acec <= wcec")


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully resolved scenario: sections plus the sweep matrix.

    ``matrix`` is an ordered tuple of ``(dotted_key, values)`` axes; the
    engine expands their cross product in declaration order, and a point's
    axis indices are the seed-derivation coordinates of its work units — so
    axis order is semantically significant (it pins the RNG streams) and is
    preserved through ``to_dict``/``from_dict``.
    """

    kind: str = "comparison"
    name: str = "scenario"
    description: str = ""
    taskset: TasksetSpec = field(default_factory=TasksetSpec)
    offline: OfflineSpec = field(default_factory=OfflineSpec)
    online: OnlineSpec = field(default_factory=OnlineSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    arrivals: ArrivalsSpec = field(default_factory=ArrivalsSpec)
    power: PowerSpec = field(default_factory=PowerSpec)
    simulation: SimulationSpec = field(default_factory=SimulationSpec)
    multicore: MulticoreSpec = field(default_factory=MulticoreSpec)
    motivation: MotivationSpec = field(default_factory=MotivationSpec)
    matrix: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    def __post_init__(self) -> None:
        _require(self.kind in SCENARIO_KINDS, f"kind must be one of {SCENARIO_KINDS}, got {self.kind!r}")
        _require(bool(self.name), "a scenario needs a non-empty name")
        if self.kind == "multicore":
            _require(
                len(self.offline.methods) == 1,
                "a multicore scenario plans every core with one offline method; "
                "give exactly one entry in offline.methods",
            )
            _require(
                self.taskset.source != "random",
                "multicore scenarios need a fixed task set (explicit/cnc/gap)",
            )
        if self.kind == "motivation":
            _require(not self.matrix, "motivation scenarios do not support a matrix")
        if self.kind != "comparison":
            _require(
                not self.simulation.trace,
                f"simulation.trace = true is only supported for kind = 'comparison' "
                f"scenarios, not {self.kind!r}",
            )
            _require(
                self.arrivals == ArrivalsSpec(),
                f"a non-periodic [arrivals] model is only supported for "
                f"kind = 'comparison' scenarios, not {self.kind!r}",
            )
            _require(
                self.simulation.engine in ("auto", "compiled"),
                f"simulation.engine = 'batched' is only supported for kind = 'comparison' "
                f"scenarios (the batched engine sits beneath the comparison harness), "
                f"not {self.kind!r}",
            )
        normalized = []
        for axis in self.matrix:
            _require(len(axis) == 2, f"matrix axes are (key, values) pairs, got {axis!r}")
            key, values = axis
            _require(
                isinstance(key, str) and "." in key,
                f"matrix keys are dotted section.field paths, got {key!r}",
            )
            values = tuple(values)
            _require(len(values) > 0, f"matrix axis {key!r} needs at least one value")
            normalized.append((key, values))
        object.__setattr__(self, "matrix", tuple(normalized))
        # Every matrix key must target a real scalar field: apply each axis's
        # first value to the base dict and rebuild, so typos fail at load time.
        if self.matrix:
            probe = self.to_dict()
            probe.pop("matrix")
            for key, values in self.matrix:
                _set_dotted(probe, key, values[0])
            ScenarioSpec.from_dict({**probe, "matrix": {}})

    # ------------------------------------------------------------------ #
    # Canonical dict form (what files parse to and what the store hashes)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form; ``from_dict(to_dict(spec)) == spec``."""
        data: Dict[str, Any] = {
            "kind": self.kind,
            "name": self.name,
            "description": self.description,
            "taskset": {
                "source": self.taskset.source,
                "ratio": self.taskset.ratio,
                "utilization": self.taskset.utilization,
                "n_tasks": self.taskset.n_tasks,
                "name": self.taskset.name,
            },
            "offline": {"methods": list(self.offline.methods), "baseline": self.offline.baseline},
            "online": {"policy": self.online.policy},
            "workload": {"model": self.workload.model, **dict(self.workload.params)},
            "power": {"model": self.power.model, **dict(self.power.params)},
            "simulation": {
                "hyperperiods": self.simulation.hyperperiods,
                "seed": self.simulation.seed,
                "repetitions": self.simulation.repetitions,
                "fast_path": self.simulation.fast_path,
                "engine": self.simulation.engine,
                "trace": self.simulation.trace,
            },
            "matrix": {key: list(values) for key, values in self.matrix},
        }
        # Emitted only when non-default, so pre-existing scenario dicts (and
        # their round-trips) are byte-for-byte unchanged.
        if self.arrivals != ArrivalsSpec():
            data["arrivals"] = {"model": self.arrivals.model, **dict(self.arrivals.params)}
        if self.taskset.periods is not None:
            data["taskset"]["periods"] = list(self.taskset.periods)
        if self.taskset.gap_tasks is not None:
            data["taskset"]["gap_tasks"] = self.taskset.gap_tasks
        if self.taskset.tasks:
            data["taskset"]["tasks"] = [dict(entry) for entry in self.taskset.tasks]
        if self.kind == "multicore":
            data["multicore"] = {
                "cores": list(self.multicore.cores),
                "partitioners": list(self.multicore.partitioners),
            }
        if self.kind == "motivation":
            data["motivation"] = {
                "frame_length": self.motivation.frame_length,
                "wcec": self.motivation.wcec,
                "acec": self.motivation.acec,
                "bcec": self.motivation.bcec,
            }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Build a validated spec from the canonical dict form (strict keys)."""
        _check_type(data, (dict,), "scenario")
        known = {
            "kind",
            "name",
            "description",
            "taskset",
            "offline",
            "online",
            "workload",
            "arrivals",
            "power",
            "simulation",
            "multicore",
            "motivation",
            "matrix",
            "profiles",
        }
        unknown = sorted(set(data) - known)
        _require(not unknown, f"unknown top-level scenario keys {unknown}; known: {sorted(known)}")
        # Kind-specific sections are rejected under any other kind (instead of
        # being silently ignored and dropped by to_dict): this both preserves
        # the lossless round-trip contract and catches a forgotten `kind =`.
        kind = data.get("kind", "comparison")
        _require(
            "multicore" not in data or kind == "multicore",
            f"a [multicore] section is only valid with kind = 'multicore', not {kind!r}",
        )
        _require(
            "motivation" not in data or kind == "motivation",
            f"a [motivation] section is only valid with kind = 'motivation', not {kind!r}",
        )
        section_names = (
            "taskset",
            "offline",
            "online",
            "workload",
            "arrivals",
            "power",
            "simulation",
            "multicore",
            "motivation",
        )
        sections = {key: _section(data, key) for key in section_names}
        matrix_table = _section(data, "matrix")
        for key, values in matrix_table.items():
            _check_type(values, (list, tuple), f"matrix.{key}")
        workload = dict(sections["workload"])
        arrivals = dict(sections["arrivals"])
        power = dict(sections["power"])
        try:
            return cls(
                kind=data.get("kind", "comparison"),
                name=data.get("name", "scenario"),
                description=data.get("description", ""),
                taskset=_build_section(TasksetSpec, sections["taskset"], "taskset"),
                offline=_build_section(OfflineSpec, sections["offline"], "offline"),
                online=_build_section(OnlineSpec, sections["online"], "online"),
                workload=WorkloadSpec(model=workload.pop("model", "normal"), params=workload),
                arrivals=ArrivalsSpec(model=arrivals.pop("model", "periodic"), params=arrivals),
                power=PowerSpec(model=power.pop("model", "ideal"), params=power),
                simulation=_build_section(SimulationSpec, sections["simulation"], "simulation"),
                multicore=_build_section(MulticoreSpec, sections["multicore"], "multicore"),
                motivation=_build_section(MotivationSpec, sections["motivation"], "motivation"),
                matrix=tuple((key, tuple(values)) for key, values in matrix_table.items()),
            )
        except TypeError as error:
            raise ScenarioError(f"malformed scenario: {error}") from None


def _section(data: Mapping[str, Any], key: str) -> Dict[str, Any]:
    value = data.get(key, {})
    _check_type(value, (dict,), key)
    return dict(value)


def _build_section(cls, table: Dict[str, Any], where: str):
    fields = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
    unknown = sorted(set(table) - fields)
    _require(not unknown, f"unknown keys {unknown} in [{where}]; known: {sorted(fields)}")
    return cls(**table)


def _set_dotted(data: Dict[str, Any], dotted: str, value: Any) -> None:
    """Set ``data["a"]["b"] = value`` for ``dotted == "a.b"`` (creating tables)."""
    parts = dotted.split(".")
    cursor = data
    for part in parts[:-1]:
        cursor = cursor.setdefault(part, {})
        if not isinstance(cursor, dict):
            raise ScenarioError(f"matrix key {dotted!r} does not address a table field")
    cursor[parts[-1]] = value
