"""Load scenario files (TOML or JSON) into validated :class:`ScenarioSpec` objects.

A scenario file is the canonical dict form of :mod:`repro.scenarios.spec` plus
an optional ``[profiles.<name>]`` family of partial overrides.  A profile is a
nested table that is deep-merged over the base document before validation —
the committed examples each carry a ``smoke`` profile that shrinks the sweep
to CI-smoke scale without duplicating the scenario:

.. code-block:: toml

    kind = "comparison"
    name = "figure6a"

    [simulation]
    hyperperiods = 20
    repetitions = 5

    [matrix]
    "taskset.n_tasks" = [2, 4, 6, 8, 10]
    "taskset.ratio" = [0.1, 0.5, 0.9]

    [profiles.smoke.simulation]
    hyperperiods = 5
    repetitions = 2

    [profiles.smoke.matrix]
    "taskset.n_tasks" = [2, 4]

TOML needs Python >= 3.11 (:mod:`tomllib`); JSON scenario files work
everywhere and are what ``ScenarioLoader.dumps``/round-trip tests use.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from .spec import ScenarioError, ScenarioSpec

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised only on 3.10
    tomllib = None

__all__ = ["ScenarioLoader", "load_scenario"]


def _deep_merge(base: Dict[str, Any], override: Mapping[str, Any]) -> Dict[str, Any]:
    """Return ``base`` with ``override`` merged in (tables merge, scalars/lists replace)."""
    merged = dict(base)
    for key, value in override.items():
        if isinstance(value, Mapping) and isinstance(merged.get(key), Mapping):
            merged[key] = _deep_merge(dict(merged[key]), value)
        else:
            merged[key] = value
    return merged


class ScenarioLoader:
    """Parses, profile-merges and validates scenario documents."""

    def read_document(self, path: Union[str, Path]) -> Dict[str, Any]:
        """Parse a ``.toml``/``.json`` scenario file to its raw document.

        No profile merging, no validation — this is the pre-merge table a
        sweep-server client ships in a ``/submit`` body, so the server
        validates with exactly the rules a local ``load`` would apply.
        """
        source = Path(path)
        if not source.exists():
            raise ScenarioError(f"scenario file {source} does not exist")
        suffix = source.suffix.lower()
        if suffix == ".toml":
            if tomllib is None:  # pragma: no cover - Python 3.10 fallback
                raise ScenarioError(
                    "TOML scenario files need Python >= 3.11 (tomllib); use the JSON form instead"
                )
            with source.open("rb") as handle:
                try:
                    document = tomllib.load(handle)
                except tomllib.TOMLDecodeError as error:
                    raise ScenarioError(f"{source}: invalid TOML: {error}") from None
        elif suffix == ".json":
            try:
                document = json.loads(source.read_text(encoding="utf-8"))
            except json.JSONDecodeError as error:
                raise ScenarioError(f"{source}: invalid JSON: {error}") from None
        else:
            raise ScenarioError(f"unsupported scenario extension {suffix!r} (expected .toml or .json)")
        if not isinstance(document, dict):
            raise ScenarioError(f"{source}: a scenario document must be a table")
        return document

    def load(self, path: Union[str, Path], profile: Optional[str] = None) -> ScenarioSpec:
        """Load a ``.toml`` or ``.json`` scenario file, optionally under a profile."""
        source = Path(path)
        document = self.read_document(source)
        try:
            spec = self.from_document(document, profile=profile)
        except ScenarioError as error:
            raise ScenarioError(f"{source}: {error}") from None
        if spec.name == "scenario" and "name" not in document:
            spec = ScenarioSpec.from_dict({**spec.to_dict(), "name": source.stem})
        return spec

    def from_document(self, document: Mapping[str, Any], profile: Optional[str] = None) -> ScenarioSpec:
        """Build a spec from an already-parsed document, applying ``profile`` if given."""
        if not isinstance(document, Mapping):
            raise ScenarioError(f"a scenario document must be a table, got {type(document).__name__}")
        document = dict(document)
        profiles = document.pop("profiles", {})
        if not isinstance(profiles, Mapping):
            raise ScenarioError("profiles must be a table of named override tables")
        if profile is not None:
            if profile not in profiles:
                raise ScenarioError(f"unknown profile {profile!r}; available: {sorted(profiles)}")
            overrides = profiles[profile]
            if not isinstance(overrides, Mapping):
                raise ScenarioError(f"profile {profile!r} must be a table of overrides")
            document = _deep_merge(document, overrides)
        return ScenarioSpec.from_dict(document)

    def profiles(self, path: Union[str, Path]) -> tuple:
        """The profile names a scenario file declares (without applying any)."""
        return tuple(sorted(self.read_document(path).get("profiles", {})))

    @staticmethod
    def dumps(spec: ScenarioSpec) -> str:
        """Serialise a spec to its canonical JSON document (loadable via ``.json``).

        Keys are emitted in insertion order, *not* sorted: the order of the
        ``matrix`` axes is semantically significant (it pins every work
        unit's seed coordinates) and must survive the round trip.
        """
        return json.dumps(spec.to_dict(), indent=2)


def load_scenario(path: Union[str, Path], profile: Optional[str] = None) -> ScenarioSpec:
    """Convenience wrapper: ``ScenarioLoader().load(path, profile)``."""
    return ScenarioLoader().load(path, profile=profile)
