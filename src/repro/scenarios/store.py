"""Content-addressed result store: resumable, bitwise-reproducible sweeps.

Every work unit of a scenario (one scheduler comparison, one multicore point,
one motivation run) is described by a *signature* — a plain dictionary that
captures everything result-relevant: the task set (or the generator config and
its derived seed), the processor, the workload model, the online policy, the
simulation length and seed, and the store format version.  The unit's **key**
is the SHA-256 of the canonical JSON encoding of that signature, and the store
maps keys to result payloads on disk:

.. code-block:: text

    <store>/objects/<key[:2]>/<key>.json      one record per computed unit

Because keys derive from content rather than execution order, an interrupted
sweep resumes for free: rerunning the scenario recomputes only the missing
keys and replays everything else from disk.  Payloads are JSON produced by
:mod:`repro.reporting.serialization`, and Python's float round-trip guarantees
make aggregates computed from replayed payloads bitwise-identical to a fresh
run.  Writes are atomic (temp file + rename), so a run killed mid-write never
corrupts the store.

Bumping :data:`STORE_FORMAT` invalidates every old record (their signatures
hash differently), which is the upgrade path whenever a simulator change is
*meant* to produce different numbers.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from ..core.errors import ReproError
from ..telemetry.core import current as _telemetry

__all__ = ["STORE_FORMAT", "ClaimRecord", "StoreEntry", "ResultStore", "signature_key"]

#: Version of the signature/payload contract.  Part of every signature, so a
#: bump makes every previously stored record unreachable (and collectable via
#: ``repro store gc --stale``).
#:
#: 2: transition energy is no longer charged on zero-work dispatches (the
#:    requeue/fmax-fringe fix in the runtime event loops), which changes
#:    stored numbers for runs with a non-free transition model.
STORE_FORMAT = 2


def signature_key(signature: Mapping[str, Any]) -> str:
    """The content address of a work unit: SHA-256 over canonical JSON."""
    try:
        encoded = json.dumps(signature, sort_keys=True, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as error:
        raise ReproError(f"work-unit signature is not canonically serialisable: {error}") from None
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreEntry:
    """Metadata of one stored record (``repro store ls`` row)."""

    key: str
    scenario: str
    label: str
    created: float
    store_format: int
    size_bytes: int

    @property
    def stale(self) -> bool:
        return self.store_format != STORE_FORMAT


@dataclass(frozen=True)
class ClaimRecord:
    """One advisory in-flight claim (``<store>/claims/<key>.json``)."""

    key: str
    owner: str
    pid: int
    created: float


class ResultStore:
    """A directory of content-addressed result records.

    ``telemetry_prefix`` names this store's counter family (default
    ``result_store``); the solve memo's backing store uses its own
    prefix so its traffic tallies separately.  Counter names are
    precomputed here so the disabled telemetry path stays allocation
    free.
    """

    def __init__(self, root: Union[str, Path], *, telemetry_prefix: str = "result_store"):
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.claims_dir = self.root / "claims"
        self._hit_counter = telemetry_prefix + ".hit"
        self._miss_counter = telemetry_prefix + ".miss"
        self._computed_counter = telemetry_prefix + ".computed"
        self._gc_counter = telemetry_prefix + ".gc_removed"

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        return self.objects / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------ #
    # Read / write
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        if not path.exists():
            _telemetry().count(self._miss_counter)
            return None
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            _telemetry().count(self._miss_counter)
            return None  # treat torn/unreadable records as misses; gc cleans them up
        if record.get("store_format") != STORE_FORMAT:
            _telemetry().count(self._miss_counter)
            return None
        _telemetry().count(self._hit_counter)
        return record.get("payload")

    def contains(self, key: str) -> bool:
        return self.get(key) is not None

    def put(self, key: str, payload: Mapping[str, Any], *, scenario: str = "", label: str = "") -> Path:
        """Atomically persist one payload (write to a temp file, then rename)."""
        record = {
            "store_format": STORE_FORMAT,
            "key": key,
            "scenario": scenario,
            "label": label,
            "created": time.time(),
            "payload": dict(payload),
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        scratch = path.with_suffix(f".tmp-{os.getpid()}")
        scratch.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")
        os.replace(scratch, path)
        _telemetry().count(self._computed_counter)
        return path

    def remove(self, key: str) -> bool:
        path = self.path_for(key)
        if path.exists():
            path.unlink()
            return True
        return False

    # ------------------------------------------------------------------ #
    # In-flight claims (advisory)
    # ------------------------------------------------------------------ #
    def claim_path(self, key: str) -> Path:
        return self.claims_dir / f"{key}.json"

    def claim(self, key: str, owner: str = "") -> bool:
        """Record an advisory in-flight claim on ``key``.

        Claims make a store's pending work observable: the sweep server
        claims each unit before computing it and releases the claim after
        the result record lands, so ``claims()`` lists exactly what is in
        flight, and a crashed computer leaves a visible orphan instead of
        silence.  Claims are *advisory* — they never block :meth:`get` or
        :meth:`put`, and correctness still rests entirely on atomic record
        writes.  Returns ``False`` when the key is already claimed
        (exclusive-create, so two claimants cannot both win).
        """
        self.claims_dir.mkdir(parents=True, exist_ok=True)
        record = {"key": key, "owner": owner, "pid": os.getpid(), "created": time.time()}
        try:
            with self.claim_path(key).open("x", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
        except FileExistsError:
            return False
        return True

    def release(self, key: str) -> bool:
        """Drop the claim on ``key`` (missing claims are a no-op)."""
        try:
            self.claim_path(key).unlink()
        except FileNotFoundError:
            return False
        return True

    def claims(self) -> List[ClaimRecord]:
        """Every readable claim record, oldest first."""
        if not self.claims_dir.exists():
            return []
        rows: List[ClaimRecord] = []
        for path in sorted(self.claims_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            rows.append(
                ClaimRecord(
                    key=record.get("key", path.stem),
                    owner=record.get("owner", ""),
                    pid=int(record.get("pid", 0)),
                    created=float(record.get("created", 0.0)),
                )
            )
        rows.sort(key=lambda claim: (claim.created, claim.key))
        return rows

    # ------------------------------------------------------------------ #
    # Inspection and garbage collection
    # ------------------------------------------------------------------ #
    def _record_paths(self) -> Iterator[Path]:
        if not self.objects.exists():
            return
        yield from sorted(self.objects.glob("*/*.json"))

    def _scratch_paths(self) -> Iterator[Path]:
        """Orphaned ``<key>.tmp-<pid>`` scratch files from writes killed mid-flight.

        ``put`` writes to a scratch file and atomically renames it into place;
        a process killed between the two leaves the scratch behind, where the
        ``*/*.json`` record glob can never see it.
        """
        if not self.objects.exists():
            return
        yield from sorted(self.objects.glob("*/*.tmp-*"))

    def entries(self) -> List[StoreEntry]:
        """Metadata of every readable record, oldest first."""
        rows: List[StoreEntry] = []
        for path in self._record_paths():
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            rows.append(
                StoreEntry(
                    key=record.get("key", path.stem),
                    scenario=record.get("scenario", ""),
                    label=record.get("label", ""),
                    created=float(record.get("created", 0.0)),
                    store_format=int(record.get("store_format", 0)),
                    size_bytes=path.stat().st_size,
                )
            )
        rows.sort(key=lambda entry: (entry.created, entry.key))
        return rows

    def gc(
        self,
        *,
        remove_all: bool = False,
        older_than_days: Optional[float] = None,
        stale_only: bool = False,
        dry_run: bool = False,
    ) -> List[StoreEntry]:
        """Collect records and return what was (or would be) removed.

        Exactly one criterion applies per call: ``remove_all`` drops
        everything, ``older_than_days`` drops records created before the
        cutoff, and ``stale_only`` drops records written under a different
        :data:`STORE_FORMAT` plus unreadable/torn files.

        Orphaned ``.tmp-*`` scratch files (a ``put`` killed between write and
        rename) are always eligible: ``stale_only`` and ``remove_all`` collect
        every orphan, ``older_than_days`` collects orphans older than the
        cutoff (by file mtime — an orphan carries no record metadata).
        Leftover claim records follow the same rules — a claim that survived
        its claimant is an orphan by definition (a live server releases every
        claim on drain), so run gc against a *quiescent* store.
        """
        chosen = sum(1 for flag in (remove_all, older_than_days is not None, stale_only) if flag)
        if chosen != 1:
            raise ReproError("gc needs exactly one of: remove_all, older_than_days, stale_only")
        cutoff = None if older_than_days is None else time.time() - older_than_days * 86400.0
        removed: List[StoreEntry] = []
        for path in list(self._record_paths()):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                record = None
            entry = StoreEntry(
                key=(record or {}).get("key", path.stem),
                scenario=(record or {}).get("scenario", ""),
                label=(record or {}).get("label", ""),
                created=float((record or {}).get("created", 0.0)),
                store_format=int((record or {}).get("store_format", 0)),
                size_bytes=path.stat().st_size,
            )
            if remove_all:
                doomed = True
            elif cutoff is not None:
                doomed = entry.created < cutoff
            else:
                doomed = record is None or entry.stale
            if doomed:
                removed.append(entry)
                if not dry_run:
                    path.unlink()
        for path in list(self._scratch_paths()):
            mtime = path.stat().st_mtime
            if cutoff is not None and mtime >= cutoff:
                continue
            removed.append(
                StoreEntry(
                    key=path.stem,  # the scratch name is "<key>.tmp-<pid>"
                    scenario="",
                    label="(orphaned scratch file)",
                    created=mtime,
                    store_format=0,
                    size_bytes=path.stat().st_size,
                )
            )
            if not dry_run:
                path.unlink()
        claim_paths = sorted(self.claims_dir.glob("*.json")) if self.claims_dir.exists() else []
        for path in claim_paths:
            mtime = path.stat().st_mtime
            if cutoff is not None and mtime >= cutoff:
                continue
            removed.append(
                StoreEntry(
                    key=path.stem,
                    scenario="",
                    label="(orphaned claim)",
                    created=mtime,
                    store_format=0,
                    size_bytes=path.stat().st_size,
                )
            )
            if not dry_run:
                path.unlink()
        if removed and not dry_run:
            _telemetry().count(self._gc_counter, len(removed))
        return removed


class MemoryStore:
    """In-process stand-in used when ``repro run`` is invoked with ``--no-store``.

    Counts the same ``result_store.*`` telemetry family as
    :class:`ResultStore` so counter-accuracy tests can run storeless.
    """

    def __init__(self):
        self._records: Dict[str, Dict[str, Any]] = {}
        self._claims: Dict[str, ClaimRecord] = {}

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        payload = self._records.get(key)
        _telemetry().count("result_store.hit" if payload is not None else "result_store.miss")
        return payload

    def contains(self, key: str) -> bool:
        return key in self._records

    def put(self, key: str, payload: Mapping[str, Any], *, scenario: str = "", label: str = "") -> None:
        self._records[key] = dict(payload)
        _telemetry().count("result_store.computed")

    def claim(self, key: str, owner: str = "") -> bool:
        if key in self._claims:
            return False
        self._claims[key] = ClaimRecord(key=key, owner=owner, pid=os.getpid(), created=time.time())
        return True

    def release(self, key: str) -> bool:
        return self._claims.pop(key, None) is not None

    def claims(self) -> List[ClaimRecord]:
        return sorted(self._claims.values(), key=lambda claim: (claim.created, claim.key))
