"""Declarative scenario runner: specs, loader, engine and the result store.

The paper's evaluation is a family of parameterised scenarios; this package
makes them *data*.  A TOML/JSON file describes the task-set source, offline
method(s), online policy, workload and power models, seeds, repetitions and a
sweep matrix; :class:`ScenarioLoader` validates it, :class:`ScenarioEngine`
compiles it onto the existing comparison/multicore harnesses, and
:class:`ResultStore` content-addresses every work unit so interrupted or
repeated sweeps resume without recomputation — bitwise-identically.

See ``docs/scenarios.md`` for the spec schema and ``examples/scenarios/`` for
the committed scenario files (the Figure 6 sweeps, the motivation table and
the multicore scalability grid).
"""

from .engine import CompiledPoint, CompiledScenario, ScenarioEngine, ScenarioResult, run_unit
from .loader import ScenarioLoader, load_scenario
from .spec import (
    ArrivalsSpec,
    MotivationSpec,
    MulticoreSpec,
    OfflineSpec,
    OnlineSpec,
    PowerSpec,
    ScenarioError,
    ScenarioSpec,
    SimulationSpec,
    TasksetSpec,
    WorkloadSpec,
)
from .store import STORE_FORMAT, ClaimRecord, MemoryStore, ResultStore, StoreEntry, signature_key

__all__ = [
    "ScenarioEngine",
    "ScenarioResult",
    "run_unit",
    "CompiledPoint",
    "CompiledScenario",
    "ScenarioLoader",
    "load_scenario",
    "ScenarioError",
    "ScenarioSpec",
    "TasksetSpec",
    "OfflineSpec",
    "OnlineSpec",
    "WorkloadSpec",
    "ArrivalsSpec",
    "PowerSpec",
    "SimulationSpec",
    "MulticoreSpec",
    "MotivationSpec",
    "ResultStore",
    "MemoryStore",
    "StoreEntry",
    "ClaimRecord",
    "STORE_FORMAT",
    "signature_key",
]
