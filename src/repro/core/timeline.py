"""Execution-trace data structures.

Both the offline schedulers (for their nominal schedules) and the runtime
simulator (for actual traces) produce a :class:`Timeline`: an ordered list of
:class:`ExecutionSegment` records, each describing a contiguous stretch of
processor time spent executing one sub-instance at one voltage/frequency
operating point.  The timeline can validate basic physical invariants (no
overlap, cycles = frequency × duration) and aggregate energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from .errors import SimulationError

__all__ = ["ExecutionSegment", "Timeline"]


@dataclass(frozen=True)
class ExecutionSegment:
    """A contiguous execution interval at a fixed operating point.

    Attributes
    ----------
    task_name / job_index / sub_index:
        Which sub-instance executed.
    start / end:
        Absolute times delimiting the segment.
    frequency:
        Clock frequency (cycles per time unit) used during the segment.
    voltage:
        Supply voltage used during the segment.
    cycles:
        Number of execution cycles completed (≈ frequency × (end − start)).
    energy:
        Energy consumed by the segment (Ceff × cycles × V²).
    """

    task_name: str
    job_index: int
    sub_index: int
    start: float
    end: float
    frequency: float
    voltage: float
    cycles: float
    energy: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(
                f"segment for {self.task_name}[{self.job_index}] ends ({self.end}) before it starts ({self.start})"
            )
        if self.frequency < 0 or self.voltage < 0 or self.cycles < 0 or self.energy < 0:
            raise SimulationError(
                f"segment for {self.task_name}[{self.job_index}] has negative physical quantities"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def key(self) -> str:
        return f"{self.task_name}[{self.job_index}].{self.sub_index}"


@dataclass
class Timeline:
    """An ordered collection of :class:`ExecutionSegment` records."""

    segments: List[ExecutionSegment] = field(default_factory=list)

    def append(self, segment: ExecutionSegment) -> None:
        self.segments.append(segment)

    def extend(self, segments: Sequence[ExecutionSegment]) -> None:
        self.segments.extend(segments)

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self) -> Iterator[ExecutionSegment]:
        return iter(self.segments)

    def __getitem__(self, index: int) -> ExecutionSegment:
        return self.segments[index]

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def total_energy(self) -> float:
        """Sum of segment energies."""
        return sum(s.energy for s in self.segments)

    @property
    def total_busy_time(self) -> float:
        """Total processor busy time."""
        return sum(s.duration for s in self.segments)

    @property
    def total_cycles(self) -> float:
        """Total executed cycles."""
        return sum(s.cycles for s in self.segments)

    @property
    def makespan(self) -> float:
        """Latest segment end time (0 for an empty timeline)."""
        return max((s.end for s in self.segments), default=0.0)

    def energy_by_task(self) -> Dict[str, float]:
        """Energy aggregated per task name."""
        result: Dict[str, float] = {}
        for segment in self.segments:
            result[segment.task_name] = result.get(segment.task_name, 0.0) + segment.energy
        return result

    def busy_time_by_task(self) -> Dict[str, float]:
        """Busy time aggregated per task name."""
        result: Dict[str, float] = {}
        for segment in self.segments:
            result[segment.task_name] = result.get(segment.task_name, 0.0) + segment.duration
        return result

    def segments_for(self, task_name: str, job_index: Optional[int] = None) -> List[ExecutionSegment]:
        """Segments belonging to a task (optionally a specific job)."""
        return [
            s for s in self.segments
            if s.task_name == task_name and (job_index is None or s.job_index == job_index)
        ]

    def finish_time_of(self, task_name: str, job_index: int) -> Optional[float]:
        """Completion time of a job, or ``None`` if it never executed."""
        segments = self.segments_for(task_name, job_index)
        if not segments:
            return None
        return max(s.end for s in segments)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self, *, tol: float = 1e-6) -> None:
        """Raise :class:`SimulationError` when physical invariants are violated.

        Checks that segments are chronologically sorted, never overlap, and
        that each segment's cycle count is consistent with its frequency and
        duration.
        """
        previous_end = -float("inf")
        for segment in self.segments:
            if segment.start < previous_end - tol:
                raise SimulationError(
                    f"segments overlap: {segment.key} starts at {segment.start} "
                    f"before the previous segment ends at {previous_end}"
                )
            expected_cycles = segment.frequency * segment.duration
            scale = max(1.0, abs(expected_cycles))
            if abs(expected_cycles - segment.cycles) > tol * scale:
                raise SimulationError(
                    f"segment {segment.key}: cycles ({segment.cycles}) inconsistent with "
                    f"frequency × duration ({expected_cycles})"
                )
            previous_end = max(previous_end, segment.end)

    def sorted_by_time(self) -> "Timeline":
        """Return a copy with segments sorted by start time."""
        return Timeline(sorted(self.segments, key=lambda s: (s.start, s.end)))
