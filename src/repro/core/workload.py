"""Workload bookkeeping shared by the offline optimiser and the runtime simulator.

The central rule is the paper's *sequential fill* semantics (Section 3.2,
Figure 5): when a task instance is split into K sub-instances with worst-case
budgets ``w_1 .. w_K`` (summing to the WCEC) and the instance actually needs
``A`` cycles (its ACEC in the offline analysis, or the drawn actual cycles at
runtime), the earlier sub-instances are filled first:

    a_k = clip(A − (w_1 + … + w_{k−1}), 0, w_k)

so ``Σ a_k = A`` as long as ``A ≤ Σ w_k``.  A sub-instance whose prefix already
covers ``A`` performs no work in the average case but keeps its reserved slot
for the worst case.
"""

from __future__ import annotations

from typing import List, Sequence

from .errors import WorkloadError

__all__ = [
    "fill_average_workloads",
    "case_labels",
    "split_evenly",
    "proportional_split",
]


def fill_average_workloads(worst_case_budgets: Sequence[float], actual_cycles: float,
                           *, tol: float = 1e-9) -> List[float]:
    """Distribute ``actual_cycles`` over sub-instances using the sequential-fill rule.

    Parameters
    ----------
    worst_case_budgets:
        Worst-case cycle budget of each sub-instance, in execution order.
    actual_cycles:
        Total cycles the instance actually requires (``0 ≤ actual ≤ Σ budgets``
        up to tolerance; values outside are clipped with a tolerance check).

    Returns
    -------
    list of float
        Cycles executed by each sub-instance; sums to ``actual_cycles``.
    """
    if any(b < -tol for b in worst_case_budgets):
        raise WorkloadError(f"worst-case budgets must be non-negative, got {list(worst_case_budgets)}")
    if actual_cycles < -tol:
        raise WorkloadError(f"actual_cycles must be non-negative, got {actual_cycles}")
    total_budget = float(sum(worst_case_budgets))
    if actual_cycles > total_budget + max(tol, 1e-9 * total_budget):
        raise WorkloadError(
            f"actual_cycles ({actual_cycles}) exceeds the total worst-case budget ({total_budget})"
        )
    remaining = min(max(actual_cycles, 0.0), total_budget)
    result: List[float] = []
    for budget in worst_case_budgets:
        executed = min(max(budget, 0.0), remaining)
        result.append(executed)
        remaining -= executed
    return result


def case_labels(worst_case_budgets: Sequence[float], acec: float, *, tol: float = 1e-9) -> List[int]:
    """Classify each sub-instance into the paper's case 1 / case 2.

    Case 1 (label ``1``): the cumulative worst-case budget up to and including
    this sub-instance does not exceed the ACEC, so its average workload equals
    its worst-case budget.  Case 2 (label ``2``): everything else (partial or
    zero average workload).
    """
    labels: List[int] = []
    cumulative = 0.0
    for budget in worst_case_budgets:
        cumulative += budget
        labels.append(1 if cumulative <= acec + tol else 2)
    return labels


def split_evenly(total: float, parts: int) -> List[float]:
    """Split ``total`` into ``parts`` equal non-negative pieces."""
    if parts <= 0:
        raise WorkloadError("parts must be a positive integer")
    if total < 0:
        raise WorkloadError("total must be non-negative")
    return [total / parts] * parts


def proportional_split(total: float, weights: Sequence[float]) -> List[float]:
    """Split ``total`` proportionally to ``weights`` (used by heuristic schedulers)."""
    if not weights:
        raise WorkloadError("weights must be non-empty")
    if any(w < 0 for w in weights):
        raise WorkloadError("weights must be non-negative")
    weight_sum = float(sum(weights))
    if weight_sum <= 0:
        # All-zero weights: fall back to an even split.
        return split_evenly(total, len(weights))
    # Divide before multiplying: the ratio w / weight_sum is always in [0, 1],
    # whereas total * w can hit subnormal underflow (e.g. w = 5e-324) and lose
    # the proportion entirely before the division.
    return [total * (w / weight_sum) for w in weights]
