"""Core task and system model for the DATE 2005 ACS reproduction.

This package defines the vocabulary every other subsystem speaks: periodic
tasks, their jobs (instances), the preemption-induced sub-instances the
paper's NLP reasons about, execution timelines, workload bookkeeping and the
exception hierarchy.
"""

from .errors import (
    AllocationError,
    AnalysisError,
    DeadlineMissError,
    ExperimentError,
    InfeasibleTaskSetError,
    InvalidProcessorError,
    InvalidTaskError,
    InvalidTaskSetError,
    ModelError,
    OptimizationError,
    ReproError,
    SchedulingError,
    SimulationError,
    WorkloadError,
)
from .priorities import (
    available_policies,
    deadline_monotonic_priorities,
    explicit_priorities,
    get_priority_policy,
    rate_monotonic_priorities,
)
from .task import SubInstance, Task, TaskInstance
from .taskset import TaskSet
from .timeline import ExecutionSegment, Timeline
from .workload import case_labels, fill_average_workloads, proportional_split, split_evenly

__all__ = [
    # errors
    "ReproError",
    "ModelError",
    "InvalidTaskError",
    "InvalidTaskSetError",
    "InvalidProcessorError",
    "AnalysisError",
    "AllocationError",
    "InfeasibleTaskSetError",
    "SchedulingError",
    "OptimizationError",
    "SimulationError",
    "DeadlineMissError",
    "WorkloadError",
    "ExperimentError",
    # tasks
    "Task",
    "TaskInstance",
    "SubInstance",
    "TaskSet",
    # priorities
    "rate_monotonic_priorities",
    "deadline_monotonic_priorities",
    "explicit_priorities",
    "get_priority_policy",
    "available_policies",
    # timeline
    "ExecutionSegment",
    "Timeline",
    # workload helpers
    "fill_average_workloads",
    "case_labels",
    "split_evenly",
    "proportional_split",
]
