"""Exception hierarchy used across the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses communicate *which*
stage of the pipeline failed (model construction, schedulability analysis,
offline optimisation, or runtime simulation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """Invalid model construction (task, task set or processor parameters)."""


class InvalidTaskError(ModelError):
    """A single task was constructed with inconsistent parameters."""


class InvalidTaskSetError(ModelError):
    """A task set is inconsistent (duplicate names, empty set, ...)."""


class InvalidProcessorError(ModelError):
    """A processor model was constructed with inconsistent parameters."""


class AnalysisError(ReproError):
    """A schedulability/feasibility analysis could not be carried out."""


class InfeasibleTaskSetError(AnalysisError):
    """The task set cannot be scheduled even at the maximum frequency."""


class AllocationError(ReproError):
    """Multiprocessor task-to-core allocation failed or was misconfigured."""


class SchedulingError(ReproError):
    """Offline voltage scheduling failed."""


class OptimizationError(SchedulingError):
    """The NLP solver failed to produce a feasible static schedule."""


class SimulationError(ReproError):
    """The runtime simulator detected an internal inconsistency."""


class DeadlineMissError(SimulationError):
    """A job missed its deadline during simulation.

    The simulator only raises this when configured with
    ``on_deadline_miss="raise"``; by default misses are recorded in the result
    object instead.
    """

    def __init__(self, message: str, *, task: str = "", job_index: int = -1,
                 deadline: float = float("nan"), finish_time: float = float("nan")) -> None:
        super().__init__(message)
        self.task = task
        self.job_index = job_index
        self.deadline = deadline
        self.finish_time = finish_time


class WorkloadError(ReproError):
    """A workload generator was asked for an impossible configuration."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""
