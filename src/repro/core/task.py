"""Task, job (task instance) and sub-instance models.

The paper models a *frame-based preemptive hard real-time system*: a set of
periodic tasks scheduled by a fixed-priority (rate-monotonic) policy on a
single variable-voltage processor.  Three levels of granularity appear in the
formulation:

``Task``
    the static, periodic entity: period, deadline, worst-case execution cycles
    (WCEC), average-case execution cycles (ACEC) and optionally best-case
    execution cycles (BCEC).

``TaskInstance``
    one release (job) of a task inside the hyperperiod, with absolute release
    time and absolute deadline.

``SubInstance``
    the piece of a task instance between two potential preemption points in
    the *fully preemptive schedule* (Section 3.1 of the paper).  The offline
    NLP assigns each sub-instance an end-time and a worst-case cycle budget;
    the online DVS policy uses exactly those two numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import InvalidTaskError

__all__ = ["Task", "TaskInstance", "SubInstance"]


@dataclass(frozen=True)
class Task:
    """A periodic hard real-time task.

    Parameters
    ----------
    name:
        Unique identifier within a :class:`~repro.core.taskset.TaskSet`.
    period:
        Release period (time units).  The paper assumes the relative deadline
        equals the period unless ``deadline`` is given explicitly.
    wcec:
        Worst-case execution cycles.
    acec:
        Average-case execution cycles (expected value of the workload
        distribution).  Defaults to ``wcec`` which makes the task behave like
        a classical worst-case-only task.
    bcec:
        Best-case execution cycles.  Defaults to ``acec`` (or ``wcec`` if no
        ACEC was given).  Only used by runtime workload distributions.
    deadline:
        Relative deadline; defaults to the period.
    ceff:
        Effective switching capacitance of the task (energy per cycle is
        ``ceff * Vdd**2``).  The paper allows a per-task capacitance; a value
        of 1.0 makes the energy unit "cycles × V²".
    priority:
        Optional explicit priority (lower value = higher priority).  When left
        ``None`` the priority policy of the task set (rate monotonic by
        default) assigns one.
    phase:
        Release offset of the first job.  The paper assumes all first
        instances are released at time 0.
    """

    name: str
    period: float
    wcec: float
    acec: Optional[float] = None
    bcec: Optional[float] = None
    deadline: Optional[float] = None
    ceff: float = 1.0
    priority: Optional[int] = None
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidTaskError("task name must be a non-empty string")
        if self.period <= 0:
            raise InvalidTaskError(f"task {self.name!r}: period must be positive, got {self.period}")
        if self.wcec <= 0:
            raise InvalidTaskError(f"task {self.name!r}: wcec must be positive, got {self.wcec}")
        acec = self.wcec if self.acec is None else self.acec
        bcec = acec if self.bcec is None else self.bcec
        if acec <= 0:
            raise InvalidTaskError(f"task {self.name!r}: acec must be positive, got {acec}")
        if bcec <= 0:
            raise InvalidTaskError(f"task {self.name!r}: bcec must be positive, got {bcec}")
        if not (bcec <= acec <= self.wcec + 1e-12):
            raise InvalidTaskError(
                f"task {self.name!r}: expected bcec <= acec <= wcec, got "
                f"bcec={bcec}, acec={acec}, wcec={self.wcec}"
            )
        deadline = self.period if self.deadline is None else self.deadline
        if deadline <= 0:
            raise InvalidTaskError(f"task {self.name!r}: deadline must be positive, got {deadline}")
        if deadline > self.period + 1e-12:
            raise InvalidTaskError(
                f"task {self.name!r}: constrained deadlines only (deadline <= period), "
                f"got deadline={deadline} > period={self.period}"
            )
        if self.ceff <= 0:
            raise InvalidTaskError(f"task {self.name!r}: ceff must be positive, got {self.ceff}")
        if self.phase < 0:
            raise InvalidTaskError(f"task {self.name!r}: phase must be non-negative, got {self.phase}")
        # Normalise the optional fields so downstream code never sees None.
        object.__setattr__(self, "acec", acec)
        object.__setattr__(self, "bcec", bcec)
        object.__setattr__(self, "deadline", deadline)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def bcec_wcec_ratio(self) -> float:
        """The BCEC/WCEC ratio the paper sweeps (0.1 = highly variable)."""
        return self.bcec / self.wcec

    def utilization(self, fmax: float) -> float:
        """Worst-case processor utilisation of this task at frequency ``fmax``.

        ``fmax`` is expressed in cycles per time unit, so the worst-case
        execution time at maximum speed is ``wcec / fmax``.
        """
        if fmax <= 0:
            raise InvalidTaskError("fmax must be positive")
        return (self.wcec / fmax) / self.period

    def average_utilization(self, fmax: float) -> float:
        """Average-case utilisation (uses ACEC instead of WCEC)."""
        if fmax <= 0:
            raise InvalidTaskError("fmax must be positive")
        return (self.acec / fmax) / self.period

    def num_jobs(self, horizon: float) -> int:
        """Number of jobs released in ``[phase, horizon)``."""
        if horizon <= self.phase:
            return 0
        return int(math.ceil((horizon - self.phase) / self.period - 1e-12))

    def release_time(self, job_index: int) -> float:
        """Absolute release time of the ``job_index``-th job (0-based)."""
        if job_index < 0:
            raise InvalidTaskError("job_index must be non-negative")
        return self.phase + job_index * self.period

    def absolute_deadline(self, job_index: int) -> float:
        """Absolute deadline of the ``job_index``-th job (0-based)."""
        return self.release_time(job_index) + self.deadline

    def scaled(self, *, wcec_scale: float = 1.0, bcec_ratio: Optional[float] = None) -> "Task":
        """Return a copy with scaled WCEC and, optionally, a new BCEC/WCEC ratio.

        The experiment harness uses this to (a) rescale the worst case so the
        task set hits a target utilisation and (b) sweep the BCEC/WCEC ratio
        while keeping ``acec = (bcec + wcec) / 2`` as in the paper's
        truncated-normal workload model.
        """
        if wcec_scale <= 0:
            raise InvalidTaskError("wcec_scale must be positive")
        new_wcec = self.wcec * wcec_scale
        if bcec_ratio is None:
            new_bcec = self.bcec * wcec_scale
            new_acec = self.acec * wcec_scale
        else:
            if not 0 < bcec_ratio <= 1:
                raise InvalidTaskError("bcec_ratio must lie in (0, 1]")
            new_bcec = new_wcec * bcec_ratio
            new_acec = 0.5 * (new_bcec + new_wcec)
        return replace(self, wcec=new_wcec, acec=new_acec, bcec=new_bcec)


@dataclass(frozen=True)
class TaskInstance:
    """One release (job) of a :class:`Task` inside the scheduling horizon."""

    task: Task
    job_index: int
    release: float
    deadline: float
    priority: int

    def __post_init__(self) -> None:
        if self.deadline <= self.release:
            raise InvalidTaskError(
                f"instance {self.key}: deadline {self.deadline} must exceed release {self.release}"
            )

    @property
    def key(self) -> str:
        """Stable identifier such as ``"T1[2]"`` (task name, job index)."""
        return f"{self.task.name}[{self.job_index}]"

    @property
    def wcec(self) -> float:
        return self.task.wcec

    @property
    def acec(self) -> float:
        return self.task.acec

    @property
    def bcec(self) -> float:
        return self.task.bcec

    @property
    def window(self) -> float:
        """Length of the execution window (deadline − release)."""
        return self.deadline - self.release


@dataclass(frozen=True)
class SubInstance:
    """A potential preemption-free chunk of a :class:`TaskInstance`.

    ``slot_start``/``slot_end`` delimit the region of the timeline in which
    this chunk may execute in the fully preemptive schedule: ``slot_start`` is
    either the instance release or the release of the higher-priority job that
    preempts the previous chunk, and ``slot_end`` is the next such release (or
    the instance deadline for the last chunk).

    ``order`` is the position of the sub-instance in the total execution order
    of the fully preemptive schedule (Section 3.1), which the NLP constraints
    chain over.
    """

    instance: TaskInstance
    sub_index: int
    slot_start: float
    slot_end: float
    order: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.sub_index < 0:
            raise InvalidTaskError("sub_index must be non-negative")
        if self.slot_end <= self.slot_start:
            raise InvalidTaskError(
                f"sub-instance {self.key}: slot_end {self.slot_end} must exceed slot_start {self.slot_start}"
            )

    @property
    def key(self) -> str:
        """Stable identifier such as ``"T1[2].0"``."""
        return f"{self.instance.key}.{self.sub_index}"

    @property
    def task(self) -> Task:
        return self.instance.task

    @property
    def priority(self) -> int:
        return self.instance.priority

    @property
    def slot_length(self) -> float:
        return self.slot_end - self.slot_start

    def with_order(self, order: int) -> "SubInstance":
        """Return a copy with the total-order position filled in."""
        return replace(self, order=order)
