"""Fixed-priority assignment policies.

The paper uses rate-monotonic (RM) priorities: the shorter the period, the
higher the priority; tasks with equal periods share the priority level.  This
module also provides deadline-monotonic (DM) assignment and a pass-through
policy for explicitly specified priorities so that the rest of the library is
policy-agnostic.

Priorities are integers where a *smaller value means a higher priority* and
the highest priority is 0.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence

from .errors import InvalidTaskSetError
from .task import Task

__all__ = [
    "rate_monotonic_priorities",
    "deadline_monotonic_priorities",
    "explicit_priorities",
    "PriorityPolicy",
    "get_priority_policy",
]

PriorityPolicy = Callable[[Sequence[Task]], Dict[str, int]]


def _rank_by(tasks: Sequence[Task], key: Callable[[Task], float]) -> Dict[str, int]:
    """Assign dense ranks by ``key``; ties receive the same priority level."""
    if not tasks:
        raise InvalidTaskSetError("cannot assign priorities to an empty task list")
    ordered = sorted(tasks, key=lambda t: (key(t), t.name))
    priorities: Dict[str, int] = {}
    level = -1
    previous_key = None
    for task in ordered:
        current_key = key(task)
        if previous_key is None or current_key != previous_key:
            level += 1
            previous_key = current_key
        priorities[task.name] = level
    return priorities


def rate_monotonic_priorities(tasks: Sequence[Task]) -> Dict[str, int]:
    """Rate-monotonic assignment: shorter period → higher priority (lower value)."""
    return _rank_by(tasks, lambda t: t.period)


def deadline_monotonic_priorities(tasks: Sequence[Task]) -> Dict[str, int]:
    """Deadline-monotonic assignment: shorter relative deadline → higher priority."""
    return _rank_by(tasks, lambda t: t.deadline)


def explicit_priorities(tasks: Sequence[Task]) -> Dict[str, int]:
    """Use the ``priority`` attribute each task carries.

    Every task must have an explicit priority.  Values are kept as given
    (ties allowed), matching the paper's convention that equal-period tasks
    may share a priority level.
    """
    priorities: Dict[str, int] = {}
    for task in tasks:
        if task.priority is None:
            raise InvalidTaskSetError(
                f"task {task.name!r} has no explicit priority; use a priority policy instead"
            )
        priorities[task.name] = int(task.priority)
    return priorities


_POLICIES: Dict[str, PriorityPolicy] = {
    "rm": rate_monotonic_priorities,
    "rate_monotonic": rate_monotonic_priorities,
    "dm": deadline_monotonic_priorities,
    "deadline_monotonic": deadline_monotonic_priorities,
    "explicit": explicit_priorities,
}


def get_priority_policy(name: str) -> PriorityPolicy:
    """Look up a priority policy by name (``"rm"``, ``"dm"`` or ``"explicit"``)."""
    try:
        return _POLICIES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(set(_POLICIES)))
        raise InvalidTaskSetError(f"unknown priority policy {name!r}; known policies: {known}") from None


def available_policies() -> List[str]:
    """Names accepted by :func:`get_priority_policy`."""
    return sorted(set(_POLICIES))


def validate_priorities(tasks: Iterable[Task], priorities: Dict[str, int]) -> None:
    """Check that ``priorities`` covers every task exactly once."""
    names = [t.name for t in tasks]
    missing = [n for n in names if n not in priorities]
    if missing:
        raise InvalidTaskSetError(f"priorities missing for tasks: {missing}")
    extra = [n for n in priorities if n not in names]
    if extra:
        raise InvalidTaskSetError(f"priorities given for unknown tasks: {extra}")
