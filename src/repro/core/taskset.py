"""Task-set container with priority assignment and basic derived quantities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Union

from ..utils.rational import lcm_of_values
from .errors import InvalidTaskSetError
from .priorities import PriorityPolicy, get_priority_policy, validate_priorities
from .task import Task, TaskInstance

__all__ = ["TaskSet"]


@dataclass
class TaskSet:
    """An ordered collection of periodic tasks plus a fixed-priority assignment.

    Parameters
    ----------
    tasks:
        The tasks.  Names must be unique.
    priority_policy:
        Either the name of a policy (``"rm"``, ``"dm"``, ``"explicit"``), a
        callable mapping tasks to a ``{name: priority}`` dict, or ``None`` to
        use rate-monotonic priorities (the paper's policy).
    name:
        Optional label used in experiment reports.
    """

    tasks: Sequence[Task]
    priority_policy: Union[str, PriorityPolicy, None] = "rm"
    name: str = "taskset"
    _priorities: Dict[str, int] = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        self.tasks = tuple(self.tasks)
        if not self.tasks:
            raise InvalidTaskSetError("a task set must contain at least one task")
        names = [t.name for t in self.tasks]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise InvalidTaskSetError(f"duplicate task names: {duplicates}")
        policy = self.priority_policy
        if policy is None:
            policy = "rm"
        if isinstance(policy, str):
            policy_fn = get_priority_policy(policy)
        else:
            policy_fn = policy
        priorities = policy_fn(self.tasks)
        validate_priorities(self.tasks, priorities)
        self._priorities = dict(priorities)

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def __getitem__(self, key: Union[int, str]) -> Task:
        if isinstance(key, int):
            return self.tasks[key]
        for task in self.tasks:
            if task.name == key:
                return task
        raise KeyError(key)

    def __contains__(self, key: object) -> bool:
        if isinstance(key, Task):
            return key in self.tasks
        return any(t.name == key for t in self.tasks)

    # ------------------------------------------------------------------ #
    # Priorities
    # ------------------------------------------------------------------ #
    @property
    def priorities(self) -> Dict[str, int]:
        """Mapping from task name to priority (lower value = higher priority)."""
        return dict(self._priorities)

    def priority_of(self, task: Union[str, Task]) -> int:
        name = task.name if isinstance(task, Task) else task
        try:
            return self._priorities[name]
        except KeyError:
            raise InvalidTaskSetError(f"unknown task {name!r}") from None

    def sorted_by_priority(self) -> List[Task]:
        """Tasks from highest (smallest value) to lowest priority; ties by name."""
        return sorted(self.tasks, key=lambda t: (self._priorities[t.name], t.name))

    def higher_priority_tasks(self, task: Union[str, Task]) -> List[Task]:
        """Tasks with a strictly higher priority than ``task``."""
        level = self.priority_of(task)
        return [t for t in self.sorted_by_priority() if self._priorities[t.name] < level]

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def hyperperiod(self) -> float:
        """Least common multiple of the task periods (the frame length)."""
        return lcm_of_values([t.period for t in self.tasks])

    def utilization(self, fmax: float) -> float:
        """Worst-case utilisation at maximum frequency ``fmax`` (cycles per time unit)."""
        return sum(t.utilization(fmax) for t in self.tasks)

    def average_utilization(self, fmax: float) -> float:
        """Average-case utilisation at maximum frequency ``fmax``."""
        return sum(t.average_utilization(fmax) for t in self.tasks)

    def total_wcec_per_hyperperiod(self) -> float:
        """Sum over tasks of WCEC × jobs-per-hyperperiod."""
        hp = self.hyperperiod
        return sum(t.wcec * round(hp / t.period) for t in self.tasks)

    def total_acec_per_hyperperiod(self) -> float:
        """Sum over tasks of ACEC × jobs-per-hyperperiod."""
        hp = self.hyperperiod
        return sum(t.acec * round(hp / t.period) for t in self.tasks)

    # ------------------------------------------------------------------ #
    # Instances
    # ------------------------------------------------------------------ #
    def instances(self, horizon: Optional[float] = None) -> List[TaskInstance]:
        """All task instances released in ``[0, horizon)`` (default: one hyperperiod).

        Instances are returned sorted by release time, then priority, then name
        — the canonical order used throughout the library.
        """
        if horizon is None:
            horizon = self.hyperperiod
        if horizon <= 0:
            raise InvalidTaskSetError(f"horizon must be positive, got {horizon}")
        result: List[TaskInstance] = []
        for task in self.tasks:
            priority = self._priorities[task.name]
            for job_index in range(task.num_jobs(horizon)):
                release = task.release_time(job_index)
                if release >= horizon:
                    break
                result.append(
                    TaskInstance(
                        task=task,
                        job_index=job_index,
                        release=release,
                        deadline=task.absolute_deadline(job_index),
                        priority=priority,
                    )
                )
        result.sort(key=lambda inst: (inst.release, inst.priority, inst.task.name, inst.job_index))
        return result

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def with_bcec_ratio(self, ratio: float) -> "TaskSet":
        """Return a copy where every task's BCEC is ``ratio × WCEC`` and ACEC is the midpoint.

        This matches the paper's experimental setup: execution cycles follow a
        normal distribution truncated to [BCEC, WCEC] with mean
        ``(BCEC + WCEC) / 2``.
        """
        scaled = [t.scaled(bcec_ratio=ratio) for t in self.tasks]
        return TaskSet(scaled, priority_policy=self.priority_policy, name=self.name)

    def scaled_to_utilization(self, target_utilization: float, fmax: float) -> "TaskSet":
        """Return a copy with every WCEC scaled so the worst-case utilisation matches.

        The paper adjusts WCEC so the task set utilises about 70 % of the
        processor at maximum speed.
        """
        if target_utilization <= 0:
            raise InvalidTaskSetError("target_utilization must be positive")
        current = self.utilization(fmax)
        factor = target_utilization / current
        scaled = [t.scaled(wcec_scale=factor) for t in self.tasks]
        return TaskSet(scaled, priority_policy=self.priority_policy, name=self.name)

    def renamed(self, name: str) -> "TaskSet":
        """Return a copy with a different label."""
        return TaskSet(self.tasks, priority_policy=self.priority_policy, name=name)

    def describe(self) -> str:
        """Human-readable multi-line summary of the task set."""
        lines = [f"TaskSet {self.name!r}: {len(self)} tasks, hyperperiod={self.hyperperiod:g}"]
        for task in self.sorted_by_priority():
            lines.append(
                f"  {task.name}: period={task.period:g} deadline={task.deadline:g} "
                f"wcec={task.wcec:g} acec={task.acec:g} bcec={task.bcec:g} "
                f"priority={self._priorities[task.name]}"
            )
        return "\n".join(lines)
