"""Exact response-time analysis (RTA) for fixed-priority preemptive scheduling.

Used to (a) verify that a task set is schedulable at maximum speed before the
offline voltage scheduler runs (the paper scales WCEC so the utilisation is
about 70 %, which RM cannot always accommodate — infeasible sets are rejected
or regenerated), and (b) compute the breakdown frequency: the slowest constant
speed that keeps every response time within its deadline.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..core.errors import AnalysisError
from ..core.taskset import TaskSet
from ..power.processor import ProcessorModel

__all__ = ["response_times", "is_schedulable", "breakdown_frequency"]

_MAX_ITERATIONS = 10_000


def response_times(taskset: TaskSet, processor: ProcessorModel,
                   frequency: Optional[float] = None) -> Dict[str, float]:
    """Worst-case response time of every task at the given constant ``frequency``.

    Uses the standard fixed-point iteration
    ``R = C + Σ_{hp} ceil(R / T_hp) · C_hp`` with ``C = WCEC / frequency``.
    Tasks whose iteration exceeds their deadline (or diverges) get
    ``float("inf")``.
    """
    freq = processor.fmax if frequency is None else frequency
    if freq <= 0:
        raise AnalysisError(f"frequency must be positive, got {freq}")
    ordered = taskset.sorted_by_priority()
    results: Dict[str, float] = {}
    for index, task in enumerate(ordered):
        wcet = task.wcec / freq
        higher = [t for t in ordered[:index] if taskset.priority_of(t) < taskset.priority_of(task)]
        response = wcet
        converged = False
        for _ in range(_MAX_ITERATIONS):
            interference = sum(math.ceil(response / ht.period - 1e-12) * (ht.wcec / freq) for ht in higher)
            updated = wcet + interference
            if abs(updated - response) <= 1e-12:
                response = updated
                converged = True
                break
            response = updated
            if response > task.deadline + task.period * 10:
                break
        results[task.name] = response if converged else float("inf")
    return results


def is_schedulable(taskset: TaskSet, processor: ProcessorModel,
                   frequency: Optional[float] = None) -> bool:
    """True when every worst-case response time meets its relative deadline."""
    times = response_times(taskset, processor, frequency)
    return all(times[t.name] <= t.deadline + 1e-9 for t in taskset)


def breakdown_frequency(taskset: TaskSet, processor: ProcessorModel,
                        *, tol: float = 1e-6) -> Optional[float]:
    """Slowest constant frequency keeping the task set RM-schedulable.

    Binary search between ``fmin`` and ``fmax``; returns ``None`` when even
    ``fmax`` is insufficient.  This is the operating point of the classic
    "static slowdown" baseline (e.g. Pillai & Shin's static RT-DVS), provided
    as an additional comparison point beyond the paper's WCS baseline.
    """
    if not is_schedulable(taskset, processor, processor.fmax):
        return None
    low, high = processor.fmin, processor.fmax
    if is_schedulable(taskset, processor, low):
        return low
    while high - low > tol * processor.fmax:
        mid = 0.5 * (low + high)
        if is_schedulable(taskset, processor, mid):
            high = mid
        else:
            low = mid
    return high
