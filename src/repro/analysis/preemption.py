"""Fully preemptive schedule expansion (Section 3.1 of the paper).

The offline NLP needs a *fixed structure* to optimise over: because a lower
priority job can be preempted every time a higher-priority job is released
inside its execution window, the job is split into the maximal set of
*sub-instances* at exactly those release points.  The expansion also yields a
total execution order over all sub-instances in the hyperperiod — the order in
which the chain constraints of the NLP link consecutive end-times.

Construction
------------
For every job (task instance) with window ``[release, deadline)``:

* the *split points* are the release times of strictly higher-priority jobs
  that fall strictly inside the window;
* the job is divided into ``len(split points) + 1`` sub-instances whose *slots*
  are the intervals between consecutive split points (the first slot starts at
  the job's release, the last ends at its deadline).

The total order sorts all sub-instances by ``(slot start, priority, task name,
sub index)``.  This is exactly the execution order of the canonical fully
preemptive schedule: when a higher-priority job is released, it runs before
the remaining chunk of the preempted lower-priority job, and chunks of the same
job stay in index order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import AnalysisError
from ..core.task import SubInstance, TaskInstance
from ..core.taskset import TaskSet

__all__ = ["FullyPreemptiveSchedule", "expand_fully_preemptive"]


@dataclass
class FullyPreemptiveSchedule:
    """The result of :func:`expand_fully_preemptive`.

    Attributes
    ----------
    taskset:
        The task set that was expanded.
    horizon:
        Length of the expansion window (one hyperperiod by default).
    instances:
        Every job released in ``[0, horizon)`` in canonical order.
    sub_instances:
        Every sub-instance, sorted by the total execution order; each carries
        its ``order`` index.
    """

    taskset: TaskSet
    horizon: float
    instances: List[TaskInstance]
    sub_instances: List[SubInstance]
    _by_instance: Dict[str, List[SubInstance]] = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        by_instance: Dict[str, List[SubInstance]] = {}
        for sub in self.sub_instances:
            by_instance.setdefault(sub.instance.key, []).append(sub)
        for key, subs in by_instance.items():
            by_instance[key] = sorted(subs, key=lambda s: s.sub_index)
        self._by_instance = by_instance

    def __len__(self) -> int:
        return len(self.sub_instances)

    def sub_instances_of(self, instance: TaskInstance) -> List[SubInstance]:
        """The sub-instances of ``instance`` in index order."""
        try:
            return list(self._by_instance[instance.key])
        except KeyError:
            raise AnalysisError(f"unknown instance {instance.key!r}") from None

    def max_sub_instances_per_job(self) -> int:
        """The largest number of sub-instances any single job was split into."""
        return max((len(subs) for subs in self._by_instance.values()), default=0)

    def total_order_keys(self) -> List[str]:
        """Stable keys of all sub-instances in execution order (useful in tests)."""
        return [sub.key for sub in self.sub_instances]

    def validate(self) -> None:
        """Check structural invariants of the expansion.

        * slots of the sub-instances of one job tile its window exactly;
        * the total order is consistent with slot starts and priorities;
        * order indices are consecutive from 0.
        """
        for instance in self.instances:
            subs = self.sub_instances_of(instance)
            if not subs:
                raise AnalysisError(f"instance {instance.key} has no sub-instances")
            if abs(subs[0].slot_start - instance.release) > 1e-9:
                raise AnalysisError(
                    f"instance {instance.key}: first slot starts at {subs[0].slot_start}, "
                    f"expected the release time {instance.release}"
                )
            if abs(subs[-1].slot_end - instance.deadline) > 1e-9:
                raise AnalysisError(
                    f"instance {instance.key}: last slot ends at {subs[-1].slot_end}, "
                    f"expected the deadline {instance.deadline}"
                )
            for earlier, later in zip(subs, subs[1:]):
                if abs(earlier.slot_end - later.slot_start) > 1e-9:
                    raise AnalysisError(
                        f"instance {instance.key}: slots are not contiguous between "
                        f"sub-instances {earlier.sub_index} and {later.sub_index}"
                    )
        expected_orders = list(range(len(self.sub_instances)))
        actual_orders = [sub.order for sub in self.sub_instances]
        if actual_orders != expected_orders:
            raise AnalysisError("sub-instance order indices are not consecutive from zero")
        for earlier, later in zip(self.sub_instances, self.sub_instances[1:]):
            key_earlier = (earlier.slot_start, earlier.priority, earlier.task.name, earlier.sub_index)
            key_later = (later.slot_start, later.priority, later.task.name, later.sub_index)
            if key_earlier > key_later:
                raise AnalysisError(
                    f"total order violated between {earlier.key} and {later.key}"
                )


def _split_points_for(instance: TaskInstance, taskset: TaskSet, horizon: float) -> List[float]:
    """Release times of strictly higher-priority jobs inside the instance's window."""
    points: List[float] = []
    for other in taskset:
        if taskset.priority_of(other) >= instance.priority:
            continue
        # Releases of `other` strictly inside (release, deadline).
        job_index = 0
        while True:
            release = other.release_time(job_index)
            if release >= instance.deadline - 1e-12 or release >= horizon:
                break
            if release > instance.release + 1e-12:
                points.append(release)
            job_index += 1
    return sorted(set(points))


def expand_fully_preemptive(taskset: TaskSet, horizon: Optional[float] = None) -> FullyPreemptiveSchedule:
    """Expand every job in ``[0, horizon)`` into its maximal sub-instance set.

    Parameters
    ----------
    taskset:
        The periodic task set (priorities already assigned).
    horizon:
        Expansion window; defaults to one hyperperiod, which the paper calls
        the frame.

    Returns
    -------
    FullyPreemptiveSchedule
        With sub-instances sorted by the total execution order.
    """
    if horizon is None:
        horizon = taskset.hyperperiod
    if horizon <= 0:
        raise AnalysisError(f"horizon must be positive, got {horizon}")

    instances = taskset.instances(horizon)
    raw_subs: List[SubInstance] = []
    for instance in instances:
        split_points = _split_points_for(instance, taskset, horizon)
        boundaries = [instance.release] + split_points + [instance.deadline]
        for sub_index, (slot_start, slot_end) in enumerate(zip(boundaries, boundaries[1:])):
            raw_subs.append(
                SubInstance(
                    instance=instance,
                    sub_index=sub_index,
                    slot_start=slot_start,
                    slot_end=slot_end,
                )
            )

    raw_subs.sort(key=lambda s: (s.slot_start, s.priority, s.task.name, s.sub_index))
    ordered = [sub.with_order(order) for order, sub in enumerate(raw_subs)]
    schedule = FullyPreemptiveSchedule(
        taskset=taskset,
        horizon=horizon,
        instances=instances,
        sub_instances=ordered,
    )
    schedule.validate()
    return schedule
