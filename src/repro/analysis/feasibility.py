"""Combined feasibility checks used before offline voltage scheduling.

The offline NLP assumes the task set is schedulable at the processor's maximum
speed (otherwise no voltage schedule exists at all).  This module bundles the
necessary-and-sufficient fixed-priority response-time test with a
sub-instance-level check of the fully preemptive expansion: every sub-instance
chain must fit between release times and deadlines when everything runs at
``fmax``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.errors import InfeasibleTaskSetError
from ..core.taskset import TaskSet
from ..power.processor import ProcessorModel
from .preemption import FullyPreemptiveSchedule, expand_fully_preemptive
from .response_time import response_times
from .utilization import total_utilization

__all__ = ["FeasibilityReport", "check_feasibility", "assert_feasible"]


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of :func:`check_feasibility`."""

    schedulable: bool
    utilization: float
    response_times: Dict[str, float]
    violations: List[str]

    def __bool__(self) -> bool:
        return self.schedulable


def check_feasibility(taskset: TaskSet, processor: ProcessorModel,
                      expansion: Optional[FullyPreemptiveSchedule] = None) -> FeasibilityReport:
    """Check that ``taskset`` can meet all deadlines at maximum speed.

    Returns a report rather than raising, so experiment harnesses can simply
    regenerate infeasible random task sets.
    """
    violations: List[str] = []
    utilization = total_utilization(taskset, processor)
    if utilization > 1.0 + 1e-9:
        violations.append(f"utilisation {utilization:.3f} exceeds 1 at maximum frequency")
    times = response_times(taskset, processor)
    for task in taskset:
        if times[task.name] > task.deadline + 1e-9:
            violations.append(
                f"task {task.name}: worst-case response time {times[task.name]:.4g} "
                f"exceeds deadline {task.deadline:.4g}"
            )
    if not violations:
        # Structural check on the fully preemptive expansion: the cumulative
        # worst-case demand along the total order must fit at fmax.  This is a
        # necessary condition for the NLP's chain constraints to have any
        # feasible point.
        expansion = expansion or expand_fully_preemptive(taskset)
        demand_by_instance: Dict[str, float] = {}
        for sub in expansion.sub_instances:
            key = sub.instance.key
            total_subs = len(expansion.sub_instances_of(sub.instance))
            # Even spread of the WCEC across sub-instances gives a lower bound
            # on the chain demand; the NLP may redistribute but the total is fixed.
            demand_by_instance.setdefault(key, sub.instance.wcec / total_subs)
        # A simple busy-period style check: total worst-case cycles in the
        # hyperperiod must fit within the hyperperiod at fmax.
        total_cycles = taskset.total_wcec_per_hyperperiod()
        if total_cycles > processor.max_cycles_in(expansion.horizon) + 1e-9:
            violations.append(
                f"total worst-case demand {total_cycles:.4g} cycles exceeds the processor "
                f"capacity {processor.max_cycles_in(expansion.horizon):.4g} over one hyperperiod"
            )
    return FeasibilityReport(
        schedulable=not violations,
        utilization=utilization,
        response_times=times,
        violations=violations,
    )


def assert_feasible(taskset: TaskSet, processor: ProcessorModel) -> FeasibilityReport:
    """Like :func:`check_feasibility` but raises :class:`InfeasibleTaskSetError` on failure."""
    report = check_feasibility(taskset, processor)
    if not report.schedulable:
        raise InfeasibleTaskSetError(
            f"task set {taskset.name!r} is not schedulable at maximum speed: "
            + "; ".join(report.violations)
        )
    return report
