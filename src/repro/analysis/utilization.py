"""Utilisation-based schedulability tests for fixed-priority periodic tasks."""

from __future__ import annotations

from typing import Optional

from ..core.taskset import TaskSet
from ..power.processor import ProcessorModel

__all__ = [
    "total_utilization",
    "average_utilization",
    "liu_layland_bound",
    "passes_liu_layland",
    "minimum_constant_frequency",
]


def total_utilization(taskset: TaskSet, processor: ProcessorModel) -> float:
    """Worst-case utilisation of ``taskset`` at the processor's maximum frequency."""
    return taskset.utilization(processor.fmax)


def average_utilization(taskset: TaskSet, processor: ProcessorModel) -> float:
    """Average-case utilisation (ACEC instead of WCEC) at maximum frequency."""
    return taskset.average_utilization(processor.fmax)


def liu_layland_bound(n_tasks: int) -> float:
    """The classic rate-monotonic utilisation bound ``n (2^{1/n} − 1)``."""
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    return n_tasks * (2.0 ** (1.0 / n_tasks) - 1.0)


def passes_liu_layland(taskset: TaskSet, processor: ProcessorModel) -> bool:
    """Sufficient (not necessary) RM schedulability test at maximum frequency."""
    return total_utilization(taskset, processor) <= liu_layland_bound(len(taskset)) + 1e-12


def minimum_constant_frequency(taskset: TaskSet, processor: ProcessorModel,
                               *, use_acec: bool = False) -> Optional[float]:
    """Smallest constant frequency at which the task set remains utilisation-feasible.

    This is the frequency a naive "uniform slowdown" DVS scheme would pick:
    scale the whole task set so its utilisation becomes exactly 1 (for
    implicit-deadline RM task sets this is only a necessary condition, so the
    caller should confirm with response-time analysis).  Returns ``None`` when
    even the maximum frequency is insufficient.
    """
    utilization = (average_utilization if use_acec else total_utilization)(taskset, processor)
    required = utilization * processor.fmax
    if required > processor.fmax + 1e-12:
        return None
    return max(required, processor.fmin)
