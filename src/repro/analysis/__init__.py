"""Schedulability analysis and the fully preemptive schedule expansion."""

from .feasibility import FeasibilityReport, assert_feasible, check_feasibility
from .preemption import FullyPreemptiveSchedule, expand_fully_preemptive
from .response_time import breakdown_frequency, is_schedulable, response_times
from .utilization import (
    average_utilization,
    liu_layland_bound,
    minimum_constant_frequency,
    passes_liu_layland,
    total_utilization,
)

__all__ = [
    "FeasibilityReport",
    "check_feasibility",
    "assert_feasible",
    "FullyPreemptiveSchedule",
    "expand_fully_preemptive",
    "response_times",
    "is_schedulable",
    "breakdown_frequency",
    "total_utilization",
    "average_utilization",
    "liu_layland_bound",
    "passes_liu_layland",
    "minimum_constant_frequency",
]
