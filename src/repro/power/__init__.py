"""Processor power/DVS model: delay law, energy law, discrete levels, overheads."""

from .presets import (
    cmos_processor,
    crusoe_like_processor,
    ideal_processor,
    normalized_processor,
    xscale_like_processor,
)
from .processor import ProcessorModel
from .transition import TransitionModel
from .voltage import QUANTIZATION_POLICIES, VoltageLevels, split_two_level

__all__ = [
    "ProcessorModel",
    "VoltageLevels",
    "TransitionModel",
    "split_two_level",
    "QUANTIZATION_POLICIES",
    "ideal_processor",
    "cmos_processor",
    "normalized_processor",
    "crusoe_like_processor",
    "xscale_like_processor",
]
