"""Ready-made processor models.

The paper does not name a specific processor; its motivational example assumes
the clock frequency is proportional to the supply voltage with a 5 V rail, and
its random-task-set experiments only depend on the frequency range and the
energy-vs-voltage convexity.  These presets cover the common cases:

* :func:`ideal_processor` — the paper's simplified model (linear law, 5 V).
* :func:`cmos_processor` — the full delay law with α = 2 and a 0.8 V threshold.
* :func:`normalized_processor` — ``fmax = 1`` and ``vmax = 1``; convenient when
  execution cycles are expressed directly as worst-case execution *times* at
  maximum speed.
* :func:`crusoe_like_processor` / :func:`xscale_like_processor` — discrete
  level sets loosely modelled after the Transmeta Crusoe and Intel XScale
  operating points that the DVS literature of that era commonly used.
"""

from __future__ import annotations

from typing import Tuple

from .processor import ProcessorModel
from .voltage import VoltageLevels

__all__ = [
    "ideal_processor",
    "cmos_processor",
    "normalized_processor",
    "crusoe_like_processor",
    "xscale_like_processor",
]


def ideal_processor(*, vmax: float = 5.0, vmin: float = 0.5, fmax: float = 1.0,
                    ceff: float = 1.0) -> ProcessorModel:
    """The paper's simplified model: frequency proportional to voltage."""
    return ProcessorModel(vmax=vmax, vmin=vmin, fmax=fmax, ceff=ceff,
                          law="linear", name="ideal")


def cmos_processor(*, vmax: float = 3.3, vmin: float = 1.0, fmax: float = 1.0,
                   vth: float = 0.8, alpha: float = 2.0, ceff: float = 1.0) -> ProcessorModel:
    """Full CMOS delay law (α = 2, Vth = 0.8 V by default)."""
    return ProcessorModel(vmax=vmax, vmin=vmin, fmax=fmax, vth=vth, alpha=alpha,
                          ceff=ceff, law="cmos", name="cmos")


def normalized_processor(*, vmin_fraction: float = 0.1, ceff: float = 1.0) -> ProcessorModel:
    """``fmax = 1`` and ``vmax = 1`` so cycles are worst-case execution times at full speed."""
    return ProcessorModel(vmax=1.0, vmin=vmin_fraction, fmax=1.0, ceff=ceff,
                          law="linear", name="normalized")


def crusoe_like_processor() -> Tuple[ProcessorModel, VoltageLevels]:
    """A Transmeta-Crusoe-like processor: 1.1–1.65 V, five discrete levels.

    Returns the continuous model together with the discrete level set used by
    the quantisation ablation.
    """
    processor = ProcessorModel(vmax=1.65, vmin=1.1, fmax=1.0, vth=0.5, alpha=2.0,
                               ceff=1.0, law="cmos", name="crusoe-like")
    levels = VoltageLevels([1.10, 1.225, 1.35, 1.475, 1.65])
    return processor, levels


def xscale_like_processor() -> Tuple[ProcessorModel, VoltageLevels]:
    """An Intel-XScale-like processor: 0.75–1.8 V, five discrete levels."""
    processor = ProcessorModel(vmax=1.8, vmin=0.75, fmax=1.0, vth=0.45, alpha=1.5,
                               ceff=1.0, law="cmos", name="xscale-like")
    levels = VoltageLevels([0.75, 1.0, 1.3, 1.6, 1.8])
    return processor, levels
