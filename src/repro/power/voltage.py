"""Discrete voltage levels and quantisation policies.

The paper assumes "the processor can use any voltage value within a specified
range" (continuous DVS).  Real processors expose a handful of discrete
voltage/frequency pairs, so this module provides:

* :class:`VoltageLevels` — an ordered set of admissible supply voltages.
* Quantisation policies that map an ideal (continuous) voltage request onto
  the discrete set:

  - ``"ceiling"``: the next level *above* the request (always deadline-safe);
  - ``"floor"``: the next level below (energy-optimistic, may miss deadlines —
    only useful for bounding studies);
  - ``"nearest"``: the closest level;
  - ``"split"``: the classic two-level split of Ishihara & Yasuura (ISLPED'98)
    that emulates the continuous voltage exactly in terms of completed cycles
    by spending part of the interval at the level below and the rest at the
    level above.

The quantisation ablation benchmark (`bench_ablation_discrete_voltage`) uses
these to measure how much of the ACS gain survives discretisation.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.errors import InvalidProcessorError
from .processor import ProcessorModel

__all__ = ["VoltageLevels", "split_two_level", "QUANTIZATION_POLICIES"]

QUANTIZATION_POLICIES = ("ceiling", "floor", "nearest", "split")


@dataclass(frozen=True)
class VoltageLevels:
    """An ordered, de-duplicated set of admissible supply voltages."""

    levels: Tuple[float, ...]

    def __init__(self, levels: Sequence[float]) -> None:
        cleaned = sorted({float(v) for v in levels})
        if not cleaned:
            raise InvalidProcessorError("at least one voltage level is required")
        if cleaned[0] <= 0:
            raise InvalidProcessorError("voltage levels must be positive")
        object.__setattr__(self, "levels", tuple(cleaned))

    def __len__(self) -> int:
        return len(self.levels)

    def __iter__(self):
        return iter(self.levels)

    @property
    def vmin(self) -> float:
        return self.levels[0]

    @property
    def vmax(self) -> float:
        return self.levels[-1]

    # ------------------------------------------------------------------ #
    # Quantisation
    # ------------------------------------------------------------------ #
    def ceiling(self, voltage: float) -> float:
        """Smallest level ≥ ``voltage`` (or ``vmax`` when above the range)."""
        index = bisect_left(self.levels, voltage - 1e-12)
        if index >= len(self.levels):
            return self.vmax
        return self.levels[index]

    def floor(self, voltage: float) -> float:
        """Largest level ≤ ``voltage`` (or ``vmin`` when below the range)."""
        index = bisect_left(self.levels, voltage + 1e-12)
        if index == 0:
            return self.vmin
        return self.levels[index - 1]

    def nearest(self, voltage: float) -> float:
        """Level closest to ``voltage`` (ties resolved upward)."""
        lower, upper = self.floor(voltage), self.ceiling(voltage)
        if voltage - lower < upper - voltage:
            return lower
        return upper

    def quantize(self, voltage: float, policy: str = "ceiling") -> float:
        """Quantise ``voltage`` according to ``policy`` (see module docstring)."""
        if policy == "ceiling":
            return self.ceiling(voltage)
        if policy == "floor":
            return self.floor(voltage)
        if policy == "nearest":
            return self.nearest(voltage)
        raise InvalidProcessorError(
            f"unknown quantisation policy {policy!r}; expected one of {QUANTIZATION_POLICIES}"
        )

    def bracket(self, voltage: float) -> Tuple[float, float]:
        """The two levels surrounding ``voltage`` (may coincide at the range ends)."""
        return self.floor(voltage), self.ceiling(voltage)

    @classmethod
    def uniform(cls, vmin: float, vmax: float, count: int) -> "VoltageLevels":
        """``count`` equally spaced levels spanning ``[vmin, vmax]``."""
        if count < 1:
            raise InvalidProcessorError("count must be at least 1")
        if count == 1:
            return cls([vmax])
        step = (vmax - vmin) / (count - 1)
        return cls([vmin + i * step for i in range(count)])


def split_two_level(processor: ProcessorModel, levels: VoltageLevels, cycles: float,
                    available_time: float) -> List[Tuple[float, float]]:
    """Two-level voltage split that completes ``cycles`` in exactly ``available_time``.

    Returns a list of ``(voltage, cycles_at_that_voltage)`` pairs.  When the
    ideal (continuous) voltage coincides with an available level a single pair
    is returned; otherwise the interval is split between the bracketing levels
    so the total cycle count and total time are both met — the construction of
    Ishihara & Yasuura, which is the energy-optimal use of two discrete levels.
    """
    if cycles <= 0:
        return []
    if available_time <= 0:
        raise InvalidProcessorError("available_time must be positive")
    ideal_voltage = processor.voltage_for_frequency(cycles / available_time)
    lower, upper = levels.bracket(ideal_voltage)
    f_upper = processor.frequency(upper)
    if abs(upper - lower) < 1e-12:
        return [(upper, cycles)]
    f_lower = processor.frequency(lower)
    # Solve: c_low + c_high = cycles, c_low/f_lower + c_high/f_upper = available_time.
    # If the lower level alone is fast enough the whole workload runs there.
    if f_lower * available_time >= cycles - 1e-12:
        return [(lower, cycles)]
    denominator = 1.0 / f_lower - 1.0 / f_upper
    c_high_time_balance = (available_time - cycles / f_lower) / (-denominator)
    c_high = min(max(c_high_time_balance, 0.0), cycles)
    c_low = cycles - c_high
    pairs = []
    if c_low > 1e-12:
        pairs.append((lower, c_low))
    if c_high > 1e-12:
        pairs.append((upper, c_high))
    return pairs
