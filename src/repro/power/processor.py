"""Variable-voltage processor model.

The paper's energy model (Section 2.2):

* cycle time        ``t_cycle = k · Vdd / (Vdd − Vth)^α``  (the usual CMOS delay law)
* energy per cycle  ``E_cycle = Ceff · Vdd²``

and, for the motivational example, the simplified assumption that the clock
frequency is *proportional* to the supply voltage.  Both laws are supported:

``law="linear"``
    ``f(V) = fmax · V / Vmax`` — the simplified model.
``law="cmos"``
    ``f(V) = (V − Vth)^α / (k · V)`` with ``k`` calibrated so ``f(Vmax) = fmax``.

A :class:`ProcessorModel` is immutable.  All conversions (frequency for a
voltage, the minimum voltage able to sustain a frequency, per-cycle energy,
energy for a number of cycles) live here so that the offline optimiser and the
runtime simulator use exactly the same physics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..core.errors import InvalidProcessorError

__all__ = ["ProcessorModel"]

_LAWS = ("linear", "cmos")


@dataclass(frozen=True)
class ProcessorModel:
    """An idealised DVS-capable processor.

    Parameters
    ----------
    vmax / vmin:
        Supply-voltage range.  Scaling requests outside the range are clipped
        (the paper assumes any voltage within the range is available).
    fmax:
        Clock frequency at ``vmax`` in cycles per time unit.  All other
        frequencies are derived from the delay law.
    vth:
        Threshold voltage (only used by the ``"cmos"`` law).
    alpha:
        Velocity-saturation exponent, between 1 and 2 (only ``"cmos"``).
    ceff:
        Default effective switching capacitance used when a task does not
        carry its own.
    law:
        ``"linear"`` (frequency proportional to voltage, as in the paper's
        motivational example) or ``"cmos"`` (the full delay law).
    name:
        Label for reports.
    """

    vmax: float = 5.0
    vmin: float = 0.5
    fmax: float = 1.0
    vth: float = 0.8
    alpha: float = 2.0
    ceff: float = 1.0
    law: str = "linear"
    name: str = "processor"
    _k: float = field(init=False, repr=False, default=0.0)

    def __post_init__(self) -> None:
        if self.vmax <= 0 or self.vmin <= 0:
            raise InvalidProcessorError("voltages must be positive")
        if self.vmin >= self.vmax:
            raise InvalidProcessorError(
                f"vmin ({self.vmin}) must be strictly below vmax ({self.vmax})"
            )
        if self.fmax <= 0:
            raise InvalidProcessorError("fmax must be positive")
        if self.ceff <= 0:
            raise InvalidProcessorError("ceff must be positive")
        if self.law not in _LAWS:
            raise InvalidProcessorError(f"unknown delay law {self.law!r}; expected one of {_LAWS}")
        if self.law == "cmos":
            if not 1.0 <= self.alpha <= 2.0:
                raise InvalidProcessorError(f"alpha must lie in [1, 2], got {self.alpha}")
            if self.vth < 0:
                raise InvalidProcessorError("vth must be non-negative")
            if self.vmin <= self.vth:
                raise InvalidProcessorError(
                    f"vmin ({self.vmin}) must exceed the threshold voltage ({self.vth})"
                )
            # Calibrate the delay constant so that f(vmax) == fmax.
            k = (self.vmax - self.vth) ** self.alpha / (self.fmax * self.vmax)
        else:
            # Linear law: f = fmax * V / vmax, i.e. k = vmax / fmax in t = k/V ... V.
            k = self.vmax / self.fmax
        object.__setattr__(self, "_k", k)

    # ------------------------------------------------------------------ #
    # Frequency <-> voltage
    # ------------------------------------------------------------------ #
    def frequency(self, voltage: float) -> float:
        """Clock frequency (cycles per time unit) at ``voltage``."""
        self._check_voltage(voltage)
        if self.law == "linear":
            return voltage / self._k
        return (voltage - self.vth) ** self.alpha / (self._k * voltage)

    def cycle_time(self, voltage: float) -> float:
        """Duration of one cycle at ``voltage``."""
        return 1.0 / self.frequency(voltage)

    @property
    def fmin(self) -> float:
        """Frequency at the minimum supply voltage."""
        return self.frequency(self.vmin)

    def voltage_for_frequency(self, frequency: float) -> float:
        """Lowest supply voltage able to run at ``frequency``.

        Frequencies outside ``[fmin, fmax]`` are clipped to the voltage range
        (requesting more than ``fmax`` returns ``vmax``; the caller is
        responsible for deciding whether that constitutes a deadline risk).
        """
        if frequency <= 0:
            return self.vmin
        if frequency >= self.fmax:
            return self.vmax
        if frequency <= self.fmin:
            return self.vmin
        if self.law == "linear":
            return min(max(frequency * self._k, self.vmin), self.vmax)
        if self.alpha == 2.0:
            # f·k·V = (V − Vth)² → V² − (2·Vth + k·f)·V + Vth² = 0; take the root above Vth.
            b = 2.0 * self.vth + self._k * frequency
            discriminant = b * b - 4.0 * self.vth * self.vth
            voltage = 0.5 * (b + math.sqrt(max(discriminant, 0.0)))
        elif self.alpha == 1.0:
            # f·k·V = V − Vth → V = Vth / (1 − k·f)
            denom = 1.0 - self._k * frequency
            if denom <= 0:
                return self.vmax
            voltage = self.vth / denom
        else:
            voltage = self._invert_frequency_bisect(frequency)
        return min(max(voltage, self.vmin), self.vmax)

    def _invert_frequency_bisect(self, frequency: float, *, tol: float = 1e-12, iters: int = 200) -> float:
        """Numerically invert the cmos delay law for non-integer ``alpha``."""
        low, high = self.vmin, self.vmax
        for _ in range(iters):
            mid = 0.5 * (low + high)
            if self.frequency(mid) < frequency:
                low = mid
            else:
                high = mid
            if high - low < tol:
                break
        return high

    # ------------------------------------------------------------------ #
    # Energy
    # ------------------------------------------------------------------ #
    def energy_per_cycle(self, voltage: float, ceff: Optional[float] = None) -> float:
        """Energy of one cycle at ``voltage`` (``Ceff · V²``)."""
        self._check_voltage(voltage)
        capacitance = self.ceff if ceff is None else ceff
        return capacitance * voltage * voltage

    def energy(self, cycles: float, voltage: float, ceff: Optional[float] = None) -> float:
        """Energy of executing ``cycles`` cycles at ``voltage``."""
        if cycles < 0:
            raise InvalidProcessorError(f"cycles must be non-negative, got {cycles}")
        return cycles * self.energy_per_cycle(voltage, ceff)

    def power(self, voltage: float, ceff: Optional[float] = None) -> float:
        """Dynamic power at ``voltage`` (``Ceff · V² · f(V)``)."""
        return self.energy_per_cycle(voltage, ceff) * self.frequency(voltage)

    def energy_for_workload_in_time(self, cycles: float, available_time: float,
                                    ceff: Optional[float] = None) -> float:
        """Energy of executing ``cycles`` stretched over exactly ``available_time``.

        The operating point is the slowest one that still finishes in time,
        i.e. ``f = cycles / available_time`` clipped to the processor range.
        This is the quantity the offline NLP minimises for each sub-instance.
        """
        if available_time <= 0:
            raise InvalidProcessorError(f"available_time must be positive, got {available_time}")
        if cycles <= 0:
            return 0.0
        voltage = self.voltage_for_frequency(cycles / available_time)
        return self.energy(cycles, voltage, ceff)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def clip_frequency(self, frequency: float) -> float:
        """Clip ``frequency`` into ``[fmin, fmax]``."""
        return min(max(frequency, self.fmin), self.fmax)

    def clip_voltage(self, voltage: float) -> float:
        """Clip ``voltage`` into ``[vmin, vmax]``."""
        return min(max(voltage, self.vmin), self.vmax)

    def max_cycles_in(self, duration: float) -> float:
        """Largest number of cycles executable within ``duration`` at full speed."""
        if duration < 0:
            raise InvalidProcessorError("duration must be non-negative")
        return duration * self.fmax

    def min_time_for(self, cycles: float) -> float:
        """Shortest time needed to execute ``cycles`` (at ``fmax``)."""
        if cycles < 0:
            raise InvalidProcessorError("cycles must be non-negative")
        return cycles / self.fmax

    def _check_voltage(self, voltage: float) -> None:
        if voltage <= 0:
            raise InvalidProcessorError(f"voltage must be positive, got {voltage}")

    def describe(self) -> str:
        """Single-line summary used in experiment reports."""
        if self.law == "cmos":
            detail = f"vth={self.vth:g}, alpha={self.alpha:g}"
        else:
            detail = "frequency proportional to voltage"
        return (
            f"{self.name}: law={self.law} ({detail}), V∈[{self.vmin:g}, {self.vmax:g}], "
            f"fmax={self.fmax:g}, ceff={self.ceff:g}"
        )
