"""Voltage-transition overhead model.

The paper explicitly ignores voltage-transition overhead, arguing that task
execution times dwarf transition times.  To let users *check* that argument
for their own parameters, this module provides a simple overhead model in the
style of Mochocki, Hu & Quan (ICCAD'02): a transition between supply voltages
``v1 → v2`` costs

* time   ``t = |v2 − v1| / slew_rate``  (bounded below by ``min_time``), and
* energy ``E = efficiency_loss · C_dd · |v2² − v1²|``

where ``C_dd`` models the capacitance of the voltage converter.  The runtime
simulator can be configured with a :class:`TransitionModel`; the default
:func:`TransitionModel.ideal` has zero cost and reproduces the paper's
assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import InvalidProcessorError

__all__ = ["TransitionModel"]


@dataclass(frozen=True)
class TransitionModel:
    """Cost of switching the supply voltage.

    Parameters
    ----------
    slew_rate:
        Voltage change per time unit (V per time unit).  ``float("inf")``
        means instantaneous transitions.
    min_time:
        Minimum latency of any non-trivial transition (models PLL re-lock).
    cdd:
        Effective capacitance of the DC-DC converter (energy term).
    efficiency_loss:
        Fraction of the converter charge that is wasted per transition.
    """

    slew_rate: float = float("inf")
    min_time: float = 0.0
    cdd: float = 0.0
    efficiency_loss: float = 1.0

    def __post_init__(self) -> None:
        if self.slew_rate <= 0:
            raise InvalidProcessorError("slew_rate must be positive")
        if self.min_time < 0:
            raise InvalidProcessorError("min_time must be non-negative")
        if self.cdd < 0:
            raise InvalidProcessorError("cdd must be non-negative")
        if not 0.0 <= self.efficiency_loss <= 1.0:
            raise InvalidProcessorError("efficiency_loss must lie in [0, 1]")

    @classmethod
    def ideal(cls) -> "TransitionModel":
        """Zero-cost transitions (the paper's assumption)."""
        return cls()

    @classmethod
    def realistic(cls, *, slew_rate: float = 50.0, min_time: float = 0.01,
                  cdd: float = 0.1, efficiency_loss: float = 0.9) -> "TransitionModel":
        """A moderately pessimistic converter, useful for the overhead ablation."""
        return cls(slew_rate=slew_rate, min_time=min_time, cdd=cdd,
                   efficiency_loss=efficiency_loss)

    @property
    def is_free(self) -> bool:
        """True when transitions cost neither time nor energy."""
        return self.cdd == 0.0 and self.min_time == 0.0 and self.slew_rate == float("inf")

    def transition_time(self, v_from: float, v_to: float) -> float:
        """Latency of switching from ``v_from`` to ``v_to``."""
        if v_from == v_to:
            return 0.0
        if self.slew_rate == float("inf"):
            return self.min_time
        return max(abs(v_to - v_from) / self.slew_rate, self.min_time)

    def transition_energy(self, v_from: float, v_to: float) -> float:
        """Energy of switching from ``v_from`` to ``v_to``."""
        if v_from == v_to:
            return 0.0
        return self.efficiency_loss * self.cdd * abs(v_to * v_to - v_from * v_from)
