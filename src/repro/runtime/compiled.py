"""Compiled-schedule fast path of the runtime simulator.

The discrete-event loop in :mod:`repro.runtime.simulator` is the dominant cost
of the paper's Figure-6 sweeps (100 task sets × 1000 hyperperiods per point).
The reference implementation re-derives identical per-hyperperiod state from
scratch: it rescans ``schedule.entries`` once per job (O(entries × instances)),
keys the planned frequencies and the per-task energies by *strings*, rebuilds
the ``active``/``eligible`` lists and runs a ``min()`` scan over them on every
dispatch event, and draws one scalar RNG sample per job.

This module compiles a :class:`~repro.offline.schedule.StaticSchedule` once
per :meth:`DVSSimulator.run` into flat, integer-indexed state:

* entries pre-grouped per job with their budgets, planned end-times, slot
  starts and planned worst-case frequencies as arrays (no string keys on the
  hot path);
* per-job state (remaining cycles, current sub-instance, budgets) that is
  *reset* — not reconstructed — at every hyperperiod boundary;
* the whole run's actual execution cycles drawn in a single
  :meth:`~repro.workloads.distributions.WorkloadModel.sample_batch` call;
* a priority-ordered ready heap (keyed on the precomputed rank of the job's
  ``sort_key``) plus a throttled-job wake-up heap keyed on eligible time,
  replacing the per-event list rebuilds and ``min()`` scans.

**Determinism contract:** for the same schedule, workload model, generator
state and configuration, the fast path produces *bitwise-identical*
:class:`~repro.runtime.results.SimulationResult` values (total and per-
hyperperiod energy, per-task energies, transition energy, deadline misses,
timeline segments) and the same policy-hook call sequence as the reference
event loop, which remains available via ``SimulationConfig(fast_path=False)``.
The equivalence suite in ``tests/runtime/test_compiled_equivalence.py``
enforces the contract across policies, workload models, discrete-voltage and
transition-overhead configurations.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from ..core.errors import DeadlineMissError
from ..offline.schedule import StaticSchedule
from ..power.processor import ProcessorModel
from .results import DeadlineMiss, SimulationResult
from .trace import (
    DeadlineMiss as DeadlineMissEvent,
    EventTrace,
    FrequencyChange,
    HyperperiodReset,
    JobRelease,
    Preempt,
    Resume,
    SegmentEnd,
    SegmentStart,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workloads.distributions import WorkloadModel
    from .policies import DVSPolicy
    from .simulator import SimulationConfig

__all__ = ["CompiledSchedule", "CompiledRunner", "planned_frequency_array", "run_compiled"]

_EPS = 1e-9


def planned_frequency_array(schedule: StaticSchedule, processor: ProcessorModel) -> np.ndarray:
    """Static worst-case frequency of every entry, indexed by total order.

    This is the single source of the "planned frequency" the static-replay
    policy runs at: the reference simulator's string-keyed dictionary and the
    compiled per-job arrays are both views of this array, so the two paths can
    never disagree.
    """
    frequencies = np.empty(len(schedule.entries), dtype=float)
    previous_end = 0.0
    for index, entry in enumerate(schedule.entries):
        planned_start = max(previous_end, entry.sub.slot_start)
        frequencies[index] = entry.planned_wc_speed(planned_start, processor)
        previous_end = max(previous_end, entry.end_time)
    return frequencies


class CompiledSchedule:
    """Integer-indexed view of a static schedule, built once per simulation run.

    All per-entry quantities are grouped per job (replacing the
    O(entries × instances) ``entries_for_instance`` scans) and exposed both as
    NumPy arrays (``releases``, ``deadlines``, ``entry_budgets`` …) and as
    plain-list mirrors used by the scalar event loop, where native floats are
    faster than NumPy scalars.
    """

    def __init__(self, schedule: StaticSchedule, processor: ProcessorModel) -> None:
        self.schedule = schedule
        self.processor = processor
        expansion = schedule.expansion
        self.hyperperiod = expansion.horizon
        self.instances = list(expansion.instances)
        self.n_jobs = len(self.instances)

        planned = planned_frequency_array(schedule, processor)
        self.planned_frequencies = planned

        releases: List[float] = []
        deadlines: List[float] = []
        final_end_times: List[float] = []
        wc_totals: List[float] = []
        first_budgets: List[float] = []
        self.entry_budgets: List[List[float]] = []
        self.entry_end_times: List[List[float]] = []
        self.entry_slot_starts: List[List[float]] = []
        self.entry_planned: List[List[float]] = []
        self.entry_sub_indices: List[List[int]] = []
        self.task_names: List[str] = []
        self.job_indices: List[int] = []
        self.ceffs: List[float] = []
        self.wcecs: List[float] = []
        self.tasks = [instance.task for instance in self.instances]
        # Needed to re-rank the dispatcher order per hyperperiod when an
        # arrival model jitters the releases.
        self.priorities = [instance.priority for instance in self.instances]

        for instance in self.instances:
            entries = schedule.entries_for_instance(instance)
            budgets = [entry.wc_budget for entry in entries]
            self.entry_budgets.append(budgets)
            self.entry_end_times.append([entry.end_time for entry in entries])
            self.entry_slot_starts.append([entry.sub.slot_start for entry in entries])
            self.entry_planned.append([float(planned[entry.order]) for entry in entries])
            self.entry_sub_indices.append([entry.sub.sub_index for entry in entries])
            releases.append(instance.release)
            deadlines.append(instance.deadline)
            # Look-ahead horizon: the job's last planned sub-instance end-time.
            final_end_times.append(entries[-1].end_time if entries
                                   else instance.deadline)
            wc_totals.append(sum(budgets))
            first_budgets.append(budgets[0] if budgets else 0.0)
            self.task_names.append(instance.task.name)
            self.job_indices.append(instance.job_index)
            self.ceffs.append(instance.task.ceff)
            self.wcecs.append(instance.wcec)

        self.releases = np.asarray(releases, dtype=float)
        self.deadlines = np.asarray(deadlines, dtype=float)
        self.final_end_times = np.asarray(final_end_times, dtype=float)
        self.wc_totals = np.asarray(wc_totals, dtype=float)
        self.first_budgets = np.asarray(first_budgets, dtype=float)
        # Native-float mirrors for the event loop (indexing an ndarray boxes
        # a NumPy scalar per access, which the hot path cannot afford).
        self.release_list = releases
        self.deadline_list = deadlines
        self.final_end_list = final_end_times
        self.wc_total_list = wc_totals
        self.first_budget_list = first_budgets

        # Rank of every job in the dispatcher's priority order: the heap then
        # compares small integers instead of (priority, release, name, index)
        # tuples.  sort_key is a strict total order (task name + job index are
        # unique), so rank comparison selects exactly the job a min() scan
        # over sort_key would.
        order = sorted(
            range(self.n_jobs),
            key=lambda j: (self.instances[j].priority, releases[j],
                           self.task_names[j], self.job_indices[j]),
        )
        self.rank_of_job = [0] * self.n_jobs
        for rank, job in enumerate(order):
            self.rank_of_job[job] = rank
        self.job_of_rank = order

        # Jobs in release order (stable, mirroring the reference's
        # ``sorted(jobs, key=lambda j: j.release)``).
        self.release_order = sorted(range(self.n_jobs), key=lambda j: releases[j])


class CompiledRunner:
    """Reusable per-run state for the compiled event loop.

    Job state lives in flat lists that are reset in place at every
    hyperperiod boundary instead of reallocating ``_JobState`` objects.
    """

    def __init__(self, compiled: CompiledSchedule, processor: ProcessorModel,
                 policy: "DVSPolicy", config: "SimulationConfig") -> None:
        self.compiled = compiled
        self.processor = processor
        self.policy = policy
        self.config = config
        n = compiled.n_jobs
        self.actual = [0.0] * n
        self.budget = [0.0] * n
        self.wc_remaining = [0.0] * n
        self.position = [0] * n
        self.finished = [False] * n
        self.preempted_flag = [False] * n

    def reset_hyperperiod(self, samples_row: np.ndarray) -> None:
        """Reset the job state in place from one hyperperiod's workload draws."""
        compiled = self.compiled
        actual = self.actual
        budget = self.budget
        wc_remaining = self.wc_remaining
        position = self.position
        finished = self.finished
        preempted_flag = self.preempted_flag
        wcecs = compiled.wcecs
        first_budgets = compiled.first_budget_list
        wc_totals = compiled.wc_total_list
        values = samples_row.tolist()
        for job in range(compiled.n_jobs):
            cycles = min(max(values[job], 0.0), wcecs[job])
            actual[job] = cycles
            budget[job] = first_budgets[job]
            wc_remaining[job] = wc_totals[job]
            position[job] = 0
            finished[job] = cycles <= _EPS
            preempted_flag[job] = False

    def run_hyperperiod(self, offset: float, hp_index: int,
                        energy_by_task: Dict[str, float],
                        trace: Optional[EventTrace],
                        misses: List[DeadlineMiss],
                        jitter: Optional[List[float]] = None):
        """Simulate one hyperperiod; returns ``(energy, transition_energy)``.

        Event-for-event equivalent to the reference
        ``DVSSimulator._simulate_hyperperiod``: the ready heap pops exactly the
        job the reference ``min()`` scan selects, and throttled jobs re-enter
        through the wake-up heap at exactly the times the reference re-admits
        them.  ``jitter`` holds this hyperperiod's arrival offsets (one per
        job, in instance order); when given, the dispatcher rank and release
        order are re-derived from the jittered releases — exactly the sort the
        reference path performs on its ``_JobState`` objects.
        """
        compiled = self.compiled
        processor = self.processor
        policy = self.policy
        config = self.config

        actual = self.actual
        budget = self.budget
        wc_remaining = self.wc_remaining
        position = self.position
        finished = self.finished
        preempted_flag = self.preempted_flag

        entry_budgets = compiled.entry_budgets
        entry_end_times = compiled.entry_end_times
        entry_slot_starts = compiled.entry_slot_starts
        entry_planned = compiled.entry_planned
        entry_sub_indices = compiled.entry_sub_indices
        task_names = compiled.task_names
        job_indices = compiled.job_indices
        ceffs = compiled.ceffs
        n_jobs = compiled.n_jobs

        deadline_abs = [deadline + offset for deadline in compiled.deadline_list]
        final_end_abs = [end + offset for end in compiled.final_end_list]
        if jitter is None:
            release_abs = [release + offset for release in compiled.release_list]
            rank_of_job = compiled.rank_of_job
            job_of_rank = compiled.job_of_rank
            release_order = compiled.release_order
        else:
            # Same left-associated sum as _JobState (release + offset, then
            # += jitter) so both engines produce bitwise-equal releases.
            release_abs = []
            for job, j in enumerate(jitter):
                release = compiled.release_list[job] + offset
                if j:
                    release += j
                release_abs.append(release)
            priorities = compiled.priorities
            job_of_rank = sorted(
                range(n_jobs),
                key=lambda j: (priorities[j], release_abs[j],
                               task_names[j], job_indices[j]),
            )
            rank_of_job = [0] * n_jobs
            for rank, job in enumerate(job_of_rank):
                rank_of_job[job] = rank
            release_order = sorted(range(n_jobs), key=lambda j: release_abs[j])

        frequency_from = policy.frequency_from
        on_job_finish = policy.on_job_finish
        voltage_for_frequency = processor.voltage_for_frequency
        processor_frequency = processor.frequency
        fmax = processor.fmax
        vmax = processor.vmax
        voltage_levels = config.voltage_levels
        quantization = config.quantization
        clip_voltage = processor.clip_voltage
        transition_model = config.transition_model
        transition_free = transition_model.is_free
        raise_on_miss = config.on_deadline_miss == "raise"

        energy = 0.0
        transition_energy = 0.0
        current_voltage: Optional[float] = None
        time_now = offset
        release_cursor = 0
        ready: List[int] = []
        throttled: List[tuple] = []

        def eligible_time(job: int) -> float:
            """Mirror of ``_JobState.current_entry`` + ``eligible_time``."""
            pos = position[job]
            b = budget[job]
            budgets = entry_budgets[job]
            last = len(budgets) - 1
            while pos < last and b <= _EPS:
                pos += 1
                b = budgets[pos]
            position[job] = pos
            budget[job] = b
            slot = entry_slot_starts[job][pos] + offset
            release = release_abs[job]
            return release if release >= slot else slot

        def admit_releases(up_to: float) -> None:
            nonlocal release_cursor
            while release_cursor < n_jobs and \
                    release_abs[release_order[release_cursor]] <= up_to + _EPS:
                job = release_order[release_cursor]
                if trace is not None:
                    trace.append(JobRelease(time=release_abs[job], task=task_names[job],
                                            job_index=job_indices[job]))
                release_cursor += 1
                if finished[job]:
                    continue
                wake = eligible_time(job)
                if wake <= time_now + _EPS:
                    heappush(ready, rank_of_job[job])
                else:
                    heappush(throttled, (wake, rank_of_job[job]))

        admit_releases(time_now)
        while True:
            admit_releases(time_now)
            while throttled and throttled[0][0] <= time_now + _EPS:
                heappush(ready, heappop(throttled)[1])
            if not ready:
                if not throttled:
                    if release_cursor >= n_jobs:
                        break
                    # No runnable work at all: jump to the next release.
                    time_now = max(time_now, release_abs[release_order[release_cursor]])
                    admit_releases(time_now)
                    continue
                # Every released job is throttled until its next sub-instance
                # slot opens; jump to the earliest such moment (or release).
                wake_up = throttled[0][0]
                if release_cursor < n_jobs:
                    next_release = release_abs[release_order[release_cursor]]
                    if next_release < wake_up:
                        wake_up = next_release
                time_now = max(time_now, wake_up)
                continue

            job = job_of_rank[heappop(ready)]
            eligible_time(job)  # side effect only: advances past exhausted budgets
            pos = position[job]
            end_time_abs = entry_end_times[job][pos] + offset
            frequency = frequency_from(
                processor,
                time_now,
                end_time_abs,
                budget[job],
                entry_planned[job][pos],
                wc_remaining[job],
                deadline_abs[job],
                final_end_abs[job],
            )
            voltage = voltage_for_frequency(frequency)
            if voltage_levels is not None:
                voltage = voltage_levels.quantize(voltage, quantization)
                voltage = clip_voltage(voltage)
            frequency = processor_frequency(voltage)

            next_release = None
            if release_cursor < n_jobs:
                next_release = release_abs[release_order[release_cursor]]
            budget_cycles = max(min(budget[job], actual[job]), 0.0)
            if budget_cycles <= _EPS:
                last = len(entry_budgets[job]) - 1
                if budget[job] <= _EPS and pos >= last:
                    # Budgets exhausted but cycles remain (numerical fringe): finish at fmax.
                    frequency = fmax
                    voltage = vmax
                    budget_cycles = actual[job]
                else:
                    # The current sub-instance has no usable budget; requeue and
                    # let the next selection advance the bookkeeping.
                    wake = eligible_time(job)
                    if wake <= time_now + _EPS:
                        heappush(ready, rank_of_job[job])
                    else:
                        heappush(throttled, (wake, rank_of_job[job]))
                    continue

            # The dispatch is now committed: emit its events (resume first,
            # then the speed change, then the segment itself).
            task_name = task_names[job]
            was_resumed = preempted_flag[job]
            preempted_flag[job] = False
            if trace is not None:
                if was_resumed:
                    trace.append(Resume(time=time_now, task=task_name,
                                        job_index=job_indices[job],
                                        sub_index=entry_sub_indices[job][pos]))
                if current_voltage is None or voltage != current_voltage:
                    trace.append(FrequencyChange(time=time_now, frequency=frequency,
                                                 voltage=voltage))
                trace.append(SegmentStart(time=time_now, task=task_name,
                                          job_index=job_indices[job],
                                          sub_index=entry_sub_indices[job][pos],
                                          frequency=frequency, voltage=voltage))

            # Transition accounting happens only once the dispatch is known to
            # execute, at the voltage it actually executes at: a zero-budget
            # requeue switches nothing, and the fmax fringe above runs at vmax,
            # not at the pre-override policy voltage.
            if current_voltage is not None and not transition_free:
                transition_energy += transition_model.transition_energy(current_voltage, voltage)
            current_voltage = voltage

            duration = budget_cycles / frequency
            preempted = False
            if next_release is not None and next_release - time_now < duration - _EPS:
                duration = max(next_release - time_now, 0.0)
                preempted = True

            cycles = duration * frequency
            segment_energy = cycles * ((ceffs[job] * voltage) * voltage)
            energy += segment_energy
            energy_by_task[task_name] = energy_by_task.get(task_name, 0.0) + segment_energy

            segment_start = time_now
            time_now += duration
            actual[job] = max(actual[job] - cycles, 0.0)
            budget[job] = max(budget[job] - cycles, 0.0)
            wc_remaining[job] = max(wc_remaining[job] - cycles, 0.0)
            if trace is not None:
                trace.append(SegmentEnd(time=time_now, task=task_name,
                                        job_index=job_indices[job],
                                        sub_index=entry_sub_indices[job][pos],
                                        start=segment_start, frequency=frequency,
                                        voltage=voltage, cycles=cycles,
                                        energy=segment_energy,
                                        finished=actual[job] <= _EPS))

            if actual[job] <= _EPS:
                finished[job] = True
                deadline = deadline_abs[job]
                on_job_finish(task_name, job_indices[job], time_now, deadline)
                if time_now > deadline + 1e-6 * max(1.0, deadline):
                    if trace is not None:
                        trace.append(DeadlineMissEvent(time=time_now, task=task_name,
                                                       job_index=job_indices[job],
                                                       deadline=deadline))
                    if raise_on_miss:
                        raise DeadlineMissError(
                            f"job {task_name}[{job_indices[job]}] missed its deadline "
                            f"({time_now:.6g} > {deadline:.6g})",
                            task=task_name,
                            job_index=job_indices[job],
                            deadline=deadline,
                            finish_time=time_now,
                        )
                    misses.append(DeadlineMiss(
                        task_name=task_name,
                        job_index=job_indices[job],
                        hyperperiod_index=hp_index,
                        deadline=deadline,
                        finish_time=time_now,
                    ))
            else:
                wake = eligible_time(job)
                if wake <= time_now + _EPS:
                    heappush(ready, rank_of_job[job])
                else:
                    heappush(throttled, (wake, rank_of_job[job]))
            if preempted:
                if not finished[job]:
                    preempted_flag[job] = True
                    if trace is not None:
                        nxt = release_order[release_cursor]
                        trace.append(Preempt(time=time_now, task=task_name,
                                             job_index=job_indices[job],
                                             sub_index=entry_sub_indices[job][pos],
                                             by_task=task_names[nxt],
                                             by_job_index=job_indices[nxt]))
                # The preemptor's JobRelease is emitted *after* the Preempt.
                admit_releases(time_now)

        return energy, transition_energy


def run_compiled(schedule: StaticSchedule, processor: ProcessorModel, policy: "DVSPolicy",
                 config: "SimulationConfig", workload_model: "WorkloadModel",
                 generator: np.random.Generator) -> SimulationResult:
    """Run one full simulation on the compiled event loop.

    This is the whole-run driver behind ``DVSSimulator.run`` (``fast_path=True``)
    — exposed at module level so the batched engine of
    :mod:`repro.runtime.batched` can fall back to it per work unit without
    importing the simulator (which imports this module).
    """
    compiled = CompiledSchedule(schedule, processor)
    runner = CompiledRunner(compiled, processor, policy, config)
    hyperperiod = compiled.hyperperiod
    n_hyperperiods = config.n_hyperperiods

    # Arrival jitter first (one vectorized draw, mirroring the reference
    # path's stream order), then one batched workload draw for the whole run:
    # row i holds hyperperiod i's actual cycles, consumed from the generator
    # in exactly the order the reference path's per-job scalar draws would be.
    offsets = None
    if config.arrivals is not None:
        offsets = config.arrivals.sample_offsets(generator, compiled.instances, n_hyperperiods)
    samples = workload_model.sample_batch(generator, compiled.tasks, n_hyperperiods)

    # One internal trace serves both the event stream and (as a projection)
    # the timeline; with neither requested, no event objects are allocated.
    trace = EventTrace() if (config.trace or config.record_timeline) else None
    energy_per_hyperperiod: List[float] = []
    energy_by_task: Dict[str, float] = {}
    misses: List[DeadlineMiss] = []
    transition_energy_total = 0.0

    policy.on_simulation_start(schedule, processor)
    for hp_index in range(n_hyperperiods):
        offset = hp_index * hyperperiod
        policy.on_hyperperiod_start(hp_index, offset)
        if trace is not None:
            trace.append(HyperperiodReset(time=offset, hyperperiod=hp_index))
        runner.reset_hyperperiod(samples[hp_index])
        hp_energy, hp_transition_energy = runner.run_hyperperiod(
            offset, hp_index, energy_by_task, trace, misses,
            offsets[hp_index].tolist() if offsets is not None else None,
        )
        energy_per_hyperperiod.append(hp_energy)
        transition_energy_total += hp_transition_energy

    timeline = trace.to_timeline() if config.record_timeline else None
    return SimulationResult(
        method=schedule.method,
        policy=policy.name,
        n_hyperperiods=n_hyperperiods,
        total_energy=float(sum(energy_per_hyperperiod)),
        energy_per_hyperperiod=energy_per_hyperperiod,
        transition_energy=transition_energy_total,
        energy_by_task=energy_by_task,
        deadline_misses=misses,
        jobs_completed=compiled.n_jobs * n_hyperperiods,
        timeline=timeline,
        trace=trace if config.trace else None,
    )
