"""Online speed-selection (slack-reclamation) policies.

The static schedule fixes, for every sub-instance, a planned end-time and a
worst-case budget.  At runtime the dispatcher repeatedly asks the active
policy which clock frequency to use for the job that is about to (re)start
executing.  Three policies are provided:

* :class:`GreedySlackPolicy` — the paper's policy: run just fast enough for
  the *remaining worst-case budget of the current sub-instance* to finish by
  its planned end-time.  Any slack inherited from early completions
  automatically lowers the speed because the start time moved earlier.
* :class:`NoReclamationPolicy` — ignore dynamic slack: always run at the speed
  the static schedule planned for the worst case.  This isolates the benefit
  of the *static* schedule from the benefit of reclamation.
* :class:`ProportionalSlackPolicy` — a whole-job variant that spreads the
  remaining worst-case work of the job until the *job* deadline instead of the
  sub-instance end-time.  More aggressive than greedy; it may miss deadlines
  for lower-priority jobs and is included as an ablation point only.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..power.processor import ProcessorModel

__all__ = [
    "SpeedRequest",
    "SlackPolicy",
    "GreedySlackPolicy",
    "NoReclamationPolicy",
    "ProportionalSlackPolicy",
    "get_slack_policy",
]


@dataclass(frozen=True)
class SpeedRequest:
    """Everything a policy may look at when choosing a frequency.

    Attributes
    ----------
    time_now:
        Current simulation time (absolute).
    end_time:
        Planned end-time of the current sub-instance (absolute).
    wc_remaining:
        Worst-case cycles still budgeted to the current sub-instance.
    planned_frequency:
        Frequency the static schedule planned for this sub-instance assuming
        the worst case and no dynamic slack.
    job_wc_remaining:
        Worst-case cycles remaining over the *whole job* (current plus future
        sub-instances).
    job_deadline:
        Absolute deadline of the job.
    """

    time_now: float
    end_time: float
    wc_remaining: float
    planned_frequency: float
    job_wc_remaining: float
    job_deadline: float


class SlackPolicy(ABC):
    """Base class for online speed-selection policies."""

    #: short name used in experiment reports
    name: str = "abstract"

    @abstractmethod
    def frequency(self, processor: ProcessorModel, request: SpeedRequest) -> float:
        """Return the clock frequency to use, already clipped to the processor range."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class GreedySlackPolicy(SlackPolicy):
    """The paper's greedy slack reclamation (stretch to the sub-instance end-time)."""

    name = "greedy"

    def frequency(self, processor: ProcessorModel, request: SpeedRequest) -> float:
        if request.wc_remaining <= 0:
            return processor.fmin
        available = request.end_time - request.time_now
        if available <= 0:
            return processor.fmax
        return processor.clip_frequency(request.wc_remaining / available)


class NoReclamationPolicy(SlackPolicy):
    """Always run at the statically planned worst-case speed (no dynamic slack use)."""

    name = "static"

    def frequency(self, processor: ProcessorModel, request: SpeedRequest) -> float:
        return processor.clip_frequency(request.planned_frequency)


class ProportionalSlackPolicy(SlackPolicy):
    """Stretch the job's remaining worst-case work until the job deadline.

    Unlike the greedy policy this ignores the sub-instance structure, so it
    does not inherit the worst-case guarantee: a job slowed down this far may
    push later (lower-priority) work past its deadline.  Deadline misses are
    recorded by the simulator rather than prevented.
    """

    name = "proportional"

    def frequency(self, processor: ProcessorModel, request: SpeedRequest) -> float:
        if request.job_wc_remaining <= 0:
            return processor.fmin
        available = request.job_deadline - request.time_now
        if available <= 0:
            return processor.fmax
        return processor.clip_frequency(request.job_wc_remaining / available)


_POLICIES = {
    GreedySlackPolicy.name: GreedySlackPolicy,
    NoReclamationPolicy.name: NoReclamationPolicy,
    ProportionalSlackPolicy.name: ProportionalSlackPolicy,
}


def get_slack_policy(name: str) -> SlackPolicy:
    """Instantiate a policy by name (``"greedy"``, ``"static"``, ``"proportional"``)."""
    try:
        return _POLICIES[name.lower()]()
    except KeyError:
        raise ValueError(f"unknown slack policy {name!r}; known: {sorted(_POLICIES)}") from None
