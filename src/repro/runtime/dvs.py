"""Backwards-compatible re-exports of the online DVS policy layer.

The policy protocol and its implementations moved to
:mod:`repro.runtime.policies` when the layer grew lifecycle hooks and the
look-ahead variant; this module keeps the seed-era import path
(``repro.runtime.dvs``) working.  Importing it emits a
:class:`DeprecationWarning`; new code should import from
:mod:`repro.runtime.policies` (or :mod:`repro.runtime`).  The re-export list
is pinned to ``policies.__all__`` by ``tests/runtime/test_dvs.py``.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.runtime.dvs is a backwards-compatibility shim; import the online "
    "DVS policy layer from repro.runtime.policies (or repro.runtime) instead",
    DeprecationWarning,
    stacklevel=2,
)

from .policies import (  # noqa: E402  (the warning must fire before the re-exports)
    DVSPolicy,
    GreedySlackPolicy,
    LookaheadSlackPolicy,
    NoReclamationPolicy,
    ProportionalSlackPolicy,
    SlackPolicy,
    SpeedRequest,
    StaticReplayPolicy,
    available_policies,
    get_policy,
    get_slack_policy,
)

__all__ = [
    "SpeedRequest",
    "DVSPolicy",
    "SlackPolicy",
    "StaticReplayPolicy",
    "NoReclamationPolicy",
    "GreedySlackPolicy",
    "LookaheadSlackPolicy",
    "ProportionalSlackPolicy",
    "available_policies",
    "get_policy",
    "get_slack_policy",
]
