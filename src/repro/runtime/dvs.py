"""Backwards-compatible re-exports of the online DVS policy layer.

The policy protocol and its implementations moved to
:mod:`repro.runtime.policies` when the layer grew lifecycle hooks and the
look-ahead variant; this module keeps the seed-era import path
(``repro.runtime.dvs``) working.  New code should import from
:mod:`repro.runtime.policies` (or :mod:`repro.runtime`).
"""

from __future__ import annotations

from .policies import (
    DVSPolicy,
    GreedySlackPolicy,
    LookaheadSlackPolicy,
    NoReclamationPolicy,
    ProportionalSlackPolicy,
    SlackPolicy,
    SpeedRequest,
    StaticReplayPolicy,
    available_policies,
    get_policy,
    get_slack_policy,
)

__all__ = [
    "SpeedRequest",
    "DVSPolicy",
    "SlackPolicy",
    "StaticReplayPolicy",
    "NoReclamationPolicy",
    "GreedySlackPolicy",
    "LookaheadSlackPolicy",
    "ProportionalSlackPolicy",
    "available_policies",
    "get_policy",
    "get_slack_policy",
]
