"""Multicore runtime: simulate a partitioned plan, one compiled runner per core.

Partitioned scheduling keeps cores independent at runtime — no migration, no
shared ready queue — so the multicore simulation is ``m`` single-core
simulations over a common wall-clock horizon plus aggregation.
:class:`MulticoreRunner` drives one :class:`~repro.runtime.compiled.CompiledRunner`
per populated core (through :class:`~repro.runtime.simulator.DVSSimulator`'s
fast path; ``SimulationConfig(fast_path=False)`` pins every core to the
reference loop) and collects the per-core
:class:`~repro.runtime.results.SimulationResult` records into a
:class:`MulticoreResult`.

Two aggregation subtleties:

* **Common horizon.**  A core's own hyperperiod is the LCM of *its* task
  periods, which divides — but may be shorter than — the global hyperperiod.
  Each core therefore simulates ``n_hyperperiods × (H_global / H_core)``
  of its own hyperperiods, so every core covers exactly
  ``n_hyperperiods × H_global`` of wall-clock time and the per-core energies
  are directly summable.
* **Determinism.**  Each core draws its workload from its own generator,
  derived from ``(seed, core_index, SIMULATION_STREAM)`` with the experiment
  harness's explicit seed derivation — results are independent of the order
  cores are simulated in, and a one-core run consumes exactly the stream a
  single-core :class:`DVSSimulator` run with ``derive_rng(seed, 0,
  SIMULATION_STREAM)`` would, which is what makes the ``m=1`` equivalence
  test bitwise (see ``tests/runtime/test_multicore_runner.py``).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, TYPE_CHECKING, Union

import numpy as np

from ..core.errors import SimulationError
from ..power.processor import ProcessorModel
from ..workloads.distributions import NormalWorkload, WorkloadModel
from .policies import DVSPolicy, get_policy
from .results import DeadlineMiss, SimulationResult
from .simulator import DVSSimulator, SimulationConfig

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..allocation.multicore import MulticorePlan

__all__ = ["MulticoreResult", "MulticoreRunner"]


@dataclass
class MulticoreResult:
    """Aggregate outcome of simulating a partitioned plan on ``m`` cores.

    ``core_results[k]`` is core ``k``'s :class:`SimulationResult` (``None``
    for idle cores).  Energies are directly summable because every core was
    simulated over the same wall-clock horizon
    (``n_hyperperiods`` global hyperperiods).
    """

    method: str
    policy: str
    partitioner: str
    n_cores: int
    n_hyperperiods: int
    hyperperiod: float
    core_results: List[Optional[SimulationResult]]
    #: Worst-case utilisation of every core at maximum frequency.
    core_utilizations: List[float] = field(default_factory=list)
    #: Average-case (ACEC) utilisation of every core at maximum frequency.
    core_average_utilizations: List[float] = field(default_factory=list)
    #: Task name → core index.
    assignment: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def total_energy(self) -> float:
        return float(sum(result.total_energy
                         for result in self.core_results if result is not None))

    @property
    def mean_energy_per_hyperperiod(self) -> float:
        """Mean total (all-cores) energy per *global* hyperperiod."""
        if self.n_hyperperiods <= 0:
            return 0.0
        return self.total_energy / self.n_hyperperiods

    @property
    def transition_energy(self) -> float:
        return float(sum(result.transition_energy
                         for result in self.core_results if result is not None))

    @property
    def energy_by_core(self) -> List[float]:
        return [0.0 if result is None else result.total_energy
                for result in self.core_results]

    @property
    def core_slacks(self) -> List[float]:
        """Static slack of every core: ``1 − worst-case utilisation``."""
        return [1.0 - utilization for utilization in self.core_utilizations]

    @property
    def deadline_misses(self) -> List[DeadlineMiss]:
        misses: List[DeadlineMiss] = []
        for result in self.core_results:
            if result is not None:
                misses.extend(result.deadline_misses)
        return misses

    @property
    def miss_count(self) -> int:
        return sum(result.miss_count
                   for result in self.core_results if result is not None)

    @property
    def met_all_deadlines(self) -> bool:
        return self.miss_count == 0

    @property
    def jobs_completed(self) -> int:
        return sum(result.jobs_completed
                   for result in self.core_results if result is not None)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.method}/{self.policy} on {self.n_cores} cores ({self.partitioner}): "
            f"{self.n_hyperperiods} hyperperiods, "
            f"mean energy {self.mean_energy_per_hyperperiod:.4g}, "
            f"misses {self.miss_count}, jobs {self.jobs_completed}"
        )


@dataclass
class MulticoreRunner:
    """Simulate a :class:`~repro.allocation.multicore.MulticorePlan`.

    The ``policy`` may be a registry name or a :class:`DVSPolicy` instance;
    every core receives its own (deep-copied) policy object so stateful
    policies cannot leak runtime history across cores.
    ``config.n_hyperperiods`` counts *global* hyperperiods; the per-core
    repeat factor is derived from the plan.
    """

    processor: ProcessorModel
    policy: Union[DVSPolicy, str] = "greedy"
    config: SimulationConfig = field(default_factory=SimulationConfig)

    def run(self, plan: "MulticorePlan", workload: Optional[WorkloadModel] = None,
            seed: Optional[int] = None) -> MulticoreResult:
        """Simulate every populated core of ``plan`` and aggregate the results.

        ``seed`` is the root of the per-core generator derivation; ``None``
        falls back to ``config.seed`` (and to fresh OS entropy if that is
        ``None`` too, like the single-core simulator).
        """
        from ..experiments.seeding import SIMULATION_STREAM, derive_rng

        workload_model = workload if workload is not None else NormalWorkload()
        root_seed = seed if seed is not None else self.config.seed
        core_results: List[Optional[SimulationResult]] = [None] * plan.n_cores
        for core in plan.partition.used_cores():
            schedule = plan.schedules[core]
            repeats = plan.hyperperiods_per_frame(core)
            core_config = replace(
                self.config,
                n_hyperperiods=self.config.n_hyperperiods * repeats,
                seed=None,
            )
            simulator = DVSSimulator(
                self.processor,
                policy=self._core_policy(),
                config=core_config,
            )
            if root_seed is None:
                rng = np.random.default_rng()
            else:
                rng = derive_rng(root_seed, core, SIMULATION_STREAM)
            core_results[core] = simulator.run(schedule, workload_model, rng)
        return MulticoreResult(
            method=plan.method,
            policy=self._policy_name(),
            partitioner=plan.partition.partitioner,
            n_cores=plan.n_cores,
            n_hyperperiods=self.config.n_hyperperiods,
            hyperperiod=plan.hyperperiod,
            core_results=core_results,
            core_utilizations=plan.partition.utilizations(self.processor),
            core_average_utilizations=plan.partition.average_utilizations(self.processor),
            assignment=plan.partition.assignment,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _core_policy(self) -> DVSPolicy:
        if isinstance(self.policy, str):
            return get_policy(self.policy)
        if not isinstance(self.policy, DVSPolicy):
            raise SimulationError(f"policy must be a DVSPolicy or a name, got {self.policy!r}")
        return copy.deepcopy(self.policy)

    def _policy_name(self) -> str:
        if isinstance(self.policy, str):
            return self.policy
        return self.policy.name
