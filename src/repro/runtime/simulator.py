"""Discrete-event simulator of the frame-based preemptive DVS system.

The simulator executes a :class:`~repro.offline.schedule.StaticSchedule` for a
number of hyperperiods.  In every hyperperiod each job draws its *actual*
execution cycles from a workload model (the paper uses a normal distribution
truncated to [BCEC, WCEC]); the dispatcher is plain fixed-priority preemptive;
the speed of the running job is chosen by a pluggable
:class:`~repro.runtime.policies.DVSPolicy` from the static end-times — exactly
the runtime scheme of the paper.  Policies plug in without touching the event
loop: the loop only ever calls the :class:`~repro.runtime.policies.DVSPolicy`
interface (one speed query per dispatch plus the lifecycle hooks).

The reported "runtime energy consumption" (total and per hyperperiod) is the
quantity the paper's Figure 6 compares between ACS and WCS schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.errors import DeadlineMissError, SimulationError
from ..core.task import TaskInstance
from ..offline.schedule import ScheduledSubInstance, StaticSchedule
from ..power.processor import ProcessorModel
from ..power.transition import TransitionModel
from ..power.voltage import VoltageLevels
from ..workloads.arrivals import ArrivalModel
from ..workloads.distributions import WorkloadModel, NormalWorkload
from .compiled import planned_frequency_array, run_compiled
from .policies import DVSPolicy, GreedySlackPolicy, SpeedRequest, get_policy
from .results import DeadlineMiss, SimulationResult
from .trace import (
    DeadlineMiss as DeadlineMissEvent,
    EventTrace,
    FrequencyChange,
    HyperperiodReset,
    JobRelease,
    Preempt,
    Resume,
    SegmentEnd,
    SegmentStart,
)

__all__ = ["SimulationConfig", "DVSSimulator"]

_EPS = 1e-9


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of a simulation run.

    Attributes
    ----------
    n_hyperperiods:
        How many hyperperiods to simulate (the paper uses 1000).
    seed:
        Seed of the workload random generator; ``None`` draws a fresh one.
    record_timeline:
        Keep every execution segment (memory-heavy; off by default).
    trace:
        Record the typed event stream of :mod:`repro.runtime.trace` on the
        result (``SimulationResult.trace``; memory-heavy, off by default).
        Tracing never changes the simulated behaviour: energies, timelines
        and RNG consumption are bitwise-identical with tracing on or off,
        and when it is off the fast path allocates no event objects at all.
        The batched engine does not trace — it falls back to the compiled
        loop per unit (see :func:`repro.runtime.batched.batch_fallback_reason`).
    arrivals:
        Optional :class:`~repro.workloads.arrivals.ArrivalModel` perturbing
        job releases (e.g. sporadic bounded jitter).  ``None`` (default) is
        the paper's strictly periodic model and consumes no randomness; a
        model draws all of a run's offsets in one vectorized call *before*
        the workload draws, keeping both scalar engines bitwise-identical.
    on_deadline_miss:
        ``"record"`` (default) or ``"raise"``.
    transition_model:
        Voltage-transition overhead model; the default is the paper's
        zero-cost assumption.  Only the *energy* overhead is charged; the
        latency is assumed hidden (see DESIGN.md).
    voltage_levels:
        When given, requested voltages are quantised to this discrete set.
    quantization:
        Quantisation policy (``"ceiling"`` keeps worst-case guarantees).
    fast_path:
        Run the compiled event loop of :mod:`repro.runtime.compiled`
        (default).  The reference loop is retained behind ``False`` for
        debugging and for the bitwise-equivalence suite; both paths produce
        identical results for identical seeds.
    batched:
        Route the run through the structure-of-arrays engine of
        :mod:`repro.runtime.batched` (takes precedence over ``fast_path``).
        A single run gains little — the engine pays off when the harness
        batches many work units into one lock-step advance — but results are
        bitwise-identical to both scalar paths either way; configurations the
        vectorized core does not cover fall back to the compiled loop per
        unit (see the module docstring of :mod:`repro.runtime.batched`).
    """

    n_hyperperiods: int = 1
    seed: Optional[int] = None
    record_timeline: bool = False
    trace: bool = False
    arrivals: Optional[ArrivalModel] = None
    on_deadline_miss: str = "record"
    transition_model: TransitionModel = field(default_factory=TransitionModel.ideal)
    voltage_levels: Optional[VoltageLevels] = None
    quantization: str = "ceiling"
    fast_path: bool = True
    batched: bool = False

    def __post_init__(self) -> None:
        if self.n_hyperperiods <= 0:
            raise SimulationError("n_hyperperiods must be positive")
        if self.on_deadline_miss not in ("record", "raise"):
            raise SimulationError("on_deadline_miss must be 'record' or 'raise'")


class _JobState:
    """Mutable per-job bookkeeping inside one hyperperiod."""

    __slots__ = (
        "instance", "entries", "release", "deadline", "priority", "final_end_time",
        "actual_remaining", "sub_index", "budget_remaining", "wc_remaining",
        "finished", "finish_time", "was_preempted",
    )

    def __init__(self, instance: TaskInstance, entries: Sequence[ScheduledSubInstance],
                 actual_cycles: float, offset: float, jitter: float = 0.0) -> None:
        self.instance = instance
        self.entries = list(entries)
        # Only the release shifts under an arrival model; the deadline, the
        # static slots and the planned end-times stay nominal (jitter eats
        # into the job's own slack).
        release = instance.release + offset
        if jitter:
            release += jitter
        self.release = release
        self.deadline = instance.deadline + offset
        self.priority = instance.priority
        # Look-ahead horizon: the job's last planned sub-instance end-time.
        self.final_end_time = (self.entries[-1].end_time + offset) if self.entries \
            else self.deadline
        self.actual_remaining = max(actual_cycles, 0.0)
        self.sub_index = 0
        self.budget_remaining = self.entries[0].wc_budget if self.entries else 0.0
        self.wc_remaining = sum(entry.wc_budget for entry in self.entries)
        self.finished = self.actual_remaining <= _EPS
        self.finish_time = self.release if self.finished else None
        self.was_preempted = False

    @property
    def sort_key(self):
        return (self.priority, self.release, self.instance.task.name, self.instance.job_index)

    def current_entry(self) -> ScheduledSubInstance:
        # Skip exhausted budgets (zero-budget sub-instances included).
        while self.sub_index < len(self.entries) - 1 and self.budget_remaining <= _EPS:
            self.sub_index += 1
            self.budget_remaining = self.entries[self.sub_index].wc_budget
        return self.entries[self.sub_index]

    def eligible_time(self, offset: float) -> float:
        """Earliest time this job may execute again.

        A sub-instance's worst-case budget only becomes available once its slot
        has started (i.e. once the higher-priority release that would have
        preempted the job in the fully preemptive schedule has occurred); a job
        that exhausted its current budget early therefore waits — lower-priority
        jobs use the processor in the meantime.  This is what preserves the
        worst-case guarantee of the static schedule.
        """
        entry = self.current_entry()
        return max(self.release, entry.sub.slot_start + offset)


@dataclass
class DVSSimulator:
    """Event-driven runtime simulator (fixed-priority preemptive + online DVS).

    The ``policy`` may be given as a :class:`~repro.runtime.policies.DVSPolicy`
    instance or as a registry name (``"static"``, ``"greedy"``, ``"lookahead"``,
    ``"proportional"``).
    """

    processor: ProcessorModel
    policy: Union[DVSPolicy, str] = field(default_factory=GreedySlackPolicy)
    config: SimulationConfig = field(default_factory=SimulationConfig)

    def __post_init__(self) -> None:
        if isinstance(self.policy, str):
            self.policy = get_policy(self.policy)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, schedule: StaticSchedule, workload: Optional[WorkloadModel] = None,
            rng: Optional[np.random.Generator] = None) -> SimulationResult:
        """Simulate ``schedule`` under ``workload`` for the configured number of hyperperiods.

        By default this executes the compiled fast path of
        :mod:`repro.runtime.compiled`; ``SimulationConfig(fast_path=False)``
        selects the reference event loop.  Both produce bitwise-identical
        results for the same generator state.
        """
        workload_model = workload if workload is not None else NormalWorkload()
        generator = rng if rng is not None else np.random.default_rng(self.config.seed)
        if self.config.batched:
            from .batched import BatchUnit, simulate_batch

            unit = BatchUnit(schedule=schedule, processor=self.processor,
                             policy=self.policy, config=self.config,
                             workload=workload_model, rng=generator)
            return simulate_batch([unit])[0]
        if self.config.fast_path:
            return self._run_compiled(schedule, workload_model, generator)
        return self._run_reference(schedule, workload_model, generator)

    # ------------------------------------------------------------------ #
    # Compiled fast path
    # ------------------------------------------------------------------ #
    def _run_compiled(self, schedule: StaticSchedule, workload_model: WorkloadModel,
                      generator: np.random.Generator) -> SimulationResult:
        return run_compiled(schedule, self.processor, self.policy, self.config,
                            workload_model, generator)

    # ------------------------------------------------------------------ #
    # Reference event loop (fast_path=False; the bitwise-equivalence oracle)
    # ------------------------------------------------------------------ #
    def _run_reference(self, schedule: StaticSchedule, workload_model: WorkloadModel,
                       generator: np.random.Generator) -> SimulationResult:
        expansion = schedule.expansion
        hyperperiod = expansion.horizon
        planned_frequencies = self._planned_frequencies(schedule)

        # The timeline is a projection of the event stream (SegmentEnd events
        # carry full segment records), so one internal trace serves both.
        trace = EventTrace() if (self.config.trace or self.config.record_timeline) else None
        energy_per_hyperperiod: List[float] = []
        energy_by_task: Dict[str, float] = {}
        misses: List[DeadlineMiss] = []
        transition_energy_total = 0.0
        jobs_completed = 0

        # Arrival jitter is drawn for the whole run in one vectorized call,
        # *before* any workload draw — the compiled path makes the identical
        # call, keeping the generator streams aligned.
        offsets = None
        if self.config.arrivals is not None:
            offsets = self.config.arrivals.sample_offsets(
                generator, expansion.instances, self.config.n_hyperperiods)

        self.policy.on_simulation_start(schedule, self.processor)
        for hp_index in range(self.config.n_hyperperiods):
            offset = hp_index * hyperperiod
            self.policy.on_hyperperiod_start(hp_index, offset)
            if trace is not None:
                trace.append(HyperperiodReset(time=offset, hyperperiod=hp_index))
            jitter = offsets[hp_index].tolist() if offsets is not None else None
            jobs = self._build_jobs(schedule, workload_model, generator, offset, jitter)
            hp_energy, hp_transition_energy = self._simulate_hyperperiod(
                jobs, offset, hyperperiod, planned_frequencies, energy_by_task,
                trace, misses, hp_index,
            )
            energy_per_hyperperiod.append(hp_energy)
            transition_energy_total += hp_transition_energy
            jobs_completed += len(jobs)

        timeline = trace.to_timeline() if self.config.record_timeline else None
        return SimulationResult(
            method=schedule.method,
            policy=self.policy.name,
            n_hyperperiods=self.config.n_hyperperiods,
            total_energy=float(sum(energy_per_hyperperiod)),
            energy_per_hyperperiod=energy_per_hyperperiod,
            transition_energy=transition_energy_total,
            energy_by_task=energy_by_task,
            deadline_misses=misses,
            jobs_completed=jobs_completed,
            timeline=timeline,
            trace=trace if self.config.trace else None,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _planned_frequencies(self, schedule: StaticSchedule) -> Dict[str, float]:
        """Static worst-case frequency of every sub-instance (for the no-reclamation policy)."""
        planned = planned_frequency_array(schedule, self.processor)
        return {
            entry.key: float(planned[index])
            for index, entry in enumerate(schedule.entries)
        }

    def _build_jobs(self, schedule: StaticSchedule, workload_model: WorkloadModel,
                    rng: np.random.Generator, offset: float,
                    jitter: Optional[List[float]] = None) -> List[_JobState]:
        jobs: List[_JobState] = []
        for index, instance in enumerate(schedule.expansion.instances):
            entries = schedule.entries_for_instance(instance)
            actual = workload_model.sample(rng, instance.task)
            actual = min(max(actual, 0.0), instance.wcec)
            jobs.append(_JobState(instance, entries, actual, offset,
                                  jitter[index] if jitter is not None else 0.0))
        return jobs

    def _simulate_hyperperiod(self, jobs: List[_JobState], offset: float, hyperperiod: float,
                              planned_frequencies: Dict[str, float],
                              energy_by_task: Dict[str, float],
                              trace: Optional[EventTrace],
                              misses: List[DeadlineMiss], hp_index: int):
        energy = 0.0
        transition_energy = 0.0
        current_voltage: Optional[float] = None
        time_now = offset
        pending = sorted(jobs, key=lambda j: j.release)
        released: List[_JobState] = []
        release_cursor = 0

        def admit_releases(up_to: float) -> None:
            nonlocal release_cursor
            while release_cursor < len(pending) and pending[release_cursor].release <= up_to + _EPS:
                job = pending[release_cursor]
                if trace is not None:
                    trace.append(JobRelease(time=job.release, task=job.instance.task.name,
                                            job_index=job.instance.job_index))
                if not job.finished:
                    released.append(job)
                release_cursor += 1

        admit_releases(time_now)
        while True:
            admit_releases(time_now)
            active = [job for job in released if not job.finished]
            if not active:
                if release_cursor >= len(pending):
                    break
                time_now = max(time_now, pending[release_cursor].release)
                admit_releases(time_now)
                continue

            eligible = [job for job in active if job.eligible_time(offset) <= time_now + _EPS]
            if not eligible:
                # Every released job is throttled until its next sub-instance
                # slot opens; jump to the earliest such moment (or release).
                wake_up = min(job.eligible_time(offset) for job in active)
                if release_cursor < len(pending):
                    wake_up = min(wake_up, pending[release_cursor].release)
                time_now = max(time_now, wake_up)
                continue

            job = min(eligible, key=lambda j: j.sort_key)
            entry = job.current_entry()
            end_time_abs = entry.end_time + offset
            request = SpeedRequest(
                time_now=time_now,
                end_time=end_time_abs,
                wc_remaining=job.budget_remaining,
                planned_frequency=planned_frequencies[entry.key],
                job_wc_remaining=job.wc_remaining,
                job_deadline=job.deadline,
                job_final_end_time=job.final_end_time,
            )
            frequency = self.policy.frequency(self.processor, request)
            voltage = self.processor.voltage_for_frequency(frequency)
            if self.config.voltage_levels is not None:
                voltage = self.config.voltage_levels.quantize(voltage, self.config.quantization)
                voltage = self.processor.clip_voltage(voltage)
            frequency = self.processor.frequency(voltage)

            # How long can this job run before something changes?
            next_release = None
            next_job: Optional[_JobState] = None
            if release_cursor < len(pending):
                next_job = pending[release_cursor]
                next_release = next_job.release
            budget_cycles = max(min(job.budget_remaining, job.actual_remaining), 0.0)
            if budget_cycles <= _EPS:
                # The current sub-instance has no usable budget; advance bookkeeping.
                if job.budget_remaining <= _EPS and job.sub_index >= len(job.entries) - 1:
                    # Budgets exhausted but cycles remain (numerical fringe): finish at fmax.
                    frequency = self.processor.fmax
                    voltage = self.processor.vmax
                    budget_cycles = job.actual_remaining
                else:
                    continue

            # The dispatch is now committed: emit its events (resume first,
            # then the speed change, then the segment itself).
            task_name = job.instance.task.name
            was_resumed = job.was_preempted
            job.was_preempted = False
            if trace is not None:
                if was_resumed:
                    trace.append(Resume(time=time_now, task=task_name,
                                        job_index=job.instance.job_index,
                                        sub_index=entry.sub.sub_index))
                if current_voltage is None or voltage != current_voltage:
                    trace.append(FrequencyChange(time=time_now, frequency=frequency,
                                                 voltage=voltage))
                trace.append(SegmentStart(time=time_now, task=task_name,
                                          job_index=job.instance.job_index,
                                          sub_index=entry.sub.sub_index,
                                          frequency=frequency, voltage=voltage))

            # Transition accounting happens only once the dispatch is known to
            # execute, at the voltage it actually executes at: a zero-budget
            # requeue switches nothing, and the fmax fringe above runs at vmax,
            # not at the pre-override policy voltage.
            if current_voltage is not None and not self.config.transition_model.is_free:
                transition_energy += self.config.transition_model.transition_energy(current_voltage, voltage)
            current_voltage = voltage

            duration_to_stop = budget_cycles / frequency
            duration = duration_to_stop
            preempted = False
            if next_release is not None and next_release - time_now < duration - _EPS:
                duration = max(next_release - time_now, 0.0)
                preempted = True

            cycles = duration * frequency
            segment_energy = self.processor.energy(cycles, voltage, job.instance.task.ceff)
            energy += segment_energy
            energy_by_task[task_name] = energy_by_task.get(task_name, 0.0) + segment_energy

            segment_start = time_now
            time_now += duration
            job.actual_remaining = max(job.actual_remaining - cycles, 0.0)
            job.budget_remaining = max(job.budget_remaining - cycles, 0.0)
            job.wc_remaining = max(job.wc_remaining - cycles, 0.0)
            if trace is not None:
                trace.append(SegmentEnd(time=time_now, task=task_name,
                                        job_index=job.instance.job_index,
                                        sub_index=entry.sub.sub_index,
                                        start=segment_start, frequency=frequency,
                                        voltage=voltage, cycles=cycles,
                                        energy=segment_energy,
                                        finished=job.actual_remaining <= _EPS))

            if job.actual_remaining <= _EPS:
                job.finished = True
                job.finish_time = time_now
                self.policy.on_job_finish(task_name, job.instance.job_index,
                                          time_now, job.deadline)
                if time_now > job.deadline + 1e-6 * max(1.0, job.deadline):
                    if trace is not None:
                        trace.append(DeadlineMissEvent(time=time_now, task=task_name,
                                                       job_index=job.instance.job_index,
                                                       deadline=job.deadline))
                    miss = DeadlineMiss(
                        task_name=task_name,
                        job_index=job.instance.job_index,
                        hyperperiod_index=hp_index,
                        deadline=job.deadline,
                        finish_time=time_now,
                    )
                    if self.config.on_deadline_miss == "raise":
                        raise DeadlineMissError(
                            f"job {job.instance.key} missed its deadline "
                            f"({time_now:.6g} > {job.deadline:.6g})",
                            task=task_name,
                            job_index=job.instance.job_index,
                            deadline=job.deadline,
                            finish_time=time_now,
                        )
                    misses.append(miss)
            if preempted:
                if not job.finished:
                    job.was_preempted = True
                    if trace is not None:
                        trace.append(Preempt(time=time_now, task=task_name,
                                             job_index=job.instance.job_index,
                                             sub_index=entry.sub.sub_index,
                                             by_task=next_job.instance.task.name,
                                             by_job_index=next_job.instance.job_index))
                # The preemptor's JobRelease is emitted *after* the Preempt.
                admit_releases(time_now)

        return energy, transition_energy
