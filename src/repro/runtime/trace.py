"""Typed event stream of the runtime simulator.

Aggregate results (total energy, miss counts) cannot distinguish two runs
that schedule *differently* but happen to conserve energy — a dispatcher bug
that reorders preemptions would sail through every energy-equivalence suite.
This module makes the simulator's behaviour itself a first-class artifact: an
ordered sequence of small frozen dataclasses describing every release,
dispatch, speed change, preemption and deadline miss.

Tracing is opt-in (``SimulationConfig(trace=True)``) and both scalar engines
— the reference event loop of :mod:`repro.runtime.simulator` and the compiled
fast path of :mod:`repro.runtime.compiled` — emit **identical** event
sequences for identical inputs; the conformance suite in
``tests/runtime/test_trace_conformance.py`` holds them to it with exact
(dataclass) equality.  When tracing is off the fast path allocates no event
objects at all, and the batched structure-of-arrays engine falls back to the
compiled runner per unit when tracing is requested (see
:func:`repro.runtime.batched.batch_fallback_reason`).

Event vocabulary (one hyperperiod's life cycle):

* :class:`HyperperiodReset` — a new hyperperiod begins.
* :class:`JobRelease` — a job's (possibly jittered) release time is reached.
* :class:`Resume` — a previously preempted job gets the processor back.
* :class:`FrequencyChange` — the executed voltage differs from the previous
  dispatch's (the first dispatch of a run always changes frequency).
* :class:`SegmentStart` / :class:`SegmentEnd` — one contiguous execution
  segment; ``SegmentEnd`` carries everything a
  :class:`~repro.core.timeline.ExecutionSegment` needs, so a full
  :class:`~repro.core.timeline.Timeline` is a *projection* of the trace
  (:meth:`EventTrace.to_timeline`).
* :class:`Preempt` — the segment was truncated by an arrival (``by_task``).
* :class:`DeadlineMiss` — a job finished after its absolute deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Dict, Iterable, Iterator, List, Mapping, Optional, Type, Union

from ..core.errors import ReproError
from ..core.timeline import ExecutionSegment, Timeline

__all__ = [
    "TraceEvent",
    "HyperperiodReset",
    "JobRelease",
    "SegmentStart",
    "SegmentEnd",
    "Preempt",
    "Resume",
    "FrequencyChange",
    "DeadlineMiss",
    "EventTrace",
    "EVENT_TYPES",
]


@dataclass(frozen=True)
class TraceEvent:
    """Base of every trace event: an absolute timestamp plus a ``kind`` tag."""

    time: float

    #: Stable serialisation tag (also the ``kind`` filter key of
    #: :meth:`EventTrace.of_kind`); class-level, never a field.
    kind: ClassVar[str] = "TraceEvent"


@dataclass(frozen=True)
class HyperperiodReset(TraceEvent):
    """A new hyperperiod starts at ``time`` (its absolute offset)."""

    hyperperiod: int

    kind: ClassVar[str] = "HyperperiodReset"


@dataclass(frozen=True)
class JobRelease(TraceEvent):
    """A job becomes available to the dispatcher (``time`` = jittered release)."""

    task: str
    job_index: int

    kind: ClassVar[str] = "JobRelease"


@dataclass(frozen=True)
class SegmentStart(TraceEvent):
    """A job is dispatched at ``frequency``/``voltage`` for one segment."""

    task: str
    job_index: int
    sub_index: int
    frequency: float
    voltage: float

    kind: ClassVar[str] = "SegmentStart"


@dataclass(frozen=True)
class SegmentEnd(TraceEvent):
    """One contiguous execution segment ended at ``time``.

    Carries the full segment record (start, speed, cycles, energy), so a
    timeline can be reconstructed from ``SegmentEnd`` events alone;
    ``finished`` tells whether the job completed with this segment.
    """

    task: str
    job_index: int
    sub_index: int
    start: float
    frequency: float
    voltage: float
    cycles: float
    energy: float
    finished: bool

    kind: ClassVar[str] = "SegmentEnd"


@dataclass(frozen=True)
class Preempt(TraceEvent):
    """The running job's segment was cut short by the arrival of ``by_task``."""

    task: str
    job_index: int
    sub_index: int
    by_task: str
    by_job_index: int

    kind: ClassVar[str] = "Preempt"


@dataclass(frozen=True)
class Resume(TraceEvent):
    """A previously preempted job gets the processor back."""

    task: str
    job_index: int
    sub_index: int

    kind: ClassVar[str] = "Resume"


@dataclass(frozen=True)
class FrequencyChange(TraceEvent):
    """The executed voltage differs from the previous dispatch's."""

    frequency: float
    voltage: float

    kind: ClassVar[str] = "FrequencyChange"


@dataclass(frozen=True)
class DeadlineMiss(TraceEvent):
    """A job finished (at ``time``) after its absolute ``deadline``."""

    task: str
    job_index: int
    deadline: float

    kind: ClassVar[str] = "DeadlineMiss"


#: Serialisation registry: ``kind`` tag → event class.
EVENT_TYPES: Dict[str, Type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        HyperperiodReset,
        JobRelease,
        SegmentStart,
        SegmentEnd,
        Preempt,
        Resume,
        FrequencyChange,
        DeadlineMiss,
    )
}


class EventTrace:
    """An ordered, append-only sequence of :class:`TraceEvent` records.

    Equality is element-wise dataclass equality, which is what the
    engine-conformance oracle compares; :meth:`to_dicts`/:meth:`from_dicts`
    round-trip the trace through plain JSON-compatible rows (used by the
    golden-trace fixtures and the result-store payloads).
    """

    __slots__ = ("events",)

    def __init__(self, events: Optional[Iterable[TraceEvent]] = None) -> None:
        self.events: List[TraceEvent] = list(events) if events is not None else []

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __getitem__(self, index):
        return self.events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventTrace):
            return NotImplemented
        return self.events == other.events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventTrace({len(self.events)} events)"

    def of_kind(self, kind: Union[str, Type[TraceEvent]]) -> List[TraceEvent]:
        """Every event whose ``kind`` matches (accepts the tag or the class)."""
        tag = kind if isinstance(kind, str) else kind.kind
        return [event for event in self.events if event.kind == tag]

    def counts(self) -> Dict[str, int]:
        """Number of events per kind, in first-occurrence order."""
        result: Dict[str, int] = {}
        for event in self.events:
            result[event.kind] = result.get(event.kind, 0) + 1
        return result

    def to_timeline(self) -> Timeline:
        """Project the trace onto a :class:`~repro.core.timeline.Timeline`.

        Every executed segment is one :class:`SegmentEnd` event carrying the
        full segment record, so this is lossless and bitwise-identical to the
        timeline the engines used to assemble inline — which is why
        ``record_timeline`` is now implemented *on top of* the event stream.
        """
        timeline = Timeline()
        for event in self.events:
            if event.kind == "SegmentEnd":
                timeline.append(ExecutionSegment(
                    task_name=event.task,
                    job_index=event.job_index,
                    sub_index=event.sub_index,
                    start=event.start,
                    end=event.time,
                    frequency=event.frequency,
                    voltage=event.voltage,
                    cycles=event.cycles,
                    energy=event.energy,
                ))
        return timeline

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dicts(self) -> List[Dict[str, object]]:
        """Plain rows (``{"kind": ..., **fields}``) for JSON serialisation."""
        rows: List[Dict[str, object]] = []
        for event in self.events:
            row: Dict[str, object] = {"kind": event.kind}
            for spec in fields(event):
                row[spec.name] = getattr(event, spec.name)
            rows.append(row)
        return rows

    @classmethod
    def from_dicts(cls, rows: Iterable[Mapping[str, object]]) -> "EventTrace":
        """Rebuild a trace serialised by :meth:`to_dicts` (strict kinds/fields)."""
        events: List[TraceEvent] = []
        for row in rows:
            data = dict(row)
            tag = data.pop("kind", None)
            event_type = EVENT_TYPES.get(tag)
            if event_type is None:
                raise ReproError(f"unknown trace event kind {tag!r}; known: {sorted(EVENT_TYPES)}")
            try:
                events.append(event_type(**data))
            except TypeError as error:
                raise ReproError(f"malformed {tag} trace event: {error}") from None
        return cls(events)
