"""Result records produced by the runtime simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..core.timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .trace import EventTrace

__all__ = ["DeadlineMiss", "SimulationResult", "improvement_percent"]


@dataclass(frozen=True)
class DeadlineMiss:
    """One job that finished after its absolute deadline."""

    task_name: str
    job_index: int
    hyperperiod_index: int
    deadline: float
    finish_time: float

    @property
    def lateness(self) -> float:
        return self.finish_time - self.deadline


@dataclass
class SimulationResult:
    """Aggregate outcome of simulating a static schedule for several hyperperiods."""

    method: str
    policy: str
    n_hyperperiods: int
    total_energy: float
    energy_per_hyperperiod: List[float]
    transition_energy: float = 0.0
    energy_by_task: Dict[str, float] = field(default_factory=dict)
    deadline_misses: List[DeadlineMiss] = field(default_factory=list)
    jobs_completed: int = 0
    timeline: Optional[Timeline] = None
    #: Typed event stream of the run (``SimulationConfig(trace=True)`` only).
    trace: Optional["EventTrace"] = None

    @property
    def mean_energy_per_hyperperiod(self) -> float:
        """Average energy per hyperperiod (the quantity compared in the paper)."""
        if not self.energy_per_hyperperiod:
            return 0.0
        return sum(self.energy_per_hyperperiod) / len(self.energy_per_hyperperiod)

    @property
    def miss_count(self) -> int:
        return len(self.deadline_misses)

    @property
    def met_all_deadlines(self) -> bool:
        return not self.deadline_misses

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.method}/{self.policy}: {self.n_hyperperiods} hyperperiods, "
            f"mean energy {self.mean_energy_per_hyperperiod:.4g}, "
            f"misses {self.miss_count}, jobs {self.jobs_completed}"
        )


def improvement_percent(baseline_energy: float, improved_energy: float) -> float:
    """Percentage energy reduction of ``improved`` relative to ``baseline``.

    Matches the paper's Y-axis: ``100 · (E_baseline − E_improved) / E_baseline``.
    """
    if baseline_energy <= 0:
        raise ValueError("baseline energy must be positive")
    return 100.0 * (baseline_energy - improved_energy) / baseline_energy
