"""Online DVS policies: the pluggable speed-selection layer of the runtime.

The static schedule fixes, for every sub-instance, a planned end-time and a
worst-case budget.  At runtime the dispatcher repeatedly asks the active
:class:`DVSPolicy` which clock frequency to use for the job that is about to
(re)start executing; the policy sees a :class:`SpeedRequest` snapshot and may
additionally keep state across calls through the lifecycle hooks
(:meth:`DVSPolicy.on_simulation_start`, :meth:`DVSPolicy.on_hyperperiod_start`,
:meth:`DVSPolicy.on_job_finish`).  The simulator's event loop never special-cases
a policy — everything a policy needs flows through this interface.

Four policies are provided:

* :class:`StaticReplayPolicy` (``"static"``) — replay the offline schedule:
  always run at the speed the static schedule planned for the worst case,
  ignoring dynamic slack.  This isolates the benefit of the *static* schedule
  from the benefit of reclamation.
* :class:`GreedySlackPolicy` (``"greedy"``) — the paper's slack reclamation:
  run just fast enough for the *remaining worst-case budget of the current
  sub-instance* to finish by its planned end-time.  Slack inherited from early
  completions automatically lowers the speed because the start time moved
  earlier.  Deadline-safe on feasible schedules.
* :class:`LookaheadSlackPolicy` (``"lookahead"``) — aggressive look-ahead:
  stretch the *whole job's* remaining worst-case work until the job's **last
  planned sub-instance end-time**.  Intermediate end-times may be overrun, so
  the worst-case guarantee for lower-priority jobs is no longer formal; in
  exchange the speed profile is flatter (convex energy favours constant
  speeds) and typically cheaper when actual workloads run below worst case.
* :class:`ProportionalSlackPolicy` (``"proportional"``) — the most aggressive
  ablation point: stretch the job's remaining worst-case work until the *job
  deadline*, ignoring the static plan entirely.  May miss deadlines for
  lower-priority jobs.

``static``/``greedy`` preserve the worst-case guarantee of the static schedule;
``lookahead``/``proportional`` trade it for energy and are included for the
actual-vs-worst-case scenario axis (the simulator records any misses).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Tuple, Type, TYPE_CHECKING

from ..power.processor import ProcessorModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..offline.schedule import StaticSchedule

__all__ = [
    "SpeedRequest",
    "DVSPolicy",
    "SlackPolicy",
    "StaticReplayPolicy",
    "NoReclamationPolicy",
    "GreedySlackPolicy",
    "LookaheadSlackPolicy",
    "ProportionalSlackPolicy",
    "available_policies",
    "get_policy",
    "get_slack_policy",
]


@dataclass(frozen=True)
class SpeedRequest:
    """Everything a policy may look at when choosing a frequency.

    Attributes
    ----------
    time_now:
        Current simulation time (absolute).
    end_time:
        Planned end-time of the current sub-instance (absolute).
    wc_remaining:
        Worst-case cycles still budgeted to the current sub-instance.
    planned_frequency:
        Frequency the static schedule planned for this sub-instance assuming
        the worst case and no dynamic slack.
    job_wc_remaining:
        Worst-case cycles remaining over the *whole job* (current plus future
        sub-instances).
    job_deadline:
        Absolute deadline of the job.
    job_final_end_time:
        Absolute planned end-time of the job's *last* sub-instance (the
        look-ahead horizon).  Defaults to ``inf`` for callers that do not
        track the full schedule; policies fall back to ``job_deadline``.
    """

    time_now: float
    end_time: float
    wc_remaining: float
    planned_frequency: float
    job_wc_remaining: float
    job_deadline: float
    job_final_end_time: float = math.inf


class DVSPolicy(ABC):
    """Base class / protocol for online speed-selection policies.

    Subclasses implement :meth:`frequency`; the lifecycle hooks are optional
    no-ops so that stateless policies stay one-liners while stateful ones
    (e.g. slack accountants) can observe the simulation without the event
    loop knowing about them.
    """

    #: short name used in experiment reports and the CLI registry
    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # Lifecycle hooks (optional)
    # ------------------------------------------------------------------ #
    def on_simulation_start(self, schedule: "StaticSchedule",
                            processor: ProcessorModel) -> None:
        """Called once before the first hyperperiod of a simulation run."""

    def on_hyperperiod_start(self, hp_index: int, offset: float) -> None:
        """Called at the start of every hyperperiod (``offset`` is absolute)."""

    def on_job_finish(self, task_name: str, job_index: int,
                      finish_time: float, deadline: float) -> None:
        """Called whenever a job completes (before deadline checking)."""

    # ------------------------------------------------------------------ #
    # Speed selection (required)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def frequency(self, processor: ProcessorModel, request: SpeedRequest) -> float:
        """Return the clock frequency to use, already clipped to the processor range."""

    def frequency_from(self, processor: ProcessorModel, time_now: float, end_time: float,
                       wc_remaining: float, planned_frequency: float,
                       job_wc_remaining: float, job_deadline: float,
                       job_final_end_time: float = math.inf) -> float:
        """Speed query on the compiled fast path (no :class:`SpeedRequest` allocation).

        The compiled event loop dispatches thousands of speed queries per
        simulation, so the built-in policies override this with the direct
        arithmetic of their :meth:`frequency` implementation.  The default
        packs the arguments into a :class:`SpeedRequest` and delegates, which
        keeps third-party subclasses that only implement :meth:`frequency`
        working unchanged on the fast path.  Overrides must return bitwise
        the same value as :meth:`frequency` on the equivalent request — the
        equivalence suite in ``tests/runtime/test_compiled_equivalence.py``
        holds both paths to that contract.
        """
        return self.frequency(processor, SpeedRequest(
            time_now=time_now,
            end_time=end_time,
            wc_remaining=wc_remaining,
            planned_frequency=planned_frequency,
            job_wc_remaining=job_wc_remaining,
            job_deadline=job_deadline,
            job_final_end_time=job_final_end_time,
        ))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


#: Backwards-compatible alias (the seed called the protocol ``SlackPolicy``).
SlackPolicy = DVSPolicy


class StaticReplayPolicy(DVSPolicy):
    """Replay the offline schedule: always run at the planned worst-case speed."""

    name = "static"

    def frequency(self, processor: ProcessorModel, request: SpeedRequest) -> float:
        return processor.clip_frequency(request.planned_frequency)

    def frequency_from(self, processor: ProcessorModel, time_now: float, end_time: float,
                       wc_remaining: float, planned_frequency: float,
                       job_wc_remaining: float, job_deadline: float,
                       job_final_end_time: float = math.inf) -> float:
        return processor.clip_frequency(planned_frequency)


#: Backwards-compatible alias (the seed's name for static replay).
NoReclamationPolicy = StaticReplayPolicy


class GreedySlackPolicy(DVSPolicy):
    """The paper's greedy slack reclamation (stretch to the sub-instance end-time)."""

    name = "greedy"

    def frequency(self, processor: ProcessorModel, request: SpeedRequest) -> float:
        if request.wc_remaining <= 0:
            return processor.fmin
        available = request.end_time - request.time_now
        if available <= 0:
            return processor.fmax
        return processor.clip_frequency(request.wc_remaining / available)

    def frequency_from(self, processor: ProcessorModel, time_now: float, end_time: float,
                       wc_remaining: float, planned_frequency: float,
                       job_wc_remaining: float, job_deadline: float,
                       job_final_end_time: float = math.inf) -> float:
        if wc_remaining <= 0:
            return processor.fmin
        available = end_time - time_now
        if available <= 0:
            return processor.fmax
        return processor.clip_frequency(wc_remaining / available)


class LookaheadSlackPolicy(DVSPolicy):
    """Stretch the job's remaining worst-case work to its last planned end-time.

    Where greedy reclamation re-plans one sub-instance at a time, this policy
    looks ahead over the job's whole remaining static plan and picks the single
    constant speed that would finish all of it exactly at the last planned
    end-time.  Because energy is convex in speed, one flat speed is never more
    expensive than the greedy speed staircase for the same work and horizon —
    but intermediate planned end-times may be overrun, so lower-priority jobs
    lose the formal worst-case guarantee (misses are recorded, not prevented).
    """

    name = "lookahead"

    def frequency(self, processor: ProcessorModel, request: SpeedRequest) -> float:
        if request.job_wc_remaining <= 0:
            return processor.fmin
        horizon = request.job_final_end_time
        if not math.isfinite(horizon):
            horizon = request.job_deadline
        available = horizon - request.time_now
        if available <= 0:
            return processor.fmax
        return processor.clip_frequency(request.job_wc_remaining / available)

    def frequency_from(self, processor: ProcessorModel, time_now: float, end_time: float,
                       wc_remaining: float, planned_frequency: float,
                       job_wc_remaining: float, job_deadline: float,
                       job_final_end_time: float = math.inf) -> float:
        if job_wc_remaining <= 0:
            return processor.fmin
        horizon = job_final_end_time
        if not math.isfinite(horizon):
            horizon = job_deadline
        available = horizon - time_now
        if available <= 0:
            return processor.fmax
        return processor.clip_frequency(job_wc_remaining / available)


class ProportionalSlackPolicy(DVSPolicy):
    """Stretch the job's remaining worst-case work until the job deadline.

    The most aggressive ablation point: it ignores the static plan entirely,
    so it does not inherit the worst-case guarantee — a job slowed down this
    far may push later (lower-priority) work past its deadline.  Deadline
    misses are recorded by the simulator rather than prevented.
    """

    name = "proportional"

    def frequency(self, processor: ProcessorModel, request: SpeedRequest) -> float:
        if request.job_wc_remaining <= 0:
            return processor.fmin
        available = request.job_deadline - request.time_now
        if available <= 0:
            return processor.fmax
        return processor.clip_frequency(request.job_wc_remaining / available)

    def frequency_from(self, processor: ProcessorModel, time_now: float, end_time: float,
                       wc_remaining: float, planned_frequency: float,
                       job_wc_remaining: float, job_deadline: float,
                       job_final_end_time: float = math.inf) -> float:
        if job_wc_remaining <= 0:
            return processor.fmin
        available = job_deadline - time_now
        if available <= 0:
            return processor.fmax
        return processor.clip_frequency(job_wc_remaining / available)


_POLICIES: Dict[str, Type[DVSPolicy]] = {
    StaticReplayPolicy.name: StaticReplayPolicy,
    GreedySlackPolicy.name: GreedySlackPolicy,
    LookaheadSlackPolicy.name: LookaheadSlackPolicy,
    ProportionalSlackPolicy.name: ProportionalSlackPolicy,
}


def available_policies() -> Tuple[str, ...]:
    """Names of all registered policies, sorted (for CLI help and validation)."""
    return tuple(sorted(_POLICIES))


def get_policy(name: str) -> DVSPolicy:
    """Instantiate a policy by registry name (``"static"``, ``"greedy"``, ...)."""
    try:
        return _POLICIES[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown DVS policy {name!r}; known: {sorted(_POLICIES)}"
        ) from None


#: Backwards-compatible alias (the seed's registry accessor).
get_slack_policy = get_policy
