"""Online DVS runtime: discrete-event simulator, slack policies, result records."""

from .dvs import (
    GreedySlackPolicy,
    NoReclamationPolicy,
    ProportionalSlackPolicy,
    SlackPolicy,
    SpeedRequest,
    get_slack_policy,
)
from .results import DeadlineMiss, SimulationResult, improvement_percent
from .simulator import DVSSimulator, SimulationConfig

__all__ = [
    "DVSSimulator",
    "SimulationConfig",
    "SimulationResult",
    "DeadlineMiss",
    "improvement_percent",
    "SlackPolicy",
    "SpeedRequest",
    "GreedySlackPolicy",
    "NoReclamationPolicy",
    "ProportionalSlackPolicy",
    "get_slack_policy",
]
