"""Online DVS runtime: discrete-event simulator, pluggable policies, result records."""

from .compiled import CompiledRunner, CompiledSchedule, planned_frequency_array
from .policies import (
    DVSPolicy,
    GreedySlackPolicy,
    LookaheadSlackPolicy,
    NoReclamationPolicy,
    ProportionalSlackPolicy,
    SlackPolicy,
    SpeedRequest,
    StaticReplayPolicy,
    available_policies,
    get_policy,
    get_slack_policy,
)
from .results import DeadlineMiss, SimulationResult, improvement_percent
from .simulator import DVSSimulator, SimulationConfig
from .multicore import MulticoreResult, MulticoreRunner
from .trace import EVENT_TYPES, EventTrace, TraceEvent

__all__ = [
    "CompiledRunner",
    "CompiledSchedule",
    "planned_frequency_array",
    "DVSSimulator",
    "SimulationConfig",
    "SimulationResult",
    "MulticoreRunner",
    "MulticoreResult",
    "DeadlineMiss",
    "improvement_percent",
    "TraceEvent",
    "EventTrace",
    "EVENT_TYPES",
    "DVSPolicy",
    "SlackPolicy",
    "SpeedRequest",
    "StaticReplayPolicy",
    "NoReclamationPolicy",
    "GreedySlackPolicy",
    "LookaheadSlackPolicy",
    "ProportionalSlackPolicy",
    "available_policies",
    "get_policy",
    "get_slack_policy",
]
