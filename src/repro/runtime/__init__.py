"""Online DVS runtime: discrete-event simulator, pluggable policies, result records."""

from .policies import (
    DVSPolicy,
    GreedySlackPolicy,
    LookaheadSlackPolicy,
    NoReclamationPolicy,
    ProportionalSlackPolicy,
    SlackPolicy,
    SpeedRequest,
    StaticReplayPolicy,
    available_policies,
    get_policy,
    get_slack_policy,
)
from .results import DeadlineMiss, SimulationResult, improvement_percent
from .simulator import DVSSimulator, SimulationConfig

__all__ = [
    "DVSSimulator",
    "SimulationConfig",
    "SimulationResult",
    "DeadlineMiss",
    "improvement_percent",
    "DVSPolicy",
    "SlackPolicy",
    "SpeedRequest",
    "StaticReplayPolicy",
    "NoReclamationPolicy",
    "GreedySlackPolicy",
    "LookaheadSlackPolicy",
    "ProportionalSlackPolicy",
    "available_policies",
    "get_policy",
    "get_slack_policy",
]
