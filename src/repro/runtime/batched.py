"""Batched structure-of-arrays simulation engine.

The compiled event loop of :mod:`repro.runtime.compiled` advances one
``(schedule, policy, generator)`` work unit at a time; a Figure-6 sweep at
paper scale runs hundreds of such units back to back, each one a scalar
Python loop.  This module advances **many units per process in lock-step**:
per-job state (``actual``, ``budget``, ``wc_remaining``, ``position``,
``finished``) lives in 2-D ``(unit, job)`` NumPy arrays padded to the widest
unit, per-unit event cursors advance under vectorized masks, and each step
dispatches one job per unit with a handful of whole-array operations instead
of one Python event loop iteration per unit.

**Determinism contract.**  For every unit the engine produces a
:class:`~repro.runtime.results.SimulationResult` that is *bitwise identical*
to the compiled path (and therefore to the reference loop) run on that unit
alone:

* workload draws go through the unit's own generator with one
  :meth:`~repro.workloads.distributions.WorkloadModel.sample_batch` call per
  unit — exactly the call the compiled path makes — so the RNG stream
  contract is preserved per unit and the harness's SeedSequence-derived
  per-unit seeds reproduce the serial results bit for bit;
* mask-based job selection picks the minimum dispatch rank over the eligible
  set, which is provably the job the compiled ready-heap pops (eligibility is
  monotone within a hyperperiod and ranks are a strict total order);
* every floating-point quantity is produced by the same IEEE-754 operations
  in the same per-unit order as the scalar loops (NumPy element-wise float64
  arithmetic is bitwise-identical to Python float arithmetic), including the
  first-touch insertion order of ``energy_by_task``.

**Fallback.**  The vectorized core covers the four built-in policies (their
arithmetic — ``static`` and ``greedy`` first and foremost, plus ``lookahead``
and ``proportional`` — is branch-free enough to express with masks), the
linear delay law, the stock :class:`~repro.power.transition.TransitionModel`
and the default ``record``/no-timeline/continuous-voltage configuration.
Arrival models (release jitter) are vectorized too: every unit's offsets are
drawn in one :meth:`~repro.workloads.arrivals.ArrivalModel.sample_offsets`
call before its workload draw — the scalar engines' exact stream order — and
jittered lanes re-derive their dispatch ranks per hyperperiod with one row
``lexsort`` (the same strict total order the compiled loop sorts by).
Anything else — subclassed policies (whose hooks and overrides must observe
the exact scalar call sequence), CMOS-law processors, discrete voltage
levels, recorded timelines, event tracing (``SimulationConfig(trace=True)``),
``on_deadline_miss="raise"`` — falls back
*per unit* to :func:`repro.runtime.compiled.run_compiled`, so a mixed batch
still returns the right result for every unit.  Policy lifecycle hooks are
not invoked from the vectorized core (the built-in policies define them as
no-ops, which is part of the gate); ``on_simulation_start`` is still called
per unit for symmetry with the scalar paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union, TYPE_CHECKING

import numpy as np

from ..offline.schedule import StaticSchedule
from ..power.processor import ProcessorModel
from ..telemetry.core import current as _telemetry
from ..power.transition import TransitionModel
from ..workloads.distributions import NormalWorkload, WorkloadModel
from .compiled import CompiledSchedule, run_compiled
from .policies import (
    DVSPolicy,
    GreedySlackPolicy,
    LookaheadSlackPolicy,
    ProportionalSlackPolicy,
    StaticReplayPolicy,
    get_policy,
)
from .results import DeadlineMiss, SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import SimulationConfig

__all__ = ["BatchUnit", "simulate_batch", "batch_fallback_reason"]

_EPS = 1e-9

#: Rank-padding sentinel: real dispatch ranks are tiny (< n_jobs), so a
#: surviving sentinel after the masked min means "no eligible job".
_NO_RANK = np.int64(2**31)

#: Policy types the vectorized core reproduces exactly (checked by *exact*
#: type: a subclass may override hooks or arithmetic and must take the
#: compiled path, which honours the full scalar call sequence).
_POLICY_IDS = {
    StaticReplayPolicy: 0,
    GreedySlackPolicy: 1,
    LookaheadSlackPolicy: 2,
    ProportionalSlackPolicy: 3,
}


@dataclass
class BatchUnit:
    """One simulation work unit of a batch.

    ``rng`` must be positioned exactly where the scalar path's generator
    would be (the harness passes ``np.random.default_rng(seed)`` with the
    unit's own derived seed); ``workload`` defaults to the paper's
    :class:`~repro.workloads.distributions.NormalWorkload`.
    """

    schedule: StaticSchedule
    processor: ProcessorModel
    policy: Union[DVSPolicy, str]
    config: "SimulationConfig"
    workload: Optional[WorkloadModel] = None
    rng: Optional[np.random.Generator] = None

    def resolved(self) -> "BatchUnit":
        policy = get_policy(self.policy) if isinstance(self.policy, str) else self.policy
        workload = self.workload if self.workload is not None else NormalWorkload()
        rng = self.rng if self.rng is not None else np.random.default_rng(self.config.seed)
        return BatchUnit(schedule=self.schedule, processor=self.processor, policy=policy,
                         config=self.config, workload=workload, rng=rng)


def batch_fallback_reason(unit: BatchUnit) -> Optional[str]:
    """Why ``unit`` must take the compiled fallback (``None`` = vectorizable)."""
    policy = unit.policy
    if isinstance(policy, str):
        policy = get_policy(policy)
    if type(policy) not in _POLICY_IDS:
        return f"policy type {type(policy).__name__} is not a built-in"
    config = unit.config
    if config.record_timeline:
        return "record_timeline"
    if config.trace:
        return "trace"
    if config.on_deadline_miss != "record":
        return f"on_deadline_miss={config.on_deadline_miss!r}"
    if config.voltage_levels is not None:
        return "discrete voltage levels"
    if type(config.transition_model) is not TransitionModel:
        return f"transition model type {type(config.transition_model).__name__}"
    if unit.processor.law != "linear":
        return f"processor law {unit.processor.law!r}"
    instances = unit.schedule.expansion.instances
    if not instances:
        return "empty schedule"
    if any(not unit.schedule.entries_for_instance(instance) for instance in instances):
        return "job without schedule entries"
    return None


def simulate_batch(units: Sequence[BatchUnit]) -> List[SimulationResult]:
    """Simulate every unit; bitwise-identical to running each through the compiled path."""
    telemetry = _telemetry()
    resolved = [unit.resolved() for unit in units]
    results: List[Optional[SimulationResult]] = [None] * len(resolved)
    vectorized: List[int] = []
    for index, unit in enumerate(resolved):
        reason = batch_fallback_reason(unit)
        if reason is None:
            vectorized.append(index)
        else:
            telemetry.count("sim.batch_fallback." + reason)
            with telemetry.span("sim.fallback_unit"):
                results[index] = run_compiled(unit.schedule, unit.processor, unit.policy,
                                              unit.config, unit.workload, unit.rng)
    if vectorized:
        telemetry.count("sim.batched_units", len(vectorized))
        telemetry.observe("sim.soa_width", float(len(vectorized)))
        with telemetry.span("sim.batch"):
            engine = _SoAEngine([resolved[index] for index in vectorized])
            for index, result in zip(vectorized, engine.run()):
                results[index] = result
    return results  # type: ignore[return-value]


class _SoAEngine:
    """Lock-step structure-of-arrays event loop over vectorizable units.

    Shapes: ``U`` units, ``J`` = widest job count, ``E`` = widest per-job
    entry count, ``T`` = widest task count.  Padding jobs are permanently
    ``finished``; padding entries are never addressed because ``position``
    stays within each job's real entry range.
    """

    #: Field order of the packed per-(unit, job) hot state, axis 2 of
    #: ``jobpack``.  The first three columns are the ones ``_execute``
    #: writes back; the rest are read-only within a dispatch.
    _JOBPACK_FIELDS = ("budget", "actual", "wc_rem", "cur_end_abs",
                       "cur_planned", "dl_abs", "fin_abs", "ceff",
                       "position", "last_entry", "task_of_job")

    def _bind_jobpack_views(self) -> None:
        """(Re)bind the named 2-D attribute views into ``jobpack``."""
        for i, name in enumerate(self._JOBPACK_FIELDS):
            setattr(self, name, self.jobpack[:, :, i])

    def __init__(self, units: List[BatchUnit]) -> None:
        self.units = units
        compiled = [CompiledSchedule(unit.schedule, unit.processor) for unit in units]
        self.compiled = compiled
        U = len(units)
        J = max(c.n_jobs for c in compiled)
        E = max(max(len(b) for b in c.entry_budgets) for c in compiled)

        self.n_jobs = np.array([c.n_jobs for c in compiled], dtype=np.int64)
        self.n_hp = np.array([u.config.n_hyperperiods for u in units], dtype=np.int64)
        self.hyperperiod = np.array([c.hyperperiod for c in compiled], dtype=float)

        # Per-unit processor/transition constants (linear law only).
        self.fmax = np.array([u.processor.fmax for u in units], dtype=float)
        self.vmax = np.array([u.processor.vmax for u in units], dtype=float)
        self.vmin = np.array([u.processor.vmin for u in units], dtype=float)
        self.k = np.array([u.processor._k for u in units], dtype=float)
        # Same computation as the ``ProcessorModel.fmin`` property (vmin / k).
        self.fmin = np.array([u.processor.fmin for u in units], dtype=float)
        self.trans_free = np.array(
            [u.config.transition_model.is_free for u in units], dtype=bool)
        # transition_energy computes efficiency_loss * cdd * |dv²| with this
        # exact association (left-to-right), so the pre-multiplied constant
        # is bitwise-equivalent.
        self.trans_ec = np.array(
            [u.config.transition_model.efficiency_loss * u.config.transition_model.cdd
             for u in units], dtype=float)
        self.policy_id = np.array(
            [_POLICY_IDS[type(unit.policy)] for unit in units], dtype=np.int64)

        # The jobpack: every hot per-(unit, job) float column the dispatch
        # kernel touches, packed into one contiguous (U, J, 11) array.  The
        # named attributes below are 2-D *views* into it (rebound by
        # :meth:`_bind_jobpack_views` whenever the pack is reallocated), so
        # all bookkeeping code reads naturally while ``_execute`` pays one
        # fancy-index gather and one scatter per step instead of ~15.
        # ``position``/``last_entry``/``task_of_job`` ride along as floats
        # (small integers, exact in float64) and are cast at their few index
        # uses.
        self.jobpack = np.zeros((U, J, len(self._JOBPACK_FIELDS)), dtype=float)
        self.jobpack[:, :, self._JOBPACK_FIELDS.index("ceff")] = 1.0
        self._bind_jobpack_views()

        # Per-(unit, job) static data, padded to J columns.
        self.valid = np.zeros((U, J), dtype=bool)
        self.rel = np.zeros((U, J), dtype=float)
        self.dl = np.zeros((U, J), dtype=float)
        self.fin_end = np.zeros((U, J), dtype=float)
        self.wc_total = np.zeros((U, J), dtype=float)
        self.first_budget = np.zeros((U, J), dtype=float)
        self.wcec = np.zeros((U, J), dtype=float)
        self.rank = np.full((U, J), 2**31, dtype=np.int64)
        self.job_of_rank = np.zeros((U, J), dtype=np.int64)
        # Dispatch-rank sort keys, needed only by jittered lanes: priority
        # (+inf padding keeps padding jobs behind every real job) and the
        # rank of the unique (task name, job index) pair — an
        # order-isomorphic integer stand-in for the compiled loop's string
        # tiebreak, so one row lexsort reproduces its sort exactly.
        self.prio = np.full((U, J), np.inf, dtype=float)
        self.tiebreak = np.zeros((U, J), dtype=np.int64)

        self.entry_budget = np.zeros((U, J, E), dtype=float)
        self.entry_end = np.zeros((U, J, E), dtype=float)
        self.entry_slot = np.zeros((U, J, E), dtype=float)
        self.entry_planned = np.zeros((U, J, E), dtype=float)

        # Sorted *absolute* release times with a +inf sentinel column,
        # refilled at every hyperperiod reset: the per-unit release cursor
        # indexes this row to find the next release.  (Absolute, not
        # relative-plus-offset, because jittered releases do not decompose.)
        self.rel_sorted = np.full((U, J + 1), np.inf, dtype=float)

        self.task_names: List[List[str]] = []
        self.job_names: List[List[str]] = []
        self.job_indices: List[List[int]] = []
        n_tasks = []
        for u, c in enumerate(compiled):
            n = c.n_jobs
            self.valid[u, :n] = True
            self.rel[u, :n] = c.release_list
            self.dl[u, :n] = c.deadline_list
            self.fin_end[u, :n] = c.final_end_list
            self.wc_total[u, :n] = c.wc_total_list
            self.first_budget[u, :n] = c.first_budget_list
            self.wcec[u, :n] = c.wcecs
            self.ceff[u, :n] = c.ceffs
            self.rank[u, :n] = c.rank_of_job
            self.job_of_rank[u, :n] = c.job_of_rank
            self.prio[u, :n] = c.priorities
            order = sorted(range(n), key=lambda j: (c.task_names[j], c.job_indices[j]))
            for tb, j in enumerate(order):
                self.tiebreak[u, j] = tb
            names: List[str] = []
            index_of: Dict[str, int] = {}
            for j in range(n):
                budgets = c.entry_budgets[j]
                self.last_entry[u, j] = len(budgets) - 1
                self.entry_budget[u, j, :len(budgets)] = budgets
                self.entry_end[u, j, :len(budgets)] = c.entry_end_times[j]
                self.entry_slot[u, j, :len(budgets)] = c.entry_slot_starts[j]
                self.entry_planned[u, j, :len(budgets)] = c.entry_planned[j]
                name = c.task_names[j]
                if name not in index_of:
                    index_of[name] = len(names)
                    names.append(name)
                self.task_of_job[u, j] = index_of[name]
            self.task_names.append(names)
            self.job_names.append(list(c.task_names))
            self.job_indices.append(list(c.job_indices))
            n_tasks.append(len(names))
        T = max(n_tasks)
        self.n_tasks_arr = np.array(n_tasks, dtype=np.int64)
        self.max_entries = np.array(
            [max(len(b) for b in c.entry_budgets) for c in compiled], dtype=np.int64)

        # Whole-run workload draws, one sample_batch call per unit exactly as
        # the compiled path makes it (the bitwise RNG-stream contract), rows
        # padded to (widest horizon, J) so a hyperperiod reset is one gather.
        # Arrival jitter is drawn first, per unit, mirroring run_compiled's
        # stream order (jitter draw, then workload draw); lanes without an
        # arrival model make no draw and keep all-zero jitter rows.
        self.has_jitter = np.array(
            [unit.config.arrivals is not None for unit in units], dtype=bool)
        self.jitter_arr = np.zeros((U, int(self.n_hp.max()), J), dtype=float)
        self.samples_arr = np.zeros((U, int(self.n_hp.max()), J), dtype=float)
        for u, (unit, c) in enumerate(zip(units, compiled)):
            if unit.config.arrivals is not None:
                offs = unit.config.arrivals.sample_offsets(
                    unit.rng, c.instances, int(self.n_hp[u]))
                self.jitter_arr[u, :int(self.n_hp[u]), :c.n_jobs] = offs
            drawn = unit.workload.sample_batch(unit.rng, c.tasks, int(self.n_hp[u]))
            self.samples_arr[u, :int(self.n_hp[u]), :c.n_jobs] = drawn

        # Dynamic state.
        self.active = np.ones(U, dtype=bool)
        self.time = np.zeros(U, dtype=float)
        self.offset = np.zeros(U, dtype=float)
        self.hp_index = np.zeros(U, dtype=np.int64)
        self.cursor = np.zeros(U, dtype=np.int64)
        self.unfinished = np.zeros((U, J), dtype=bool)
        #: Jobs whose current entry budget is exhausted but whose position has
        #: not been advanced yet (maintained incrementally at dispatch/reset
        #: time so the step loop never scans all budgets).
        self.pending_advance = np.zeros((U, J), dtype=bool)
        self.rel_abs = np.zeros((U, J), dtype=float)
        self.cur_slot_abs = np.zeros((U, J), dtype=float)
        self.has_voltage = np.zeros(U, dtype=bool)
        self.cur_voltage = np.zeros(U, dtype=float)
        self.energy_hp = np.zeros(U, dtype=float)
        self.trans_hp = np.zeros(U, dtype=float)
        self.trans_total = np.zeros(U, dtype=float)
        self.task_energy = np.zeros((U, T), dtype=float)
        self.task_touched = np.zeros((U, T), dtype=bool)
        self.task_order: List[List[int]] = [[] for _ in range(U)]
        self.energy_per_hp: List[List[float]] = [[] for _ in range(U)]
        self.misses: List[List[DeadlineMiss]] = [[] for _ in range(U)]
        self.u_range = np.arange(U)

        # Voltage history only feeds transition accounting; with every model
        # free the charge is identically zero, so tracking can be skipped.
        self.track_voltage = not bool(np.all(self.trans_free))
        #: Distinct policy ids in the batch (static; recomputed on compaction).
        self.pid_list = sorted(set(self.policy_id.tolist()))
        #: Row -> original unit index; rows of exhausted units are dropped by
        #: :meth:`_compact`, their results already assembled into ``done``.
        self.slot = np.arange(U)
        self.done: List[Optional[SimulationResult]] = [None] * U
        self._want_compact = False

    # ------------------------------------------------------------------ #
    # Hyperperiod reset (mirrors CompiledRunner.reset_hyperperiod)
    # ------------------------------------------------------------------ #
    def _reset_lanes(self, lanes: np.ndarray) -> None:
        offset = self.offset
        offset[lanes] = self.hp_index[lanes] * self.hyperperiod[lanes]
        rows = self.samples_arr[lanes, self.hp_index[lanes]]
        cycles = np.minimum(np.maximum(rows, 0.0), self.wcec[lanes])
        self.actual[lanes] = cycles
        self.budget[lanes] = self.first_budget[lanes]
        self.wc_rem[lanes] = self.wc_total[lanes]
        self.position[lanes] = 0
        self.unfinished[lanes] = (cycles > _EPS) & self.valid[lanes]
        self.pending_advance[lanes] = (self.first_budget[lanes] <= _EPS) & \
            (self.last_entry[lanes] > 0)
        off = offset[lanes][:, None]
        rel_abs = self.rel[lanes] + off
        jm = self.has_jitter[lanes]
        if jm.any():
            # Release jitter, added after the offset — the compiled loop's
            # exact association (release + offset, then += jitter).  All-zero
            # jitter rows (PeriodicArrivals) are bitwise no-ops.
            jl = lanes[jm]
            rel_abs[jm] += self.jitter_arr[jl, self.hp_index[jl]]
            # Jittered releases reshuffle dispatch order across hyperperiods:
            # re-derive the rank permutation exactly as CompiledRunner sorts
            # its jobs — by (priority, absolute release, task name, job
            # index), the last two standing in as the precomputed integer
            # ``tiebreak``.  np.lexsort's primary key is the *last* one.
            order = np.lexsort(
                (self.tiebreak[jl], rel_abs[jm], self.prio[jl]), axis=-1)
            self.job_of_rank[jl] = order
            ranks = np.empty_like(order)
            np.put_along_axis(
                ranks, order,
                np.broadcast_to(np.arange(order.shape[1]), order.shape),
                axis=1)
            # Padding jobs pick up small ranks here (their +inf priority
            # sorts them last); harmless — they are never eligible, and the
            # masked rank reduction only looks at eligible jobs.
            self.rank[jl] = ranks
        self.rel_abs[lanes] = rel_abs
        # Refill the sorted-release row with *absolute* times (+inf padding;
        # the sentinel column J never needs rewriting).
        self.rel_sorted[lanes, :rel_abs.shape[1]] = np.sort(
            np.where(self.valid[lanes], rel_abs, np.inf), axis=1)
        self.dl_abs[lanes] = self.dl[lanes] + off
        self.fin_abs[lanes] = self.fin_end[lanes] + off
        self.cur_slot_abs[lanes] = self.entry_slot[lanes, :, 0] + off
        self.cur_end_abs[lanes] = self.entry_end[lanes, :, 0] + off
        self.cur_planned[lanes] = self.entry_planned[lanes, :, 0]
        self.cursor[lanes] = 0
        self.time[lanes] = offset[lanes]
        self.energy_hp[lanes] = 0.0
        self.trans_hp[lanes] = 0.0
        self.has_voltage[lanes] = False

    def _finish_hyperperiod(self, lanes: np.ndarray) -> None:
        for u in lanes:
            self.energy_per_hp[u].append(float(self.energy_hp[u]))
        # Per-hyperperiod fold in hyperperiod order, as the scalar driver does.
        self.trans_total[lanes] = self.trans_total[lanes] + self.trans_hp[lanes]
        self.hp_index[lanes] += 1
        exhausted = lanes[self.hp_index[lanes] >= self.n_hp[lanes]]
        if exhausted.size:
            # Assemble finished units' results now, while their rows are
            # still present; a later compaction may drop the rows entirely.
            for u in exhausted:
                self.done[int(self.slot[u])] = self._result(int(u))
            self.active[exhausted] = False
            remaining = int(self.active.sum())
            if remaining <= 0.75 * self.active.size and self.active.size >= 8:
                self._want_compact = True
        continuing = lanes[self.hp_index[lanes] < self.n_hp[lanes]]
        if continuing.size:
            self._reset_lanes(continuing)

    # Attributes compacted with the unit rows, grouped by shape.
    _ROW_1D = ("n_jobs", "n_hp", "hyperperiod", "fmax", "vmax", "vmin", "k",
               "fmin", "trans_free", "trans_ec", "policy_id", "active", "time",
               "offset", "hp_index", "cursor", "has_voltage", "cur_voltage",
               "energy_hp", "trans_hp", "trans_total", "slot", "max_entries",
               "n_tasks_arr", "has_jitter")
    _ROW_2D = ("valid", "rel", "dl", "fin_end", "wc_total", "first_budget",
               "wcec", "rank", "job_of_rank", "prio", "tiebreak",
               "unfinished", "pending_advance", "rel_abs", "cur_slot_abs")
    _ROW_3D = ("entry_budget", "entry_end", "entry_slot", "entry_planned")
    _ROW_LISTS = ("units", "compiled", "task_names", "job_names",
                  "job_indices", "task_order", "energy_per_hp", "misses")

    def _compact(self) -> None:
        """Drop rows of exhausted units and re-pad to the surviving widths.

        Rows finish at very different times (heterogeneous horizons), so
        without compaction every step keeps paying for the widest, longest
        unit in the original batch.  Pure row slicing — the surviving rows'
        values are untouched, so results stay bitwise identical.
        """
        keep = np.nonzero(self.active)[0]
        if keep.size == self.active.size:
            return
        # Gauge, not per-step: compaction fires once per batch of retiring
        # rows, so the observation cost stays off the hot loop.
        _telemetry().observe("sim.soa_width", float(keep.size))
        if keep.size == 0:
            self.active = self.active[:0]
            return
        J = int(self.n_jobs[keep].max())
        E = int(self.max_entries[keep].max())
        T = int(self.n_tasks_arr[keep].max())
        for name in self._ROW_1D:
            setattr(self, name, getattr(self, name)[keep])
        for name in self._ROW_2D:
            setattr(self, name, getattr(self, name)[keep][:, :J])
        self.rel_sorted = self.rel_sorted[keep][:, :J + 1]
        for name in self._ROW_3D:
            setattr(self, name, getattr(self, name)[keep][:, :J, :E])
        self.jobpack = self.jobpack[keep][:, :J]
        self._bind_jobpack_views()
        self.task_energy = self.task_energy[keep][:, :T]
        self.task_touched = self.task_touched[keep][:, :T]
        self.samples_arr = self.samples_arr[keep][:, :int(self.n_hp.max()), :J]
        self.jitter_arr = self.jitter_arr[keep][:, :int(self.n_hp.max()), :J]
        for name in self._ROW_LISTS:
            values = getattr(self, name)
            setattr(self, name, [values[index] for index in keep])
        self.u_range = np.arange(keep.size)
        self.pid_list = sorted(set(self.policy_id.tolist()))

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> List[SimulationResult]:
        for unit in self.units:
            unit.policy.on_simulation_start(unit.schedule, unit.processor)
        self._reset_lanes(self.u_range)
        with np.errstate(divide="ignore", invalid="ignore"):
            while True:
                if self._want_compact:
                    self._compact()
                    self._want_compact = False
                if not self.active.any():
                    break
                self._step()
        return list(self.done)  # type: ignore[arg-type]

    def _step(self) -> None:
        active = self.active
        t_eps = self.time + _EPS
        # Exhausted units keep an all-False ``unfinished`` row, so ``live``
        # needs no explicit ``active`` term.
        released = self.rel_abs <= t_eps[:, None]
        live = released & self.unfinished

        # Advance positions past exhausted budgets (the eligible_time /
        # current_entry side effect), to convergence.  ``pending_advance``
        # already knows every exhausted budget, so no full scan is needed.
        advance = self.pending_advance & live
        while advance.any():
            uu, jj = np.nonzero(advance)
            self.position[uu, jj] += 1.0
            pp = self.position[uu, jj].astype(np.intp)
            self.budget[uu, jj] = self.entry_budget[uu, jj, pp]
            self.cur_slot_abs[uu, jj] = self.entry_slot[uu, jj, pp] + self.offset[uu]
            self.cur_end_abs[uu, jj] = self.entry_end[uu, jj, pp] + self.offset[uu]
            self.cur_planned[uu, jj] = self.entry_planned[uu, jj, pp]
            self.pending_advance[uu, jj] = (self.budget[uu, jj] <= _EPS) & \
                (pp < self.last_entry[uu, jj])
            advance = self.pending_advance & live

        # A live job is eligible once its slot has started: live already
        # implies released, so max(release, slot_start) <= t reduces to the
        # slot comparison.
        eligible = live & (self.cur_slot_abs <= t_eps[:, None])
        # One masked reduction answers both questions at once: the minimum
        # dispatch rank over the eligible set is the ready-heap pop (ranks are
        # a per-unit permutation, so ``job_of_rank`` inverts the winner), and
        # the initial value surviving means nothing was eligible.  Min over a
        # set of distinct ints picks the same element as argmin over the
        # penalty formulation — bitwise-identical dispatch order.
        min_rank = np.min(self.rank, axis=1, initial=_NO_RANK, where=eligible)
        any_eligible = min_rank < _NO_RANK

        # Next release per unit: first sorted release strictly beyond time+eps
        # (``rel_sorted`` already holds absolute times).
        next_release = self.rel_sorted[self.u_range, self.cursor]
        behind = active & (next_release <= t_eps)
        while behind.any():
            self.cursor[behind] += 1
            next_release = self.rel_sorted[self.u_range, self.cursor]
            behind = active & (next_release <= t_eps)

        executing = active & any_eligible
        stalled = active ^ executing
        if stalled.any():
            self._resolve_stalls(stalled, live, next_release)
        if executing.any():
            lanes = np.nonzero(executing)[0]
            self._execute(lanes, self.job_of_rank[lanes, min_rank[lanes]],
                          next_release)

    def _resolve_stalls(self, stalled: np.ndarray, live: np.ndarray,
                        next_release: np.ndarray) -> None:
        # Stalled rows are few; compress to them before any (row, job) work.
        rows = np.nonzero(stalled)[0]
        live_rows = live[rows]
        any_live = live_rows.any(axis=1)
        throttled = rows[any_live]
        if throttled.size:
            # Earliest wake-up among live jobs — max(release, slot_start) —
            # capped by the next release: exactly the compiled loop's
            # throttled-heap jump.  (Masked min reduction; min is
            # order-exact, so bitwise-equal to the where/inf formulation.)
            eligible_at = np.maximum(self.rel_abs[throttled],
                                     self.cur_slot_abs[throttled])
            wake = np.min(eligible_at, axis=1, initial=np.inf,
                          where=live_rows[any_live])
            wake = np.minimum(wake, next_release[throttled])
            self.time[throttled] = np.maximum(self.time[throttled], wake)
        idle = rows[~any_live]
        if idle.size:
            release = next_release[idle]
            finite = np.isfinite(release)
            jump = idle[finite]
            if jump.size:
                self.time[jump] = np.maximum(self.time[jump], release[finite])
            done = idle[~finite]
            if done.size:
                self._finish_hyperperiod(done)

    def _execute(self, lanes: np.ndarray, sel: np.ndarray,
                 next_release: np.ndarray) -> None:
        # ``sel`` is the dispatched job per lane, already resolved in _step
        # from the masked rank reduction.  One fused gather pulls every hot
        # per-(lane, job) column out of the jobpack at once.
        pack = self.jobpack[lanes, sel]
        b_sel = pack[:, 0]
        a_sel = pack[:, 1]
        wc_sel = pack[:, 2]
        end_abs = pack[:, 3]
        planned = pack[:, 4]
        dl_abs = pack[:, 5]
        fin_abs = pack[:, 6]
        ceff_sel = pack[:, 7]
        position = pack[:, 8]
        last_entry = pack[:, 9]
        tasks = pack[:, 10].astype(np.intp)
        now = self.time[lanes]
        fmax = self.fmax[lanes]
        fmin = self.fmin[lanes]

        frequency = self._policy_frequency(
            lanes, now, end_abs, b_sel, planned, wc_sel, dl_abs, fin_abs, fmin, fmax)

        # voltage_for_frequency, linear law, branch ladder in priority order.
        vmin = self.vmin[lanes]
        vmax = self.vmax[lanes]
        voltage = np.minimum(np.maximum(frequency * self.k[lanes], vmin), vmax)
        voltage = np.where(frequency <= fmin, vmin, voltage)
        voltage = np.where(frequency >= fmax, vmax, voltage)
        voltage = np.where(frequency <= 0.0, vmin, voltage)
        frequency = voltage / self.k[lanes]

        budget_cycles = np.maximum(np.minimum(b_sel, a_sel), 0.0)
        zero = budget_cycles <= _EPS
        if zero.any():
            # After the position advance above, a zero-cycle dispatch of a
            # live job (actual > eps) implies budget <= eps at the last
            # entry: the numerical fringe, which finishes at fmax/vmax.  The
            # scalar loops' requeue branch is unreachable under the same
            # invariants; guard it rather than silently stalling the lane.
            fringe = zero & (b_sel <= _EPS) & (position >= last_entry)
            if not bool(np.all(fringe[zero])):
                raise AssertionError(
                    "batched engine: zero-budget dispatch outside the fmax fringe")
            frequency = np.where(fringe, fmax, frequency)
            voltage = np.where(fringe, vmax, voltage)
            budget_cycles = np.where(fringe, a_sel, budget_cycles)

        # Transition accounting, after the zero-budget handling (the voltage
        # the dispatch actually executes at) — same order as the fixed
        # scalar paths.  Skipped wholesale when every model is free (the
        # voltage history then feeds nothing).
        if self.track_voltage:
            charge = self.has_voltage[lanes] & ~self.trans_free[lanes]
            if charge.any():
                previous = self.cur_voltage[lanes]
                delta = np.where(voltage == previous, 0.0,
                                 self.trans_ec[lanes] * np.abs(
                                     voltage * voltage - previous * previous))
                self.trans_hp[lanes] += np.where(charge, delta, 0.0)
            self.cur_voltage[lanes] = voltage
            self.has_voltage[lanes] = True

        duration = budget_cycles / frequency
        until_release = next_release[lanes] - now
        preempt = until_release < duration - _EPS
        duration = np.where(preempt, np.maximum(until_release, 0.0), duration)

        cycles = duration * frequency
        segment = cycles * ((ceff_sel * voltage) * voltage)
        self.energy_hp[lanes] += segment
        self.time[lanes] = now + duration

        self.task_energy[lanes, tasks] += segment
        touched = self.task_touched[lanes, tasks]
        if not touched.all():
            for where in np.nonzero(~touched)[0]:
                u = lanes[where]
                t = tasks[where]
                self.task_touched[u, t] = True
                self.task_order[u].append(int(t))

        new_actual = np.maximum(a_sel - cycles, 0.0)
        new_budget = np.maximum(b_sel - cycles, 0.0)
        new_wc = np.maximum(wc_sel - cycles, 0.0)
        # One fused scatter writes the pack back: the three mutated columns
        # carry the new values, the rest rewrite their just-gathered values
        # (each (lane, sel) pair is unique, so the rewrite is a no-op).
        pack[:, 0] = new_budget
        pack[:, 1] = new_actual
        pack[:, 2] = new_wc
        self.jobpack[lanes, sel] = pack
        self.pending_advance[lanes, sel] = (new_budget <= _EPS) & \
            (position < last_entry)

        finished = new_actual <= _EPS
        if finished.any():
            self.unfinished[lanes[finished], sel[finished]] = False
            finish_time = self.time[lanes]
            missed = finished & (finish_time > dl_abs + 1e-6 * np.maximum(1.0, dl_abs))
            for where in np.nonzero(missed)[0]:
                u = int(lanes[where])
                j = int(sel[where])
                self.misses[u].append(DeadlineMiss(
                    task_name=self.job_names[u][j],
                    job_index=self.job_indices[u][j],
                    hyperperiod_index=int(self.hp_index[u]),
                    deadline=float(dl_abs[where]),
                    finish_time=float(finish_time[where]),
                ))

    def _policy_frequency(self, lanes, now, end_abs, b_sel, planned, wc_sel,
                          dl_abs, fin_abs, fmin, fmax) -> np.ndarray:
        """Vectorized ``frequency_from`` of the built-in policies."""
        if len(self.pid_list) == 1:
            # Homogeneous batch (the common sweep shape): no mask gathers.
            return self._policy_kernel(self.pid_list[0], now, end_abs, b_sel,
                                       planned, wc_sel, dl_abs, fin_abs,
                                       fmin, fmax)
        frequency = np.empty(lanes.size, dtype=float)
        policies = self.policy_id[lanes]
        for pid in self.pid_list:
            m = policies == pid
            if not m.any():
                continue
            frequency[m] = self._policy_kernel(
                pid, now[m], end_abs[m], b_sel[m], planned[m], wc_sel[m],
                dl_abs[m], fin_abs[m], fmin[m], fmax[m])
        return frequency

    @staticmethod
    def _policy_kernel(pid, now, end_abs, b_sel, planned, wc_sel,
                       dl_abs, fin_abs, fmin, fmax) -> np.ndarray:
        if pid == 0:  # static: clip_frequency(planned)
            return np.minimum(np.maximum(planned, fmin), fmax)
        if pid == 1:  # greedy: sub-instance budget over its end-time
            available = end_abs - now
            work = b_sel
        elif pid == 2:  # lookahead: job work over its final end-time
            # job_final_end_time is always finite here (the compiled
            # schedule fills it from the last entry or the deadline), so
            # the policy's isfinite fallback never triggers.
            available = fin_abs - now
            work = wc_sel
        else:  # proportional: job work over its deadline
            available = dl_abs - now
            work = wc_sel
        f = np.minimum(np.maximum(work / available, fmin), fmax)
        f = np.where(available <= 0, fmax, f)
        return np.where(work <= 0, fmin, f)

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def _result(self, u: int) -> SimulationResult:
        unit = self.units[u]
        per_hp = self.energy_per_hp[u]
        energy_by_task = {
            self.task_names[u][t]: float(self.task_energy[u, t])
            for t in self.task_order[u]
        }
        return SimulationResult(
            method=unit.schedule.method,
            policy=unit.policy.name,
            n_hyperperiods=int(self.n_hp[u]),
            total_energy=float(sum(per_hp)),
            energy_per_hyperperiod=per_hp,
            transition_energy=float(self.trans_total[u]),
            energy_by_task=energy_by_task,
            deadline_misses=self.misses[u],
            jobs_completed=int(self.n_jobs[u] * self.n_hp[u]),
            timeline=None,
        )
