"""ASCII Gantt rendering of static schedules and execution traces.

Real DVS papers communicate schedules with small Gantt charts (the paper's
Figures 1–4).  This module renders the same pictures as fixed-width text so
examples, logs and test failures can show *what the schedule looks like*
without any plotting dependency:

* :func:`render_static_schedule` — one row per task; each sub-instance is drawn
  over its slot with its planned end-time marked.
* :func:`render_timeline` — one row per task; each executed segment is drawn
  with a glyph indicating the relative speed (``░▒▓█`` from slowest to
  fastest), so preemptions and slack reclamation are visible at a glance.
* :func:`render_trace` — the same picture straight from a typed event stream
  (:class:`~repro.runtime.trace.EventTrace`): the timeline is a projection of
  the trace's ``SegmentEnd`` events, so no ad-hoc segment plumbing is needed.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.timeline import Timeline
from ..offline.schedule import StaticSchedule
from ..power.processor import ProcessorModel
from ..runtime.trace import EventTrace

__all__ = ["render_static_schedule", "render_timeline", "render_trace"]

_SPEED_GLYPHS = "░▒▓█"


def _column(time: float, start: float, end: float, width: int) -> int:
    """Map an absolute time onto a character column."""
    if end <= start:
        return 0
    fraction = (time - start) / (end - start)
    return int(round(min(max(fraction, 0.0), 1.0) * (width - 1)))


def _time_axis(start: float, end: float, width: int, label_every: int = 10) -> str:
    """A simple ruler with tick labels every ``label_every`` columns."""
    cells = [" "] * width
    column = 0
    while column < width:
        time = start + (end - start) * column / (width - 1)
        label = f"{time:g}"
        for offset, char in enumerate(label):
            if column + offset < width:
                cells[column + offset] = char
        column += label_every
    return "".join(cells)


def render_static_schedule(schedule: StaticSchedule, *, width: int = 72) -> str:
    """Render a static schedule as an ASCII Gantt chart (one row per task)."""
    if width < 20:
        raise ValueError("width must be at least 20 columns")
    horizon = schedule.expansion.horizon
    tasks = [task.name for task in schedule.expansion.taskset.sorted_by_priority()]
    label_width = max(len(name) for name in tasks) + 1
    chart_width = width - label_width

    lines: List[str] = []
    for task_name in tasks:
        cells = ["·"] * chart_width
        for entry in schedule.entries:
            if entry.sub.task.name != task_name:
                continue
            start_col = _column(entry.sub.slot_start, 0.0, horizon, chart_width)
            end_col = _column(entry.sub.slot_end, 0.0, horizon, chart_width)
            for col in range(start_col, max(end_col, start_col + 1)):
                if cells[col] == "·":
                    cells[col] = "-"
            if entry.wc_budget > 1e-9:
                end_time_col = _column(entry.end_time, 0.0, horizon, chart_width)
                cells[end_time_col] = "|"
        lines.append(task_name.ljust(label_width) + "".join(cells))
    lines.append(" " * label_width + _time_axis(0.0, horizon, chart_width))
    header = (f"static schedule '{schedule.method}' over one hyperperiod "
              f"({horizon:g} time units); '-' = slot, '|' = planned end-time")
    return "\n".join([header] + lines)


def render_timeline(timeline: Timeline, processor: Optional[ProcessorModel] = None,
                    *, width: int = 72, horizon: Optional[float] = None) -> str:
    """Render an execution trace as an ASCII Gantt chart with speed shading."""
    if width < 20:
        raise ValueError("width must be at least 20 columns")
    if len(timeline) == 0:
        return "(empty timeline)"
    start = min(segment.start for segment in timeline)
    end = horizon if horizon is not None else timeline.makespan
    task_names = sorted({segment.task_name for segment in timeline})
    label_width = max(len(name) for name in task_names) + 1
    chart_width = width - label_width
    max_frequency = (processor.fmax if processor is not None
                     else max(segment.frequency for segment in timeline))

    lines: List[str] = []
    for task_name in task_names:
        cells = [" "] * chart_width
        for segment in timeline.segments_for(task_name):
            glyph_index = min(
                int(segment.frequency / max(max_frequency, 1e-12) * len(_SPEED_GLYPHS)),
                len(_SPEED_GLYPHS) - 1,
            )
            glyph = _SPEED_GLYPHS[glyph_index]
            first = _column(segment.start, start, end, chart_width)
            last = _column(segment.end, start, end, chart_width)
            for col in range(first, max(last, first + 1)):
                cells[col] = glyph
        lines.append(task_name.ljust(label_width) + "".join(cells))
    lines.append(" " * label_width + _time_axis(start, end, chart_width))
    header = ("execution trace; shading = relative speed "
              f"({_SPEED_GLYPHS[0]} slow … {_SPEED_GLYPHS[-1]} full speed)")
    return "\n".join([header] + lines)


def render_trace(trace: EventTrace, processor: Optional[ProcessorModel] = None,
                 *, width: int = 72, horizon: Optional[float] = None) -> str:
    """Render a typed event stream as an ASCII Gantt chart.

    Every executed segment is one ``SegmentEnd`` event carrying the full
    segment record, so the chart is exactly :func:`render_timeline` applied
    to :meth:`EventTrace.to_timeline` — the events are the single source of
    truth, not a parallel record-keeping path.
    """
    return render_timeline(trace.to_timeline(), processor, width=width, horizon=horizon)
