"""JSON serialisation of task sets, static schedules and experiment results.

Long experiment sweeps are expensive to recompute, and static schedules are
the artefact a deployment would actually ship to the target (the online DVS
needs only end-times and worst-case budgets).  This module provides plain-JSON
round-trips for both, without pickling arbitrary objects:

* :func:`taskset_to_dict` / :func:`taskset_from_dict`
* :func:`schedule_to_dict` / :func:`schedule_from_dict` (reattaches to a task
  set by re-expanding the hyperperiod and matching sub-instance keys)
* :func:`simulation_result_to_dict`
* :func:`trace_to_dicts` / :func:`trace_from_dicts` (the typed event stream
  of :mod:`repro.runtime.trace`; the golden-trace fixtures under
  ``tests/fixtures/traces/`` are this row form on disk)
* :func:`comparison_result_to_dict` / :func:`sweep_result_to_dict` (the
  experiment-harness aggregates, e.g. for ``repro sweep --output``)
* :func:`scenario_result_to_dict` (the declarative scenario runner; the same
  per-unit dictionaries double as the payloads of the content-addressed
  result store, which is what makes store replays bitwise-identical)
* :func:`save_json` / :func:`load_json`
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, TYPE_CHECKING, Union

from ..analysis.preemption import expand_fully_preemptive
from ..core.errors import ReproError
from ..core.task import Task
from ..core.taskset import TaskSet
from ..offline.schedule import StaticSchedule
from ..runtime.results import SimulationResult
from ..runtime.trace import EventTrace

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a hard dependency edge
    from ..allocation.multicore import MulticorePlan
    from ..allocation.partitioners import Partition
    from ..experiments.harness import ComparisonResult
    from ..experiments.scalability import ScalabilityResult
    from ..experiments.sweep import SweepResult
    from ..runtime.multicore import MulticoreResult
    from ..scenarios.engine import ScenarioResult

__all__ = [
    "taskset_to_dict",
    "taskset_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "simulation_result_to_dict",
    "trace_to_dicts",
    "trace_from_dicts",
    "comparison_result_to_dict",
    "sweep_result_to_dict",
    "partition_to_dict",
    "multicore_plan_to_dict",
    "multicore_result_to_dict",
    "scalability_result_to_dict",
    "scenario_result_to_dict",
    "save_json",
    "load_json",
]


def taskset_to_dict(taskset: TaskSet) -> Dict:
    """Serialise a task set (tasks plus the resolved priorities)."""
    return {
        "name": taskset.name,
        "tasks": [
            {
                "name": task.name,
                "period": task.period,
                "wcec": task.wcec,
                "acec": task.acec,
                "bcec": task.bcec,
                "deadline": task.deadline,
                "ceff": task.ceff,
                "phase": task.phase,
                "priority": taskset.priority_of(task),
            }
            for task in taskset
        ],
    }


def taskset_from_dict(data: Dict) -> TaskSet:
    """Rebuild a task set serialised by :func:`taskset_to_dict`."""
    try:
        tasks = [
            Task(
                name=entry["name"],
                period=entry["period"],
                wcec=entry["wcec"],
                acec=entry.get("acec"),
                bcec=entry.get("bcec"),
                deadline=entry.get("deadline"),
                ceff=entry.get("ceff", 1.0),
                phase=entry.get("phase", 0.0),
                priority=entry.get("priority"),
            )
            for entry in data["tasks"]
        ]
    except KeyError as error:
        raise ReproError(f"task-set dictionary is missing field {error}") from None
    return TaskSet(tasks, priority_policy="explicit", name=data.get("name", "taskset"))


def schedule_to_dict(schedule: StaticSchedule) -> Dict:
    """Serialise a static schedule (what the online DVS phase needs)."""
    return {
        "method": schedule.method,
        "horizon": schedule.expansion.horizon,
        "objective_value": schedule.objective_value,
        "taskset": taskset_to_dict(schedule.expansion.taskset),
        "entries": [
            {
                "key": entry.key,
                "end_time": entry.end_time,
                "wc_budget": entry.wc_budget,
                "avg_budget": entry.avg_budget,
            }
            for entry in schedule.entries
        ],
    }


def schedule_from_dict(data: Dict) -> StaticSchedule:
    """Rebuild a static schedule serialised by :func:`schedule_to_dict`.

    The fully preemptive expansion is reconstructed from the embedded task set
    and the entries are matched by sub-instance key, so the loaded schedule is
    a first-class object (it can be validated, simulated and rendered).
    """
    taskset = taskset_from_dict(data["taskset"])
    expansion = expand_fully_preemptive(taskset, data.get("horizon"))
    by_key = {entry["key"]: entry for entry in data["entries"]}
    missing = [sub.key for sub in expansion.sub_instances if sub.key not in by_key]
    if missing:
        raise ReproError(
            f"schedule data does not cover sub-instances {missing[:5]}"
            + ("..." if len(missing) > 5 else "")
        )
    end_times = [by_key[sub.key]["end_time"] for sub in expansion.sub_instances]
    budgets = [by_key[sub.key]["wc_budget"] for sub in expansion.sub_instances]
    return StaticSchedule.from_vectors(
        expansion, end_times, budgets,
        method=data.get("method", "loaded"),
        objective_value=data.get("objective_value"),
        metadata={"loaded": True},
    )


def trace_to_dicts(trace: EventTrace) -> List[Dict]:
    """Serialise a typed event stream as plain JSON-compatible rows."""
    return trace.to_dicts()


def trace_from_dicts(rows: List[Dict]) -> EventTrace:
    """Rebuild an :class:`~repro.runtime.trace.EventTrace` from its row form."""
    return EventTrace.from_dicts(rows)


def simulation_result_to_dict(result: SimulationResult) -> Dict:
    """Serialise the aggregate outcome of a simulation run (without the timeline).

    When the run recorded the typed event stream (``SimulationConfig(trace=True)``)
    the events ride along under ``"events"``; the key is absent otherwise, so
    trace-off payloads are byte-for-byte what they always were.
    """
    data = {
        "method": result.method,
        "policy": result.policy,
        "n_hyperperiods": result.n_hyperperiods,
        "total_energy": result.total_energy,
        "mean_energy_per_hyperperiod": result.mean_energy_per_hyperperiod,
        "transition_energy": result.transition_energy,
        "energy_by_task": dict(result.energy_by_task),
        "jobs_completed": result.jobs_completed,
        "deadline_misses": [
            {
                "task": miss.task_name,
                "job_index": miss.job_index,
                "hyperperiod_index": miss.hyperperiod_index,
                "deadline": miss.deadline,
                "finish_time": miss.finish_time,
            }
            for miss in result.deadline_misses
        ],
    }
    if result.trace is not None:
        data["events"] = trace_to_dicts(result.trace)
    return data


def _method_to_dict(result: "ComparisonResult", method: str) -> Dict:
    outcome = result.outcomes[method]
    data = {
        "mean_energy_per_hyperperiod": outcome.mean_energy,
        "improvement_over_baseline_percent": result.improvement_over_baseline(method),
        "total_energy": outcome.simulation.total_energy,
        "deadline_misses": outcome.simulation.miss_count,
        "policy": outcome.simulation.policy,
    }
    if outcome.simulation.trace is not None:
        data["events"] = trace_to_dicts(outcome.simulation.trace)
    return data


def comparison_result_to_dict(result: "ComparisonResult") -> Dict:
    """Serialise one task set's scheduler comparison (per-method aggregates).

    Methods simulated with ``trace=True`` additionally carry their event
    stream under ``methods.<name>.events`` (absent otherwise — trace-off
    payloads, and therefore their store hashes, are unchanged).  The same
    non-default-only rule covers ``fallback_reasons``: the key appears
    only when a batched stage actually fell back, so the payload bytes of
    every pre-existing (and every fully-vectorized) comparison are
    untouched.
    """
    data = {
        "taskset": result.taskset_name,
        "baseline": result.baseline,
        "methods": {
            method: _method_to_dict(result, method)
            for method in result.outcomes
        },
    }
    if result.fallback_reasons:
        data["fallback_reasons"] = dict(result.fallback_reasons)
    return data


def sweep_result_to_dict(result: "SweepResult") -> Dict:
    """Serialise an aggregated sweep (configuration, aggregates, per-taskset results).

    ``elapsed_seconds`` is reported for convenience but is the only
    non-deterministic field; everything else is bitwise-stable across worker
    counts and runs.
    """
    cfg = result.config
    config: Dict = {
        "n_tasksets": cfg.n_tasksets,
        "n_tasks": cfg.n_tasks,
        "bcec_wcec_ratio": cfg.bcec_wcec_ratio,
        "target_utilization": cfg.target_utilization,
        "n_hyperperiods": cfg.n_hyperperiods,
        "seed": cfg.seed,
        "policy": cfg.policy,
        "schedulers": list(cfg.schedulers),
        "baseline": cfg.baseline,
        "jobs": cfg.jobs,
    }
    # Non-default-only keys keep pre-existing sweep JSON byte-stable.
    if cfg.batched:
        config["batched"] = True
    data = {
        "config": config,
        "aggregate": {
            method: {
                "mean_energy_per_hyperperiod": result.mean_energy(method),
                "mean_improvement_over_baseline_percent": result.mean_improvement(method),
            }
            for method in result.methods()
        },
        "total_deadline_misses": result.total_misses(),
        "elapsed_seconds": result.elapsed_seconds,
        "results": [comparison_result_to_dict(r) for r in result.results],
    }
    fallback_reasons = result.fallback_summary()
    if fallback_reasons:
        data["fallback_reasons"] = fallback_reasons
    return data


def partition_to_dict(partition: "Partition") -> Dict:
    """Serialise a task-to-core assignment (what a multicore deployment ships first)."""
    return {
        "partitioner": partition.partitioner,
        "n_cores": partition.n_cores,
        "taskset": taskset_to_dict(partition.taskset),
        "assignment": partition.assignment,
        "cores": [
            None if core_set is None else [task.name for task in core_set]
            for core_set in partition.core_tasksets
        ],
    }


def multicore_plan_to_dict(plan: "MulticorePlan") -> Dict:
    """Serialise a multicore plan: the partition plus one static schedule per core."""
    return {
        "method": plan.method,
        "hyperperiod": plan.hyperperiod,
        "partition": partition_to_dict(plan.partition),
        "schedules": [
            None if schedule is None else schedule_to_dict(schedule)
            for schedule in plan.schedules
        ],
    }


def multicore_result_to_dict(result: "MulticoreResult") -> Dict:
    """Serialise a multicore simulation (aggregates plus every core's result)."""
    return {
        "method": result.method,
        "policy": result.policy,
        "partitioner": result.partitioner,
        "n_cores": result.n_cores,
        "n_hyperperiods": result.n_hyperperiods,
        "hyperperiod": result.hyperperiod,
        "total_energy": result.total_energy,
        "mean_energy_per_hyperperiod": result.mean_energy_per_hyperperiod,
        "transition_energy": result.transition_energy,
        "deadline_misses": result.miss_count,
        "jobs_completed": result.jobs_completed,
        "assignment": dict(result.assignment),
        "core_utilizations": list(result.core_utilizations),
        "core_average_utilizations": list(result.core_average_utilizations),
        "core_slacks": list(result.core_slacks),
        "cores": [
            None if core_result is None else simulation_result_to_dict(core_result)
            for core_result in result.core_results
        ],
    }


def scalability_result_to_dict(result: "ScalabilityResult") -> Dict:
    """Serialise the multicore scalability sweep (grid of (cores, partitioner) points)."""
    cfg = result.config
    return {
        "config": {
            "core_counts": list(cfg.core_counts),
            "partitioners": list(cfg.partitioners),
            "application": cfg.application,
            "method": cfg.method,
            "policy": cfg.policy,
            "bcec_wcec_ratio": cfg.bcec_wcec_ratio,
            "target_utilization": cfg.target_utilization,
            "n_hyperperiods": cfg.n_hyperperiods,
            "seed": cfg.seed,
            "gap_tasks": cfg.gap_tasks,
            "jobs": cfg.jobs,
        },
        "baseline_cores": result.baseline_cores,
        "points": [
            {
                "n_cores": point.n_cores,
                "partitioner": point.partitioner,
                "mean_energy_per_hyperperiod": point.mean_energy_per_hyperperiod,
                "total_energy": point.total_energy,
                "max_core_utilization": point.max_core_utilization,
                "used_cores": point.used_cores,
                "deadline_misses": point.deadline_misses,
                "improvement_over_single_core_percent":
                    result.improvement_over_single_core(point.n_cores, point.partitioner),
            }
            for point in result.points
        ],
        "elapsed_seconds": result.elapsed_seconds,
    }


def scenario_result_to_dict(result: "ScenarioResult") -> Dict:
    """Serialise a declarative scenario run (resolved spec, aggregates, store counters).

    ``elapsed_seconds`` is the only non-deterministic field; the point
    aggregates are computed from the store's payload form and are therefore
    bitwise-stable across reruns, worker counts and warm/cold stores.
    """
    data = {
        "scenario": result.spec.to_dict(),
        "points": [dict(point) for point in result.points],
        "computed": result.computed,
        "skipped": result.skipped,
        "elapsed_seconds": result.elapsed_seconds,
    }
    if result.fallback_reasons:
        data["fallback_reasons"] = dict(result.fallback_reasons)
    return data


def save_json(data: Dict, path: Union[str, Path]) -> Path:
    """Write a serialised dictionary to ``path`` as pretty-printed JSON."""
    target = Path(path)
    target.write_text(json.dumps(data, indent=2, sort_keys=True))
    return target


def load_json(path: Union[str, Path]) -> Dict:
    """Read a JSON file written by :func:`save_json`."""
    return json.loads(Path(path).read_text())
