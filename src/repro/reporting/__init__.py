"""Reporting helpers: ASCII Gantt charts and JSON serialisation."""

from .gantt import render_static_schedule, render_timeline, render_trace
from .serialization import (
    comparison_result_to_dict,
    load_json,
    trace_from_dicts,
    trace_to_dicts,
    multicore_plan_to_dict,
    multicore_result_to_dict,
    partition_to_dict,
    save_json,
    scalability_result_to_dict,
    schedule_from_dict,
    schedule_to_dict,
    simulation_result_to_dict,
    sweep_result_to_dict,
    taskset_from_dict,
    taskset_to_dict,
)

__all__ = [
    "render_static_schedule",
    "render_timeline",
    "render_trace",
    "trace_to_dicts",
    "trace_from_dicts",
    "taskset_to_dict",
    "taskset_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "simulation_result_to_dict",
    "comparison_result_to_dict",
    "sweep_result_to_dict",
    "partition_to_dict",
    "multicore_plan_to_dict",
    "multicore_result_to_dict",
    "scalability_result_to_dict",
    "save_json",
    "load_json",
]
