"""repro — reproduction of "Exploiting Dynamic Workload Variation in Low Energy
Preemptive Task Scheduling" (Leung, Hu, Quan — DATE 2005).

The package implements the paper's ACS offline voltage scheduler together with
every substrate it needs:

* :mod:`repro.core` — periodic task / job / sub-instance model;
* :mod:`repro.power` — DVS processor model (delay law, energy law, discrete
  levels, transition overheads);
* :mod:`repro.analysis` — schedulability analysis and the fully preemptive
  schedule expansion;
* :mod:`repro.offline` — the ACS NLP, the WCS baseline, the literal NLP
  formulation and simpler baselines;
* :mod:`repro.runtime` — the discrete-event runtime simulator with online DVS
  and slack reclamation;
* :mod:`repro.workloads` — workload distributions, random task sets and the
  CNC / GAP case studies;
* :mod:`repro.experiments` — harnesses regenerating every table and figure;
* :mod:`repro.scenarios` — the declarative scenario runner: TOML/JSON specs,
  the compiling engine and the content-addressed, resumable result store.

Quickstart::

    from repro import (Task, TaskSet, ideal_processor, ACSScheduler,
                       WCSScheduler, DVSSimulator, SimulationConfig,
                       NormalWorkload, improvement_percent)

    tasks = [Task("control", period=10, wcec=3000, acec=1500, bcec=600),
             Task("sensing", period=20, wcec=8000, acec=4400, bcec=800),
             Task("logging", period=40, wcec=9000, acec=5000, bcec=1000)]
    taskset = TaskSet(tasks)
    processor = ideal_processor()

    acs = ACSScheduler(processor).schedule(taskset)
    wcs = WCSScheduler(processor).schedule(taskset)

    simulator = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=100, seed=1))
    acs_energy = simulator.run(acs, NormalWorkload()).mean_energy_per_hyperperiod
    wcs_energy = simulator.run(wcs, NormalWorkload()).mean_energy_per_hyperperiod
    print(improvement_percent(wcs_energy, acs_energy))
"""

from .allocation import (
    MulticorePlan,
    MulticoreProblem,
    Partition,
    Partitioner,
    available_partitioners,
    get_partitioner,
    plan_multicore,
)
from .analysis import (
    FullyPreemptiveSchedule,
    breakdown_frequency,
    check_feasibility,
    expand_fully_preemptive,
    is_schedulable,
    response_times,
)
from .core import (
    ExecutionSegment,
    ReproError,
    SubInstance,
    Task,
    TaskInstance,
    TaskSet,
    Timeline,
    fill_average_workloads,
)
from .offline import (
    ACSScheduler,
    ConstantSpeedScheduler,
    LiteralNLPScheduler,
    MaxSpeedScheduler,
    SolverOptions,
    StaticSchedule,
    WCSScheduler,
    average_case_energy,
    frame_based_taskset,
    worst_case_energy,
)
from .power import (
    ProcessorModel,
    TransitionModel,
    VoltageLevels,
    cmos_processor,
    ideal_processor,
    normalized_processor,
)
from .runtime import (
    DVSPolicy,
    DVSSimulator,
    GreedySlackPolicy,
    LookaheadSlackPolicy,
    MulticoreResult,
    MulticoreRunner,
    NoReclamationPolicy,
    ProportionalSlackPolicy,
    SimulationConfig,
    SimulationResult,
    StaticReplayPolicy,
    available_policies,
    get_policy,
    improvement_percent,
)
from .scenarios import (
    ResultStore,
    ScenarioEngine,
    ScenarioLoader,
    ScenarioResult,
    ScenarioSpec,
    load_scenario,
)
from .workloads import (
    BimodalWorkload,
    FixedWorkload,
    NormalWorkload,
    RandomTaskSetConfig,
    UniformWorkload,
    cnc_taskset,
    gap_taskset,
    generate_random_taskset,
    generate_random_tasksets,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # core
    "Task",
    "TaskInstance",
    "SubInstance",
    "TaskSet",
    "Timeline",
    "ExecutionSegment",
    "ReproError",
    "fill_average_workloads",
    # analysis
    "FullyPreemptiveSchedule",
    "expand_fully_preemptive",
    "check_feasibility",
    "response_times",
    "is_schedulable",
    "breakdown_frequency",
    # allocation
    "Partition",
    "Partitioner",
    "available_partitioners",
    "get_partitioner",
    "MulticoreProblem",
    "MulticorePlan",
    "plan_multicore",
    # power
    "ProcessorModel",
    "VoltageLevels",
    "TransitionModel",
    "ideal_processor",
    "cmos_processor",
    "normalized_processor",
    # offline
    "ACSScheduler",
    "WCSScheduler",
    "LiteralNLPScheduler",
    "MaxSpeedScheduler",
    "ConstantSpeedScheduler",
    "StaticSchedule",
    "SolverOptions",
    "average_case_energy",
    "worst_case_energy",
    "frame_based_taskset",
    # runtime
    "DVSSimulator",
    "SimulationConfig",
    "SimulationResult",
    "MulticoreRunner",
    "MulticoreResult",
    "DVSPolicy",
    "StaticReplayPolicy",
    "GreedySlackPolicy",
    "LookaheadSlackPolicy",
    "NoReclamationPolicy",
    "ProportionalSlackPolicy",
    "available_policies",
    "get_policy",
    "improvement_percent",
    # scenarios
    "ScenarioSpec",
    "ScenarioLoader",
    "ScenarioEngine",
    "ScenarioResult",
    "ResultStore",
    "load_scenario",
    # workloads
    "NormalWorkload",
    "UniformWorkload",
    "FixedWorkload",
    "BimodalWorkload",
    "RandomTaskSetConfig",
    "generate_random_taskset",
    "generate_random_tasksets",
    "cnc_taskset",
    "gap_taskset",
]
