"""Blocking stdlib client for the sweep server.

``submit`` is a generator over the server's NDJSON event stream, so CLI
and test callers can render per-unit progress as it happens; ``stats`` and
``health`` are one-shot JSON GETs.  Structured server rejections (4xx/5xx
with an ``error`` event body) surface as :class:`ServerRequestError` —
callers never have to parse raw HTTP.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from ..core.errors import ReproError
from .protocol import ServerRequestError, decode_event

__all__ = ["submit", "stats", "health"]


def _http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[bytes] = None,
    timeout: Optional[float] = None,
) -> Tuple[int, Dict[str, str], Any]:
    """Issue one HTTP/1.1 request → ``(status, headers, buffered reader)``.

    The reader is the socket's file object positioned at the response body;
    the caller owns closing it (closing it closes the socket).
    """
    sock = socket.create_connection((host, port), timeout=timeout)
    try:
        payload = body or b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Content-Type: application/json\r\n"
            f"Connection: close\r\n\r\n"
        )
        sock.sendall(head.encode("latin-1") + payload)
        reader = sock.makefile("rb")
    except BaseException:
        sock.close()
        raise
    sock.close()  # the file object keeps the underlying connection alive
    try:
        status_line = reader.readline().decode("latin-1")
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ReproError(f"malformed response from {host}:{port}: {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
    except BaseException:
        reader.close()
        raise
    return status, headers, reader


def _read_error(reader, headers: Mapping[str, str]) -> Dict[str, Any]:
    length = int(headers.get("content-length", "0") or "0")
    raw = reader.read(length) if length else reader.read()
    try:
        return decode_event(raw.strip() or b'{"event": "error"}')
    except Exception:
        return {"event": "error", "code": 500, "message": raw.decode("utf-8", "replace")}


def submit(
    document: Mapping[str, Any],
    *,
    host: str,
    port: int,
    profile: Optional[str] = None,
    timeout: Optional[float] = None,
) -> Iterator[Dict[str, Any]]:
    """Submit a scenario document; yield decoded events as the server emits them.

    Raises :class:`ServerRequestError` on a non-200 response (malformed or
    invalid submissions — in which case the server scheduled zero units).
    """
    body = json.dumps({"document": dict(document), "profile": profile}).encode("utf-8")
    status, headers, reader = _http_request(host, port, "POST", "/submit", body, timeout=timeout)
    try:
        if status != 200:
            raise ServerRequestError(_read_error(reader, headers))
        for line in reader:
            line = line.strip()
            if line:
                yield decode_event(line)
    finally:
        reader.close()


def _get_json(host: str, port: int, path: str, timeout: Optional[float] = None) -> Dict[str, Any]:
    status, headers, reader = _http_request(host, port, "GET", path, timeout=timeout)
    try:
        if status != 200:
            raise ServerRequestError(_read_error(reader, headers))
        length = int(headers.get("content-length", "0") or "0")
        raw = reader.read(length) if length else reader.read()
        return decode_event(raw.strip())
    finally:
        reader.close()


def stats(host: str, port: int, timeout: Optional[float] = None) -> Dict[str, Any]:
    """The server's ``/stats`` snapshot: counters, in-flight units, drain flag."""
    return _get_json(host, port, "/stats", timeout=timeout)


def health(host: str, port: int, timeout: Optional[float] = None) -> Dict[str, Any]:
    """The server's ``/healthz`` response (raises unless it answers 200)."""
    return _get_json(host, port, "/healthz", timeout=timeout)
