"""Deterministic fault injectors for the server's worker pool (test/CI only).

A hook is selected with ``REPRO_SERVE_FAULT_HOOK=module:callable`` (see
:mod:`repro.server.pool`) and runs *inside the worker process* right before
the unit executes — so a kill here is a genuine worker death mid-unit, not
a simulation of one.  Sentinel files under ``REPRO_SERVE_FAULT_DIR`` make
each fault fire exactly once per unit key: the first attempt dies, the
retry finds the sentinel and computes normally.  That determinism is what
lets CI gate on "killed worker → retried → bitwise-identical results"
without racing a ``kill -9`` against scheduler timing.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

from ..core.errors import ReproError

__all__ = ["kill_first_attempt", "stall_first_attempt"]

#: Sentinel directory recording which (hook, key) pairs already fired.
FAULT_DIR_ENV = "REPRO_SERVE_FAULT_DIR"


def _first_attempt(key: str, kind: str) -> bool:
    root = os.environ.get(FAULT_DIR_ENV)
    if not root:
        raise ReproError(f"fault hooks need {FAULT_DIR_ENV} to point at a scratch directory")
    directory = Path(root)
    directory.mkdir(parents=True, exist_ok=True)
    sentinel = directory / f"{kind}-{key}"
    try:
        sentinel.touch(exist_ok=False)
    except FileExistsError:
        return False
    return True


def kill_first_attempt(key: str) -> None:
    """SIGKILL the worker on the first attempt at each unit (retry survives)."""
    if _first_attempt(key, "kill"):
        os.kill(os.getpid(), signal.SIGKILL)


def stall_first_attempt(key: str) -> None:
    """Hang the first attempt at each unit long enough to trip any sane timeout."""
    if _first_attempt(key, "stall"):
        time.sleep(300.0)
