"""Wire protocol of the sweep server: line-delimited JSON events over HTTP/1.1.

The server speaks a deliberately tiny, stdlib-parsable dialect:

* Requests are plain HTTP/1.1 with JSON bodies.  ``POST /submit`` carries
  ``{"document": <scenario document>, "profile": <name or null>}`` — the
  *raw* scenario document (the parsed TOML/JSON table, before profile
  merging), so validation happens exactly once, server-side, with the same
  :class:`~repro.scenarios.loader.ScenarioLoader` rules a local ``repro
  run`` applies.
* Successful submissions stream ``application/x-ndjson``: one JSON object
  per line, each tagged with an ``"event"`` kind (``accepted``, ``unit``,
  ``result``), terminated by connection close.
* Failures are structured: a 4xx/5xx status whose JSON body carries
  ``{"event": "error", "code": ..., "message": ...}`` — never a bare string,
  never a half-scheduled sweep (a spec that fails validation schedules zero
  units).

Everything here is shared by the asyncio server (:mod:`repro.server.app`)
and the blocking client (:mod:`repro.server.client`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional, Tuple

from ..core.errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServerRequestError",
    "encode_event",
    "decode_event",
    "error_event",
    "parse_submit_body",
]

#: Version of the request/event contract; servers echo it in ``accepted``
#: events so clients can detect a mismatch before trusting the stream.
PROTOCOL_VERSION = 1

#: HTTP reason phrases for the handful of statuses the server emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(ReproError):
    """A request the server rejects before scheduling any work.

    ``code`` is the HTTP-style status the response carries (400 for
    malformed or unvalidatable input, 413 for oversized bodies, 503 while
    draining); ``errors`` optionally itemises field-level problems.
    """

    def __init__(self, code: int, message: str, errors: Tuple[str, ...] = ()):
        super().__init__(message)
        self.code = code
        self.errors = tuple(errors)

    def to_event(self) -> Dict[str, Any]:
        return error_event(self.code, str(self), errors=self.errors)


class ServerRequestError(ReproError):
    """Client-side view of a structured server error response."""

    def __init__(self, event: Mapping[str, Any]):
        code = event.get("code", 500)
        message = event.get("message", "server error")
        super().__init__(f"server rejected the request ({code}): {message}")
        self.code = code
        self.event = dict(event)


def encode_event(record: Mapping[str, Any]) -> bytes:
    """One NDJSON line: canonical-ish JSON (sorted keys) plus the newline."""
    return (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")


def decode_event(line: bytes) -> Dict[str, Any]:
    record = json.loads(line.decode("utf-8"))
    if not isinstance(record, dict) or "event" not in record:
        raise ProtocolError(500, f"malformed event line: {line[:120]!r}")
    return record


def error_event(code: int, message: str, errors: Tuple[str, ...] = ()) -> Dict[str, Any]:
    event: Dict[str, Any] = {"event": "error", "code": code, "message": message}
    if errors:
        event["errors"] = list(errors)
    return event


def parse_submit_body(body: bytes) -> Tuple[Dict[str, Any], Optional[str]]:
    """Validate the shape of a ``/submit`` body → ``(document, profile)``.

    Only the *envelope* is checked here; the scenario document itself goes
    through :class:`~repro.scenarios.loader.ScenarioLoader`, whose
    ``ScenarioError`` the server maps onto a 400 response.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(400, f"request body is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(400, f"request body must be a JSON object, got {type(payload).__name__}")
    unknown = sorted(set(payload) - {"document", "profile"})
    if unknown:
        raise ProtocolError(400, f"unknown request fields {unknown}", errors=tuple(unknown))
    document = payload.get("document")
    if not isinstance(document, dict):
        raise ProtocolError(400, "request needs a 'document' object (the parsed scenario file)")
    profile = payload.get("profile")
    if profile is not None and not isinstance(profile, str):
        raise ProtocolError(400, f"'profile' must be a string or null, got {type(profile).__name__}")
    return document, profile
