"""Sweep-as-a-service: a sharded, deduplicating experiment server.

``repro serve`` exposes the scenario pipeline over a tiny HTTP/NDJSON
protocol so many concurrent clients can share one content-addressed result
store.  Work units are deduplicated three ways (completed-on-disk,
in-flight coalescing, solver-level memoisation), sharded across isolated
worker processes with per-unit timeouts and bounded retries, and drained
cleanly on SIGTERM.  See ``docs/architecture.md`` ("Sweep service").
"""

from .app import SweepServer, UnitOutcome
from .client import health, stats, submit
from .pool import InlineUnitExecutor, ProcessUnitExecutor, UnitFailure
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    ServerRequestError,
    decode_event,
    encode_event,
)

__all__ = [
    "SweepServer",
    "UnitOutcome",
    "submit",
    "stats",
    "health",
    "ProcessUnitExecutor",
    "InlineUnitExecutor",
    "UnitFailure",
    "ProtocolError",
    "ServerRequestError",
    "PROTOCOL_VERSION",
    "encode_event",
    "decode_event",
]
