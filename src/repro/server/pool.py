"""Unit executors: where the sweep server actually computes a work unit.

The server's scheduler (:mod:`repro.server.app`) is executor-agnostic; an
executor exposes one blocking call::

    run(key, unit, solve_memo_root) -> payload dict

* :class:`ProcessUnitExecutor` — the production path.  Every attempt runs
  in a **fresh worker process** talking back over a pipe, so a worker that
  dies mid-unit (OOM kill, segfault, an operator's ``kill -9``) surfaces as
  a retryable :class:`UnitFailure` instead of poisoning a shared pool, and
  a per-unit wall-clock timeout can hard-kill a runaway solve without
  leaking the slot.  Deterministic units make retry trivially safe: a
  re-run of the same unit produces the same bytes.
* :class:`InlineUnitExecutor` — in-process execution for tests and
  debugging; no isolation, no kill-tolerance, but the identical contract.

Fault injection (CI and the failure-mode tests) goes through
``REPRO_SERVE_FAULT_HOOK`` — a ``module:callable`` resolved *inside* the
worker process and called with the unit key before execution; see
:mod:`repro.server.testing` for the shipped hooks.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
from typing import Any, Callable, Dict, Optional

from ..core.errors import ReproError
from ..scenarios.engine import run_unit

__all__ = [
    "UnitFailure",
    "ProcessUnitExecutor",
    "InlineUnitExecutor",
    "resolve_fault_hook",
]

#: Environment variable naming a ``module:callable`` fault hook (test/CI only).
FAULT_HOOK_ENV = "REPRO_SERVE_FAULT_HOOK"


class UnitFailure(ReproError):
    """One failed execution attempt of a work unit.

    ``retryable`` distinguishes infrastructure failures (worker death,
    timeout — a retry can succeed) from deterministic computation errors
    (the same exception would recur, so the scheduler fails fast).
    """

    def __init__(self, message: str, *, retryable: bool):
        super().__init__(message)
        self.retryable = retryable


def resolve_fault_hook(spec: Optional[str]) -> Optional[Callable[[str], None]]:
    """Import a ``module:callable`` hook spec (``None``/empty → no hook)."""
    if not spec:
        return None
    module_name, _, attribute = spec.partition(":")
    if not module_name or not attribute:
        raise ReproError(f"fault hook {spec!r} must be 'module:callable'")
    module = importlib.import_module(module_name)
    return getattr(module, attribute)


def _worker_main(
    connection,
    key: str,
    unit: Any,
    solve_memo_root: Optional[str],
    fault_hook: Optional[str],
) -> None:
    """Worker-process entry: compute one unit, ship the payload back."""
    try:
        hook = resolve_fault_hook(fault_hook)
        if hook is not None:
            hook(key)
        payload = run_unit(unit, solve_memo_root=solve_memo_root)
    except BaseException as error:  # noqa: BLE001 - everything must cross the pipe
        try:
            connection.send(("error", f"{type(error).__name__}: {error}"))
        finally:
            connection.close()
        return
    connection.send(("ok", payload))
    connection.close()


class ProcessUnitExecutor:
    """One fresh process per execution attempt, with a hard timeout.

    ``unit_timeout`` (seconds, ``None`` = unlimited) bounds a single
    attempt; on expiry the worker is SIGKILLed and the attempt raises a
    retryable :class:`UnitFailure`.  A worker that exits without delivering
    a payload (killed, crashed) is likewise retryable; an exception raised
    *inside* the computation is not — it is deterministic and would simply
    recur.
    """

    def __init__(self, *, unit_timeout: Optional[float] = None, fault_hook: Optional[str] = None):
        self.unit_timeout = unit_timeout
        self.fault_hook = fault_hook if fault_hook is not None else os.environ.get(FAULT_HOOK_ENV)
        self._context = multiprocessing.get_context()

    def run(self, key: str, unit: Any, solve_memo_root: Optional[str] = None) -> Dict[str, Any]:
        parent_end, child_end = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_main,
            args=(child_end, key, unit, solve_memo_root, self.fault_hook),
            daemon=True,
        )
        process.start()
        child_end.close()
        try:
            if not parent_end.poll(self.unit_timeout):
                process.kill()
                process.join()
                raise UnitFailure(f"unit {key[:12]} timed out after {self.unit_timeout:g}s", retryable=True)
            try:
                status, value = parent_end.recv()
            except EOFError:
                process.join()
                raise UnitFailure(
                    f"worker for unit {key[:12]} died without a result "
                    f"(exit code {process.exitcode})",
                    retryable=True,
                ) from None
        finally:
            parent_end.close()
        process.join()
        if status == "error":
            raise UnitFailure(f"unit {key[:12]} failed: {value}", retryable=False)
        return value


class InlineUnitExecutor:
    """Run units in-process (tests/debugging); same contract, no isolation."""

    def __init__(self, *, hook: Optional[Callable[[str], None]] = None):
        self.hook = hook

    def run(self, key: str, unit: Any, solve_memo_root: Optional[str] = None) -> Dict[str, Any]:
        if self.hook is not None:
            self.hook(key)
        try:
            return run_unit(unit, solve_memo_root=solve_memo_root)
        except UnitFailure:
            raise
        except Exception as error:
            raise UnitFailure(f"unit {key[:12]} failed: {error}", retryable=False) from error
