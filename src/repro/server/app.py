"""The sweep server: shared store, three dedup layers, kill-tolerant shards.

``repro serve`` turns the scenario pipeline into traffic-serving
infrastructure: many concurrent clients submit scenario documents, the
server compiles each through the one shared :class:`ScenarioEngine`, and
every work unit passes three deduplication layers before any CPU is spent:

1. **completed-on-disk** — the content-addressed :class:`ResultStore` hash
   (a unit any past run computed is replayed, never recomputed);
2. **in-flight** — a unit-signature registry mapping keys to pending
   futures, so N requests racing on the same unit coalesce onto one
   computation and all stream its result;
3. **solver-level** — worker processes share the persistent
   :class:`~repro.offline.batched_solver.SolveMemo` under the store root,
   so even *distinct* units whose NLP solves coincide pay once.

What survives dedup is sharded across a bounded pool of worker processes
(:class:`~repro.server.pool.ProcessUnitExecutor`), each attempt isolated
so a worker killed mid-unit is retried with exponential backoff instead of
failing the request.  Requests stream per-unit NDJSON progress events, the
server's telemetry counters (``serve.requests``, ``serve.units.*``) are
exported at ``GET /stats``, and SIGTERM drains in-flight requests before
exit — a warm store is never left with orphaned work (and every advisory
claim is released).
"""

from __future__ import annotations

import asyncio
import os
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..scenarios.engine import ScenarioEngine, ScenarioResult
from ..scenarios.loader import ScenarioLoader
from ..scenarios.spec import ScenarioError
from ..scenarios.store import ResultStore
from ..telemetry.core import Telemetry
from .pool import ProcessUnitExecutor, UnitFailure
from .protocol import (
    PROTOCOL_VERSION,
    REASONS,
    ProtocolError,
    encode_event,
    error_event,
    parse_submit_body,
)

__all__ = ["SweepServer", "UnitOutcome"]

#: Upper bound on request bodies; scenario documents are tiny, so anything
#: bigger is a client bug (or not a client at all).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Seconds a connection may take to deliver its request before the server
#: gives up on it (a stalled client must not be able to wedge a drain).
REQUEST_READ_TIMEOUT = 30.0


@dataclass(frozen=True)
class UnitOutcome:
    """How one request obtained one unit payload."""

    payload: Dict[str, Any]
    source: str  # "computed" | "deduped" | "coalesced"
    attempts: int


def _json_response(code: int, document: Dict[str, Any]) -> bytes:
    body = encode_event(document)
    head = (
        f"HTTP/1.1 {code} {REASONS.get(code, 'Error')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + body


_STREAM_HEAD = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: application/x-ndjson\r\n"
    b"Cache-Control: no-store\r\n"
    b"Connection: close\r\n\r\n"
)


async def _read_request(reader: asyncio.StreamReader) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one HTTP/1.1 request → ``(method, target, headers, body)``."""
    request_line = await reader.readline()
    if not request_line:
        raise ConnectionError("client closed before sending a request")
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(400, f"malformed request line {request_line[:80]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise ProtocolError(400, "Content-Length is not an integer") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(413, f"request body of {length} bytes exceeds {MAX_BODY_BYTES}")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


class SweepServer:
    """Asyncio sweep server over one result store.

    ``workers`` bounds concurrent unit computations (the shard width);
    ``retries`` is the number of *additional* attempts after a retryable
    failure, with exponential backoff starting at ``backoff`` seconds.
    ``executor`` defaults to a fresh :class:`ProcessUnitExecutor` honouring
    ``unit_timeout``; tests inject :class:`InlineUnitExecutor` doubles.
    """

    def __init__(
        self,
        store,
        *,
        workers: int = 2,
        unit_timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.5,
        executor=None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.store = store
        self.engine = ScenarioEngine(store)
        self.loader = ScenarioLoader()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.executor = executor if executor is not None else ProcessUnitExecutor(unit_timeout=unit_timeout)
        self.workers = max(1, int(workers))
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.solve_memo_root = str(store.root) if isinstance(store, ResultStore) else None
        self.registry: Dict[str, asyncio.Future] = {}
        self.draining = False
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._active = 0
        self._idle: Optional[asyncio.Event] = None
        self._next_request = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and start accepting; returns the (host, port) actually bound."""
        self._semaphore = asyncio.Semaphore(self.workers)
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def drain(self) -> None:
        """Stop accepting, let in-flight requests finish, release everything.

        This is the SIGTERM path: after ``drain()`` returns, the registry is
        empty, every claim is released, and no ``.tmp-*`` scratch file is in
        flight — the store is warm and clean for the next process.
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._idle is not None:
            await self._idle.wait()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._active += 1
        self._idle.clear()
        try:
            await self._dispatch(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
            pass  # a vanished or stalled client takes only its own request down
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._active -= 1
            if self._active == 0:
                self._idle.set()

    async def _dispatch(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            method, target, _headers, body = await asyncio.wait_for(
                _read_request(reader),
                REQUEST_READ_TIMEOUT,
            )
        except ProtocolError as error:
            writer.write(_json_response(error.code, error.to_event()))
            await writer.drain()
            return
        if method == "GET" and target == "/healthz":
            writer.write(_json_response(200, {"event": "health", "status": "ok"}))
        elif method == "GET" and target == "/stats":
            writer.write(_json_response(200, self._stats()))
        elif target == "/submit" and method != "POST":
            writer.write(_json_response(405, error_event(405, "submit requires POST")))
        elif target == "/submit":
            await self._handle_submit(body, writer)
        else:
            writer.write(_json_response(404, error_event(404, f"unknown path {target!r}")))
        await writer.drain()

    def _stats(self) -> Dict[str, Any]:
        snapshot = self.telemetry.snapshot()
        return {
            "event": "stats",
            "protocol": PROTOCOL_VERSION,
            "counters": snapshot["counters"],
            "inflight": len(self.registry),
            "draining": self.draining,
            "store": str(getattr(self.store, "root", "(memory)")),
        }

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    async def _handle_submit(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        lock = asyncio.Lock()
        started = False

        async def emit(record: Dict[str, Any]) -> None:
            nonlocal started
            async with lock:
                if not started:
                    writer.write(_STREAM_HEAD)
                    started = True
                writer.write(encode_event(record))
                await writer.drain()

        try:
            try:
                document, profile = parse_submit_body(body)
            except ProtocolError:
                # A body we cannot even parse still counts as (rejected) traffic.
                self.telemetry.count("serve.requests")
                self.telemetry.count("serve.requests.rejected")
                raise
            await self.submit_document(document, profile=profile, emit=emit)
        except ProtocolError as error:
            # Rejected before anything was scheduled: zero units, zero claims.
            writer.write(_json_response(error.code, error.to_event()))
            await writer.drain()

    async def submit_document(
        self,
        document: Dict[str, Any],
        *,
        profile: Optional[str] = None,
        emit=None,
    ) -> Dict[str, Any]:
        """Run one submission end to end; returns the final ``result`` event.

        ``emit`` (an async callable) receives every streamed event in order;
        the HTTP handler passes the connection writer, tests pass a recorder
        or nothing.  Raises :class:`ProtocolError` for submissions rejected
        before any unit is scheduled (invalid scenario, draining server).
        """
        if self._semaphore is None:
            # Direct (non-HTTP) submissions may arrive before start().
            self._semaphore = asyncio.Semaphore(self.workers)
        self.telemetry.count("serve.requests")
        try:
            if self.draining:
                raise ProtocolError(503, "server is draining; resubmit to its successor")
            try:
                spec = self.loader.from_document(document, profile=profile)
                compiled = self.engine.compile(spec)
            except ScenarioError as error:
                raise ProtocolError(400, f"invalid scenario: {error}") from None
        except ProtocolError:
            self.telemetry.count("serve.requests.rejected")
            raise

        if emit is None:
            async def emit(record: Dict[str, Any]) -> None:  # noqa: ARG001
                return None

        self._next_request += 1
        request_id = self._next_request
        labels = self.engine.unit_labels(compiled)
        accepted = {
            "event": "accepted",
            "protocol": PROTOCOL_VERSION,
            "request_id": request_id,
            "scenario": spec.name,
            "units": len(compiled.units),
            "points": len(compiled.points),
        }
        await emit(accepted)

        async def resolve(key: str, unit: Any) -> Tuple[str, UnitOutcome]:
            outcome = await self._resolve_unit(key, unit, spec.name, labels[key])
            event = {
                "event": "unit",
                "key": key,
                "label": labels[key],
                "status": outcome.source,
                "attempts": outcome.attempts,
            }
            await emit(event)
            return key, outcome

        settled = await asyncio.gather(
            *(resolve(key, unit) for key, unit in compiled.units.items()),
            return_exceptions=True,
        )
        payloads: Dict[str, Dict[str, Any]] = {}
        tally = {"computed": 0, "deduped": 0, "coalesced": 0}
        failures = []
        for item in settled:
            if isinstance(item, BaseException):
                failures.append(item)
                continue
            key, outcome = item
            payloads[key] = outcome.payload
            tally[outcome.source] += 1
        if failures:
            for failure in failures:
                await emit(error_event(500, f"unit failed permanently: {failure}"))
            final = {
                "event": "result",
                "request_id": request_id,
                "scenario": spec.name,
                "status": "failed",
                "failed": len(failures),
                **tally,
            }
            await emit(final)
            return final
        result = ScenarioResult(
            spec=spec,
            points=self.engine.aggregate(compiled, payloads),
            computed=tally["computed"],
            skipped=tally["deduped"] + tally["coalesced"],
        )
        final = {
            "event": "result",
            "request_id": request_id,
            "scenario": spec.name,
            "status": "ok",
            "failed": 0,
            **tally,
            "points": result.points,
            "markdown": result.to_markdown(),
        }
        await emit(final)
        return final

    # ------------------------------------------------------------------ #
    # The three dedup layers
    # ------------------------------------------------------------------ #
    async def _resolve_unit(self, key: str, unit: Any, scenario: str, label: str) -> UnitOutcome:
        pending = self.registry.get(key)
        if pending is not None:
            # Layer 2: someone is already computing this signature — ride along.
            self.telemetry.count("serve.units.inflight_coalesced")
            payload = await asyncio.shield(pending)
            return UnitOutcome(payload=payload, source="coalesced", attempts=0)
        payload = self.store.get(key)
        if payload is not None:
            # Layer 1: any past run (server or batch) already paid for this.
            self.telemetry.count("serve.units.deduped")
            return UnitOutcome(payload=payload, source="deduped", attempts=0)
        future = asyncio.get_running_loop().create_future()
        self.registry[key] = future
        try:
            async with self._semaphore:
                self.store.claim(key, owner=f"serve:{os.getpid()}")
                try:
                    payload, attempts = await self._compute_with_retry(key, unit)
                    self.store.put(key, payload, scenario=scenario, label=label)
                    self.telemetry.count("serve.units.computed")
                finally:
                    self.store.release(key)
            future.set_result(payload)
            return UnitOutcome(payload=payload, source="computed", attempts=attempts)
        except BaseException as error:
            future.set_exception(error)
            future.exception()  # mark retrieved even when nobody coalesced
            raise
        finally:
            self.registry.pop(key, None)

    async def _compute_with_retry(self, key: str, unit: Any) -> Tuple[Dict[str, Any], int]:
        attempts = 0
        while True:
            attempts += 1
            try:
                payload = await asyncio.to_thread(self.executor.run, key, unit, self.solve_memo_root)
                return payload, attempts
            except UnitFailure as failure:
                if not failure.retryable or attempts > self.retries:
                    raise
                self.telemetry.count("serve.units.retried")
                await asyncio.sleep(self.backoff * (2 ** (attempts - 1)))
