"""WCS — the worst-case-only static voltage scheduler (the paper's baseline).

WCS is "the static scheduling method that only considers WCEC in obtaining the
scheduling": end-times and budgets are chosen to minimise the energy consumed
when every job takes its worst-case execution cycles.  At runtime the same
greedy slack-reclamation DVS runs on top of it, so WCS still benefits from
dynamic slack — just not as much as ACS, because its end-times were never
placed with the average case in mind.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.preemption import FullyPreemptiveSchedule
from .base import VoltageScheduler
from .batched_solver import NLPSolveTask, run_program
from .nlp import ReducedNLP, SolverOptions
from .schedule import StaticSchedule

__all__ = ["WCSScheduler"]


@dataclass
class WCSScheduler(VoltageScheduler):
    """Worst-case-only static voltage scheduler (baseline the paper compares against)."""

    options: SolverOptions = field(default_factory=SolverOptions)

    @property
    def name(self) -> str:
        return "wcs"

    def schedule_expansion(self, expansion: FullyPreemptiveSchedule) -> StaticSchedule:
        return run_program(self.schedule_program(expansion))

    def schedule_program(self, expansion: FullyPreemptiveSchedule):
        nlp = ReducedNLP(expansion, self.processor, workload_mode="wcec", options=self.options)
        (schedule,) = yield (NLPSolveTask(nlp),)
        return schedule
