"""Analytic (total-order) evaluation of a static schedule.

Given the end-times ``E`` and worst-case budgets ``w`` of every sub-instance,
this module predicts the runtime behaviour under the paper's greedy
slack-reclamation DVS for a *given* realisation of the actual execution cycles
of each job — without running the event-driven simulator.  It propagates
completion times along the total order of the fully preemptive schedule:

* a sub-instance starts at ``max(its slot start, previous finish)`` — its
  worst-case budget only becomes available once the higher-priority release
  that defines the slot has happened, which is what keeps the worst case
  feasible (constraint (9) of the paper bounds early starts by exactly the
  slack of the previous sub-instance in the total order);
* its speed is the one the online DVS would pick: worst-case budget over the
  time left until its planned end-time, clipped to the processor range;
* it executes the cycles the sequential-fill rule assigns to it and finishes
  accordingly; the saved time is automatically inherited by the next
  sub-instance in the order (greedy reclamation).

This evaluator is the objective function of the reduced ACS formulation (with
actual = ACEC) and of the WCS baseline (actual = WCEC); it is also a handy
cross-check against the discrete-event simulator (see
``tests/integration/test_simulator_vs_analytic.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.preemption import FullyPreemptiveSchedule
from ..core.errors import SchedulingError
from ..power.processor import ProcessorModel
from .schedule import StaticSchedule

__all__ = ["AnalyticOutcome", "evaluate_vectors", "evaluate_schedule", "worst_case_energy", "average_case_energy"]

_EPS = 1e-12


@dataclass
class AnalyticOutcome:
    """Result of an analytic evaluation of one hyperperiod."""

    energy: float
    finish_times: Dict[str, float]
    sub_finish_times: List[float]
    deadline_misses: List[str]

    @property
    def feasible(self) -> bool:
        return not self.deadline_misses


def evaluate_vectors(expansion: FullyPreemptiveSchedule, end_times: Sequence[float],
                     wc_budgets: Sequence[float], processor: ProcessorModel,
                     actual_cycles: Optional[Dict[str, float]] = None,
                     *, collect_details: bool = True) -> AnalyticOutcome:
    """Propagate one hyperperiod analytically.

    Parameters
    ----------
    expansion:
        The fully preemptive expansion (defines the total order and jobs).
    end_times / wc_budgets:
        Planned end-time and worst-case budget per sub-instance, in total order.
    processor:
        The DVS processor model.
    actual_cycles:
        Mapping from job key (``"T1[0]"``) to the cycles that job actually
        requires.  Defaults to every job taking its ACEC.
    collect_details:
        When ``False`` only the energy is computed (used inside the optimiser's
        inner loop to avoid building dictionaries).
    """
    subs = expansion.sub_instances
    if len(end_times) != len(subs) or len(wc_budgets) != len(subs):
        raise SchedulingError(
            f"expected {len(subs)} end-times and budgets, got {len(end_times)}/{len(wc_budgets)}"
        )

    remaining: Dict[str, float] = {}
    for instance in expansion.instances:
        if actual_cycles is None:
            remaining[instance.key] = instance.acec
        else:
            remaining[instance.key] = actual_cycles.get(instance.key, instance.acec)

    energy = 0.0
    previous_finish = 0.0
    finish_times: Dict[str, float] = {}
    sub_finishes: List[float] = []
    misses: List[str] = []

    for index, sub in enumerate(subs):
        instance = sub.instance
        budget = max(float(wc_budgets[index]), 0.0)
        end_time = float(end_times[index])
        executed = min(budget, max(remaining[instance.key], 0.0))
        start = max(sub.slot_start, previous_finish)
        if executed > _EPS:
            available = end_time - start
            if available <= _EPS:
                frequency = processor.fmax
            else:
                frequency = processor.clip_frequency(budget / available)
            voltage = processor.voltage_for_frequency(frequency)
            frequency = processor.frequency(voltage)
            duration = executed / frequency
            energy += processor.energy(executed, voltage, instance.task.ceff)
            finish = start + duration
            remaining[instance.key] -= executed
        else:
            finish = start
        previous_finish = max(previous_finish, finish)
        if collect_details:
            sub_finishes.append(finish)
            if remaining[instance.key] <= _EPS and instance.key not in finish_times:
                finish_times[instance.key] = finish

    if collect_details:
        for instance in expansion.instances:
            finish = finish_times.get(instance.key)
            if finish is None:
                # The job never completed within its budgets (should not happen
                # when budgets sum to the WCEC and actual <= WCEC).
                misses.append(instance.key)
            elif finish > instance.deadline + 1e-9 * max(1.0, instance.deadline):
                misses.append(instance.key)

    return AnalyticOutcome(
        energy=energy,
        finish_times=finish_times,
        sub_finish_times=sub_finishes,
        deadline_misses=misses,
    )


def evaluate_schedule(schedule: StaticSchedule, processor: ProcessorModel,
                      actual_cycles: Optional[Dict[str, float]] = None) -> AnalyticOutcome:
    """Evaluate a :class:`StaticSchedule` (convenience wrapper over :func:`evaluate_vectors`)."""
    return evaluate_vectors(
        schedule.expansion,
        schedule.end_times(),
        schedule.wc_budgets(),
        processor,
        actual_cycles,
    )


def average_case_energy(schedule: StaticSchedule, processor: ProcessorModel) -> float:
    """Predicted energy of one hyperperiod when every job takes its ACEC."""
    return evaluate_schedule(schedule, processor).energy


def worst_case_energy(schedule: StaticSchedule, processor: ProcessorModel) -> float:
    """Predicted energy of one hyperperiod when every job takes its WCEC."""
    actual = {inst.key: inst.wcec for inst in schedule.expansion.instances}
    return evaluate_schedule(schedule, processor, actual).energy
