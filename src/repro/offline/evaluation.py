"""Analytic (total-order) evaluation of a static schedule.

Given the end-times ``E`` and worst-case budgets ``w`` of every sub-instance,
this module predicts the runtime behaviour under the paper's greedy
slack-reclamation DVS for a *given* realisation of the actual execution cycles
of each job — without running the event-driven simulator.  It propagates
completion times along the total order of the fully preemptive schedule:

* a sub-instance starts at ``max(its slot start, previous finish)`` — its
  worst-case budget only becomes available once the higher-priority release
  that defines the slot has happened, which is what keeps the worst case
  feasible (constraint (9) of the paper bounds early starts by exactly the
  slack of the previous sub-instance in the total order);
* its speed is the one the online DVS would pick: worst-case budget over the
  time left until its planned end-time, clipped to the processor range;
* it executes the cycles the sequential-fill rule assigns to it and finishes
  accordingly; the saved time is automatically inherited by the next
  sub-instance in the order (greedy reclamation).

This evaluator is the objective function of the reduced ACS formulation (with
actual = ACEC) and of the WCS baseline (actual = WCEC); it is also a handy
cross-check against the discrete-event simulator (see
``tests/integration/test_simulator_vs_analytic.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.preemption import FullyPreemptiveSchedule
from ..core.errors import SchedulingError
from ..power.processor import ProcessorModel
from .schedule import StaticSchedule

__all__ = [
    "AnalyticOutcome",
    "CompiledEvaluation",
    "evaluate_vectors",
    "evaluate_schedule",
    "worst_case_energy",
    "average_case_energy",
]

_EPS = 1e-12


@dataclass
class AnalyticOutcome:
    """Result of an analytic evaluation of one hyperperiod."""

    energy: float
    finish_times: Dict[str, float]
    sub_finish_times: List[float]
    deadline_misses: List[str]

    @property
    def feasible(self) -> bool:
        return not self.deadline_misses


def evaluate_vectors(expansion: FullyPreemptiveSchedule, end_times: Sequence[float],
                     wc_budgets: Sequence[float], processor: ProcessorModel,
                     actual_cycles: Optional[Dict[str, float]] = None,
                     *, collect_details: bool = True) -> AnalyticOutcome:
    """Propagate one hyperperiod analytically.

    Parameters
    ----------
    expansion:
        The fully preemptive expansion (defines the total order and jobs).
    end_times / wc_budgets:
        Planned end-time and worst-case budget per sub-instance, in total order.
    processor:
        The DVS processor model.
    actual_cycles:
        Mapping from job key (``"T1[0]"``) to the cycles that job actually
        requires.  Defaults to every job taking its ACEC.
    collect_details:
        When ``False`` only the energy is computed (used inside the optimiser's
        inner loop to avoid building dictionaries).
    """
    subs = expansion.sub_instances
    if len(end_times) != len(subs) or len(wc_budgets) != len(subs):
        raise SchedulingError(
            f"expected {len(subs)} end-times and budgets, got {len(end_times)}/{len(wc_budgets)}"
        )

    remaining: Dict[str, float] = {}
    for instance in expansion.instances:
        if actual_cycles is None:
            remaining[instance.key] = instance.acec
        else:
            remaining[instance.key] = actual_cycles.get(instance.key, instance.acec)

    energy = 0.0
    previous_finish = 0.0
    finish_times: Dict[str, float] = {}
    sub_finishes: List[float] = []
    misses: List[str] = []

    for index, sub in enumerate(subs):
        instance = sub.instance
        budget = max(float(wc_budgets[index]), 0.0)
        end_time = float(end_times[index])
        executed = min(budget, max(remaining[instance.key], 0.0))
        start = max(sub.slot_start, previous_finish)
        if executed > _EPS:
            available = end_time - start
            if available <= _EPS:
                frequency = processor.fmax
            else:
                frequency = processor.clip_frequency(budget / available)
            voltage = processor.voltage_for_frequency(frequency)
            frequency = processor.frequency(voltage)
            duration = executed / frequency
            energy += processor.energy(executed, voltage, instance.task.ceff)
            finish = start + duration
            remaining[instance.key] -= executed
        else:
            finish = start
        previous_finish = max(previous_finish, finish)
        if collect_details:
            sub_finishes.append(finish)
            if remaining[instance.key] <= _EPS and instance.key not in finish_times:
                finish_times[instance.key] = finish

    if collect_details:
        for instance in expansion.instances:
            finish = finish_times.get(instance.key)
            if finish is None:
                # The job never completed within its budgets (should not happen
                # when budgets sum to the WCEC and actual <= WCEC).
                misses.append(instance.key)
            elif finish > instance.deadline + 1e-9 * max(1.0, instance.deadline):
                misses.append(instance.key)

    return AnalyticOutcome(
        energy=energy,
        finish_times=finish_times,
        sub_finish_times=sub_finishes,
        deadline_misses=misses,
    )


class CompiledEvaluation:
    """Pre-indexed, vectorizable form of the analytic greedy propagation.

    The reduced NLP evaluates :func:`evaluate_vectors` (energy only) hundreds
    of thousands of times per solve — once per finite-difference perturbation
    of every variable.  This class compiles the parts of the evaluation that
    do not depend on the decision variables (slot starts, per-sub-instance
    task constants, the per-job sequential-fill grouping, the processor's
    linear-law constants) and offers

    * :meth:`energy` — a drop-in scalar evaluation, and
    * :meth:`energies` — a *batched* evaluation of many end-time/budget
      columns at once, used to compute a whole finite-difference gradient in
      one pass over the total order.

    Both are **bitwise-identical** to ``evaluate_vectors(...).energy``: every
    arithmetic operation is performed in the same order with the same
    associativity as the reference loop (the tests in
    ``tests/offline/test_evaluation.py`` assert exact equality).  Only
    ``law="linear"`` processors are supported — the CMOS delay law needs
    ``x ** alpha``, whose NumPy vectorization is not bitwise-equal to the
    scalar power — and :meth:`supported` reports whether a processor
    qualifies; callers fall back to :func:`evaluate_vectors` otherwise.
    """

    def __init__(self, expansion: FullyPreemptiveSchedule, processor: ProcessorModel,
                 actual_cycles: Optional[Dict[str, float]] = None) -> None:
        if not self.supported(processor):
            raise SchedulingError(
                f"CompiledEvaluation requires a linear-law processor, got law={processor.law!r}"
            )
        subs = expansion.sub_instances
        instances = expansion.instances
        self.expansion = expansion
        self.processor = processor
        self.n_subs = len(subs)

        instance_index = {instance.key: i for i, instance in enumerate(instances)}
        self._slot_starts = [sub.slot_start for sub in subs]
        self._ceffs = [sub.task.ceff for sub in subs]
        self._instance_of_sub = [instance_index[sub.instance.key] for sub in subs]
        remaining = []
        for instance in instances:
            if actual_cycles is None:
                remaining.append(instance.acec)
            else:
                remaining.append(actual_cycles.get(instance.key, instance.acec))
        self._initial_remaining = remaining

        # Per-job sequential fill grouped by position: subs of one job appear
        # in sub-index order along the total order, so the p-th subs of all
        # jobs can be filled together once positions 0..p-1 are done.
        position_of_sub = [0] * len(subs)
        seen: Dict[int, int] = {}
        for order, sub in enumerate(subs):
            inst = self._instance_of_sub[order]
            position_of_sub[order] = seen.get(inst, 0)
            seen[inst] = position_of_sub[order] + 1
        max_position = max(position_of_sub, default=-1) + 1
        self._positions: List[tuple] = []
        for position in range(max_position):
            sub_rows = np.array(
                [order for order in range(len(subs)) if position_of_sub[order] == position],
                dtype=np.intp,
            )
            inst_rows = np.array([self._instance_of_sub[order] for order in sub_rows],
                                 dtype=np.intp)
            self._positions.append((sub_rows, inst_rows))

        self._fmax = processor.fmax
        self._fmin = processor.fmin
        self._vmin = processor.vmin
        self._vmax = processor.vmax
        self._k = processor._k
        self._fill_scratch: Dict[int, tuple] = {}
        self._column_scratch: Dict[int, tuple] = {}

    @staticmethod
    def supported(processor: ProcessorModel) -> bool:
        """Whether the batched evaluation is bitwise-exact for ``processor``."""
        return processor.law == "linear"

    # ------------------------------------------------------------------ #
    # Scalar fast path
    # ------------------------------------------------------------------ #
    def energy(self, end_times: Sequence[float], wc_budgets: Sequence[float]) -> float:
        """Energy of one hyperperiod; equals ``evaluate_vectors(...).energy`` bitwise."""
        ends = np.asarray(end_times, dtype=float).tolist()
        budgets = np.asarray(wc_budgets, dtype=float).tolist()
        return self.energy_from_lists(ends, budgets)

    def energy_from_lists(self, ends: List[float], budgets: List[float]) -> float:
        """:meth:`energy` on plain float lists (no array round-trip)."""
        remaining = list(self._initial_remaining)
        slot_starts = self._slot_starts
        ceffs = self._ceffs
        instance_of_sub = self._instance_of_sub
        fmax = self._fmax
        fmin = self._fmin
        vmin = self._vmin
        vmax = self._vmax
        k = self._k

        energy = 0.0
        previous_finish = 0.0
        # Branch-inlined max/min (ties keep the first operand, exactly like
        # the builtins): this loop runs once per finite-difference line-search
        # point, and the call overhead of max()/min() is its dominant cost.
        for index in range(self.n_subs):
            budget = budgets[index]
            if budget < 0.0:
                budget = 0.0
            instance = instance_of_sub[index]
            rem = remaining[instance]
            positive_rem = rem if rem >= 0.0 else 0.0
            executed = budget if budget <= positive_rem else positive_rem
            slot = slot_starts[index]
            start = slot if slot >= previous_finish else previous_finish
            if executed > _EPS:
                available = ends[index] - start
                if available <= _EPS:
                    frequency = fmax
                else:
                    frequency = budget / available
                    if frequency < fmin:
                        frequency = fmin
                    elif frequency > fmax:
                        frequency = fmax
                # voltage_for_frequency / frequency(voltage), linear law inlined.
                if frequency <= 0:
                    voltage = vmin
                elif frequency >= fmax:
                    voltage = vmax
                elif frequency <= fmin:
                    voltage = vmin
                else:
                    voltage = frequency * k
                    if voltage < vmin:
                        voltage = vmin
                    elif voltage > vmax:
                        voltage = vmax
                frequency = voltage / k
                energy += executed * ((ceffs[index] * voltage) * voltage)
                finish = start + executed / frequency
                remaining[instance] = rem - executed
                if finish > previous_finish:
                    previous_finish = finish
            elif start > previous_finish:
                previous_finish = start
        return energy

    # ------------------------------------------------------------------ #
    # Batched path
    # ------------------------------------------------------------------ #
    def energies(self, end_times: np.ndarray, wc_budgets: np.ndarray) -> np.ndarray:
        """Energies of many candidate schedules at once.

        ``end_times`` and ``wc_budgets`` are ``(n_subs, K)`` matrices whose
        columns are independent candidate vectors in total order; returns the
        ``(K,)`` energy vector, each element bitwise-equal to the scalar
        evaluation of that column.
        """
        ends = np.asarray(end_times, dtype=float)
        raw_budgets = np.asarray(wc_budgets, dtype=float)
        if ends.ndim != 2 or ends.shape[0] != self.n_subs or raw_budgets.shape != ends.shape:
            raise SchedulingError(
                f"expected matching ({self.n_subs}, K) matrices, got {ends.shape} and {raw_budgets.shape}"
            )
        n_columns = ends.shape[1]
        if n_columns == 0:
            return np.zeros(0)
        budgets = np.maximum(raw_budgets, 0.0)

        # Phase 1 — per-job sequential fill of the actual cycles (depends on
        # budgets only): position p of every job is resolved in lockstep.
        fill = self._fill_scratch.get(n_columns)
        if fill is None:
            fill = (
                np.empty((len(self._initial_remaining), n_columns), dtype=float),
                np.empty((self.n_subs, n_columns), dtype=float),
                np.empty((self.n_subs, n_columns), dtype=bool),
            )
            self._fill_scratch[n_columns] = fill
        remaining, executed, executed_mask = fill
        remaining[:] = np.asarray(self._initial_remaining, dtype=float)[:, None]
        for sub_rows, inst_rows in self._positions:
            chunk = np.minimum(budgets[sub_rows], np.maximum(remaining[inst_rows], 0.0))
            mask = chunk > _EPS
            executed[sub_rows] = chunk
            executed_mask[sub_rows] = mask
            remaining[inst_rows] = remaining[inst_rows] - np.where(mask, chunk, 0.0)

        # Phase 2 — propagate finish times along the total order (inherently
        # sequential over sub-instances, vectorized across columns).  All
        # temporaries live in per-width scratch buffers: the loop body is
        # in-place ufunc calls, no allocations.  Every operation mirrors the
        # scalar chain bit for bit — boolean-mask assignment replaces
        # ``np.where`` (identical selection), and zeroing masked-out segments
        # before the running ``+=`` equals skipping them (the accumulator
        # never goes negative, so ``x + 0.0 == x`` holds bitwise).
        slot_starts = self._slot_starts
        ceffs = self._ceffs
        fmax = self._fmax
        fmin = self._fmin
        vmin = self._vmin
        vmax = self._vmax
        k = self._k
        scratch = self._column_scratch.get(n_columns)
        if scratch is None:
            scratch = tuple(np.empty(n_columns) for _ in range(5)) + (
                np.empty(n_columns, dtype=bool),
            )
            self._column_scratch[n_columns] = scratch
        start, available, frequency, voltage, segment, condition = scratch
        previous_finish = np.zeros(n_columns)
        energy = np.zeros(n_columns)
        with np.errstate(divide="ignore", invalid="ignore"):
            for index in range(self.n_subs):
                np.maximum(slot_starts[index], previous_finish, out=start)
                np.subtract(ends[index], start, out=available)
                np.divide(budgets[index], available, out=frequency)
                np.maximum(frequency, fmin, out=frequency)
                np.minimum(frequency, fmax, out=frequency)
                np.less_equal(available, _EPS, out=condition)
                frequency[condition] = fmax
                np.multiply(frequency, k, out=voltage)
                np.maximum(voltage, vmin, out=voltage)
                np.minimum(voltage, vmax, out=voltage)
                np.less_equal(frequency, fmin, out=condition)
                voltage[condition] = vmin
                np.greater_equal(frequency, fmax, out=condition)
                voltage[condition] = vmax
                np.divide(voltage, k, out=frequency)
                chunk = executed[index]
                np.multiply(ceffs[index], voltage, out=segment)
                np.multiply(segment, voltage, out=segment)
                np.multiply(chunk, segment, out=segment)
                np.logical_not(executed_mask[index], out=condition)
                segment[condition] = 0.0
                energy += segment
                # finish = start + executed / frequency where executed ran.
                np.divide(chunk, frequency, out=frequency)
                np.add(start, frequency, out=frequency)
                frequency[condition] = 0.0
                np.maximum(frequency, start, out=frequency)
                np.maximum(previous_finish, frequency, out=previous_finish)
        return energy


def evaluate_schedule(schedule: StaticSchedule, processor: ProcessorModel,
                      actual_cycles: Optional[Dict[str, float]] = None) -> AnalyticOutcome:
    """Evaluate a :class:`StaticSchedule` (convenience wrapper over :func:`evaluate_vectors`)."""
    return evaluate_vectors(
        schedule.expansion,
        schedule.end_times(),
        schedule.wc_budgets(),
        processor,
        actual_cycles,
    )


def average_case_energy(schedule: StaticSchedule, processor: ProcessorModel) -> float:
    """Predicted energy of one hyperperiod when every job takes its ACEC."""
    return evaluate_schedule(schedule, processor).energy


def worst_case_energy(schedule: StaticSchedule, processor: ProcessorModel) -> float:
    """Predicted energy of one hyperperiod when every job takes its WCEC."""
    actual = {inst.key: inst.wcec for inst in schedule.expansion.instances}
    return evaluate_schedule(schedule, processor, actual).energy
