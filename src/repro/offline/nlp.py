"""Reduced NLP formulation of the offline voltage-scheduling problem.

The paper formulates the search for the static schedule as a Non-Linear
Program over, for every sub-instance, its end-time, its worst-case and average
workloads and the two corresponding supply voltages (Section 3.2).  Observing
that — under the paper's own runtime model — the average workloads and both
voltages are *determined* by the end-times and worst-case budgets (the
sequential-fill rule and the online speed formula), this module solves the
equivalent *reduced* problem:

    variables     E_m (end-time), w_m (worst-case budget) for every sub-instance
    objective     average-case energy of one hyperperiod, evaluated by the
                  analytic greedy propagation of :mod:`repro.offline.evaluation`
                  with every job at its ACEC
    constraints   (all linear)
                  * slot containment:            slot_start_m ≤ E_m ≤ slot_end_m
                  * worst-case chain (paper (8)): E_m − E_{m−1} ≥ w_m / fmax
                  * release guard:                E_m − slot_start_m ≥ w_m / fmax
                  * per-job budget (paper (11)):  Σ_k w_{i,j,k} = WCEC_i
                  * w_m ≥ 0

Setting the "actual" workload used by the objective to the WCEC instead of the
ACEC turns the same solver into the WCS baseline (the classical static
schedule that only considers worst-case cycles).

The literal formulation with explicit voltage/average-workload variables is
available in :mod:`repro.offline.nlp_literal` and is cross-checked against
this one in the test suite.

**When to use which:** this reduced formulation is the production path — it
is what :class:`~repro.offline.acs.ACSScheduler` and
:class:`~repro.offline.wcs.WCSScheduler` solve, and it scales to the full
Figure 6 sweeps.  Reach for :mod:`repro.offline.nlp_literal` only to
cross-validate against the paper's raw variable set on small expansions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from ..analysis.preemption import FullyPreemptiveSchedule
from ..core.errors import SchedulingError
from ..power.processor import ProcessorModel
from .evaluation import CompiledEvaluation, evaluate_vectors
from .initialization import proportional_budget_vectors, worst_case_simulation_vectors
from .schedule import StaticSchedule

__all__ = ["ReducedNLP", "SolverOptions"]


@dataclass(frozen=True)
class SolverOptions:
    """Knobs for the scipy-based solver."""

    maxiter: int = 200
    ftol: float = 1e-8
    finite_difference_step: float = 1e-6
    method: str = "SLSQP"
    verbose: bool = False
    #: Fraction of the hyperperiod added as slack to the worst-case chain
    #: constraints inside the solver.  SLSQP may violate its constraints by a
    #: small amount; the margin keeps the *true* chain constraint satisfiable
    #: after the post-solve repair, at a negligible cost in optimality.
    chain_margin_fraction: float = 1e-5
    #: Compute the solver's forward-difference gradient with one batched,
    #: vectorized objective evaluation instead of scipy's per-variable scalar
    #: loop.  The batched gradient reproduces scipy's 2-point scheme (step
    #: construction, bound adjustment, difference quotient) bitwise, so the
    #: solver trajectory — and therefore the resulting schedule — is
    #: unchanged; it is automatically disabled for processors the vectorized
    #: evaluation does not support (non-linear delay laws).
    vectorized_jacobian: bool = True


@dataclass
class ReducedNLP:
    """Assembles and solves the reduced offline voltage-scheduling NLP.

    Parameters
    ----------
    expansion:
        The fully preemptive expansion of the task set over one hyperperiod.
    processor:
        DVS processor model (delay and energy laws).
    workload_mode:
        ``"acec"`` → the objective evaluates the average case (this is ACS);
        ``"wcec"`` → the objective evaluates the worst case (this is WCS).
    options:
        Solver options.
    """

    expansion: FullyPreemptiveSchedule
    processor: ProcessorModel
    workload_mode: str = "acec"
    options: SolverOptions = field(default_factory=SolverOptions)
    #: Optional list of ``(weight, {job key: actual cycles})`` scenarios.  When
    #: given, the objective becomes the weighted mean energy over the scenarios
    #: instead of the single ACEC/WCEC evaluation — this is the
    #: probability-weighted objective the paper mentions as an option when the
    #: workload distribution is known (used by the stochastic ACS variant).
    scenarios: Optional[List[Tuple[float, Dict[str, float]]]] = None

    def __post_init__(self) -> None:
        if self.workload_mode not in ("acec", "wcec"):
            raise SchedulingError(f"workload_mode must be 'acec' or 'wcec', got {self.workload_mode!r}")
        if self.scenarios is not None:
            if not self.scenarios:
                raise SchedulingError("scenarios must be a non-empty list when given")
            total_weight = sum(weight for weight, _ in self.scenarios)
            if total_weight <= 0:
                raise SchedulingError("scenario weights must sum to a positive value")
        subs = self.expansion.sub_instances
        self._n_subs = len(subs)
        # Budgets are decision variables only for jobs split into 2+ sub-instances.
        self._budget_var_index: Dict[int, int] = {}
        self._fixed_budget: Dict[int, float] = {}
        next_var = 0
        for index, sub in enumerate(subs):
            siblings = self.expansion.sub_instances_of(sub.instance)
            if len(siblings) >= 2:
                self._budget_var_index[index] = next_var
                next_var += 1
            else:
                self._fixed_budget[index] = sub.instance.wcec
        self._n_budget_vars = next_var
        self._n_vars = self._n_subs + self._n_budget_vars
        self._actual_cycles = self._build_actual_cycles()

        # Vectorized unpack: sub index of every budget variable (in variable
        # order) plus the fixed single-sub budgets as index/value arrays.
        self._budget_var_subs = np.array(
            sorted(self._budget_var_index, key=lambda i: self._budget_var_index[i]),
            dtype=np.intp,
        )
        self._fixed_budget_subs = np.array(sorted(self._fixed_budget), dtype=np.intp)
        self._fixed_budget_values = np.array(
            [self._fixed_budget[i] for i in sorted(self._fixed_budget)], dtype=float,
        )
        self._budget_var_subs_list = self._budget_var_subs.tolist()
        budget_template = [0.0] * self._n_subs
        for sub_index, value in self._fixed_budget.items():
            budget_template[sub_index] = value
        self._budget_template = budget_template

        # Compiled (batched) objective: one evaluator per workload scenario.
        # Only linear-law processors vectorize bitwise; everything else keeps
        # the reference evaluation path.
        self._bounds_lower: Optional[np.ndarray] = None
        self._bounds_upper: Optional[np.ndarray] = None
        self._last_point: Optional[np.ndarray] = None
        self._last_value: float = 0.0
        #: Optional evaluation backend (the batched planner's coordinator).
        #: When set, compiled objective/batch evaluations are routed through it
        #: so many concurrent solves can share one stacked evaluation; the
        #: backend is contractually bitwise-transparent.
        self._backend = None
        self._compiled: Optional[List[Tuple[float, CompiledEvaluation]]] = None
        if CompiledEvaluation.supported(self.processor):
            if self.scenarios is not None:
                self._compiled = [
                    (weight, CompiledEvaluation(self.expansion, self.processor, actual))
                    for weight, actual in self.scenarios
                ]
            else:
                self._compiled = [
                    (1.0, CompiledEvaluation(self.expansion, self.processor, self._actual_cycles))
                ]

    # ------------------------------------------------------------------ #
    # Variable packing
    # ------------------------------------------------------------------ #
    @property
    def n_variables(self) -> int:
        return self._n_vars

    def _build_actual_cycles(self) -> Dict[str, float]:
        if self.workload_mode == "acec":
            return {inst.key: inst.acec for inst in self.expansion.instances}
        return {inst.key: inst.wcec for inst in self.expansion.instances}

    def pack(self, end_times: Sequence[float], budgets: Sequence[float]) -> np.ndarray:
        """Pack full end-time/budget vectors into the optimisation variable vector."""
        x = np.zeros(self._n_vars)
        x[: self._n_subs] = np.asarray(end_times, dtype=float)
        for sub_index, var_index in self._budget_var_index.items():
            x[self._n_subs + var_index] = budgets[sub_index]
        return x

    def unpack(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Expand the optimisation vector into full end-time/budget vectors."""
        x = np.asarray(x, dtype=float)
        end_times = np.asarray(x[: self._n_subs], dtype=float)
        budgets = np.zeros(self._n_subs)
        budgets[self._budget_var_subs] = x[self._n_subs:]
        budgets[self._fixed_budget_subs] = self._fixed_budget_values
        return end_times, budgets

    def _unpack_batch(self, x_columns: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Column-wise :meth:`unpack` of a ``(n_vars, K)`` matrix."""
        end_times = x_columns[: self._n_subs]
        budgets = np.zeros((self._n_subs, x_columns.shape[1]))
        budgets[self._budget_var_subs] = x_columns[self._n_subs:]
        budgets[self._fixed_budget_subs] = self._fixed_budget_values[:, None]
        return end_times, budgets

    # ------------------------------------------------------------------ #
    # Objective and constraints
    # ------------------------------------------------------------------ #
    def objective(self, x: np.ndarray) -> float:
        """Average-case energy of the candidate schedule ``x``.

        Dispatches to the compiled scalar evaluation when the processor
        supports it (bitwise-identical to the reference evaluation; see
        :class:`~repro.offline.evaluation.CompiledEvaluation`), otherwise to
        :meth:`objective_reference`.
        """
        if self._compiled is not None:
            values = np.asarray(x, dtype=float).tolist()
            if self._backend is not None:
                energy = self._backend.evaluate_scalar(self, values)
            else:
                energy = self._scalar_energy(values)
            # Memoize the last point: the solver evaluates the objective and
            # then the gradient at the same x, and the gradient needs f0.
            self._last_point = np.array(values)
            self._last_value = energy
            return energy
        return self.objective_reference(x)

    def _scalar_energy(self, values: List[float]) -> float:
        """Compiled scalar objective of a full variable-value list."""
        n_subs = self._n_subs
        end_times = values[:n_subs]
        budgets = self._budget_template.copy()
        for position, sub_index in enumerate(self._budget_var_subs_list):
            budgets[sub_index] = values[n_subs + position]
        if self.scenarios is not None:
            total_weight = sum(weight for weight, _ in self.scenarios)
            energy = 0.0
            for weight, evaluator in self._compiled:
                energy += weight * evaluator.energy_from_lists(end_times, budgets)
            return energy / total_weight
        return self._compiled[0][1].energy_from_lists(end_times, budgets)

    def objective_reference(self, x: np.ndarray) -> float:
        """The uncompiled objective (kept as the equivalence oracle)."""
        end_times, budgets = self.unpack(x)
        if self.scenarios is not None:
            total_weight = sum(weight for weight, _ in self.scenarios)
            energy = 0.0
            for weight, actual_cycles in self.scenarios:
                outcome = evaluate_vectors(
                    self.expansion, end_times, budgets, self.processor,
                    actual_cycles, collect_details=False,
                )
                energy += weight * outcome.energy
            return energy / total_weight
        outcome = evaluate_vectors(
            self.expansion, end_times, budgets, self.processor,
            self._actual_cycles, collect_details=False,
        )
        return outcome.energy

    def objective_batch(self, x_columns: np.ndarray) -> np.ndarray:
        """Objective of many candidate vectors at once (``(n_vars, K)`` → ``(K,)``).

        Requires the compiled evaluation (linear-law processor); each element
        is bitwise-equal to :meth:`objective` of the corresponding column.
        """
        if self._compiled is None:
            raise SchedulingError(
                "objective_batch requires the compiled evaluation (linear-law processor)"
            )
        columns = np.asarray(x_columns, dtype=float)
        if self._backend is not None:
            return self._backend.evaluate_batch(self, columns)
        return self._batch_energy(columns)

    def _batch_energy(self, columns: np.ndarray) -> np.ndarray:
        """Compiled batched objective of a ``(n_vars, K)`` column matrix."""
        end_times, budgets = self._unpack_batch(columns)
        if self.scenarios is not None:
            total_weight = sum(weight for weight, _ in self.scenarios)
            energy = np.zeros(end_times.shape[1])
            for weight, evaluator in self._compiled:
                energy += weight * evaluator.energies(end_times, budgets)
            return energy / total_weight
        return self._compiled[0][1].energies(end_times, budgets)

    def jacobian(self, x: np.ndarray) -> np.ndarray:
        """Forward-difference gradient, computed in one batched evaluation.

        Reproduces scipy's 2-point finite-difference scheme — absolute step
        ``options.finite_difference_step``, the zero-step relative fallback,
        the one-sided bound adjustment of ``_adjust_scheme_to_bounds`` and the
        exact difference quotient — bitwise, so handing this to the solver
        instead of letting it difference :meth:`objective` itself changes the
        wall-clock cost (one vectorized pass instead of ``n_vars`` scalar
        evaluations) but not a single bit of the solver trajectory.  The
        replication is pinned by a test against
        ``scipy.optimize._numdiff.approx_derivative``.
        """
        x0 = np.asarray(x, dtype=float)
        if self._last_point is not None and np.array_equal(x0, self._last_point):
            f0 = self._last_value
        else:
            f0 = self.objective(x0)
        n_vars = self._n_vars
        step = np.full(n_vars, self.options.finite_difference_step, dtype=float)
        representable = (x0 + step) - x0
        if not representable.all():
            # Absolute step vanished against a huge |x|: scipy falls back to a
            # signed relative step; replicate it exactly.
            sign_x0 = (x0 >= 0).astype(float) * 2 - 1
            fallback = np.sqrt(np.finfo(np.float64).eps) * sign_x0 * np.maximum(1.0, np.abs(x0))
            step = np.where(representable == 0, fallback, step)

        if self._bounds_lower is None:
            bounds = self.bounds()
            self._bounds_lower = np.array([low for low, _ in bounds], dtype=float)
            self._bounds_upper = np.array([high for _, high in bounds], dtype=float)
        lower_dist = x0 - self._bounds_lower
        upper_dist = self._bounds_upper - x0
        probe = x0 + step
        violated = (probe < self._bounds_lower) | (probe > self._bounds_upper)
        fitting = np.abs(step) <= np.maximum(lower_dist, upper_dist)
        step = step.copy()
        step[violated & fitting] *= -1
        forward = (upper_dist >= lower_dist) & ~fitting
        step[forward] = upper_dist[forward]
        backward = (upper_dist < lower_dist) & ~fitting
        step[backward] = -lower_dist[backward]

        columns = np.repeat(x0[:, None], n_vars, axis=1)
        diagonal = np.arange(n_vars)
        columns[diagonal, diagonal] = x0 + step
        values = self.objective_batch(columns)
        dx = (x0 + step) - x0
        return (values - f0) / dx

    def bounds(self) -> List[Tuple[float, float]]:
        subs = self.expansion.sub_instances
        bounds: List[Tuple[float, float]] = [(sub.slot_start, sub.slot_end) for sub in subs]
        for sub_index in sorted(self._budget_var_index, key=lambda i: self._budget_var_index[i]):
            bounds.append((0.0, subs[sub_index].instance.wcec))
        return bounds

    def linear_constraints(self) -> List[Dict[str, object]]:
        """Constraints in the dict form accepted by SLSQP."""
        subs = self.expansion.sub_instances
        fmax = self.processor.fmax
        n_subs = self._n_subs
        margin = self.options.chain_margin_fraction * self.expansion.horizon

        inequality_rows: List[np.ndarray] = []
        inequality_consts: List[float] = []

        def budget_coefficient_row(sub_index: int, coefficient: float) -> np.ndarray:
            row = np.zeros(self._n_vars)
            if sub_index in self._budget_var_index:
                row[n_subs + self._budget_var_index[sub_index]] = coefficient
            return row

        for index, sub in enumerate(subs):
            # E_m − slot_start_m − w_m / fmax ≥ margin
            row = budget_coefficient_row(index, -1.0 / fmax)
            row[index] += 1.0
            constant = -sub.slot_start - margin
            if index in self._fixed_budget:
                constant -= self._fixed_budget[index] / fmax
            inequality_rows.append(row)
            inequality_consts.append(constant)
            if index >= 1:
                # E_m − E_{m−1} − w_m / fmax ≥ margin
                row = budget_coefficient_row(index, -1.0 / fmax)
                row[index] += 1.0
                row[index - 1] -= 1.0
                constant = -margin
                if index in self._fixed_budget:
                    constant -= self._fixed_budget[index] / fmax
                inequality_rows.append(row)
                inequality_consts.append(constant)

        equality_rows: List[np.ndarray] = []
        equality_consts: List[float] = []
        for instance in self.expansion.instances:
            indices = [sub.order for sub in self.expansion.sub_instances_of(instance)]
            if len(indices) < 2:
                continue
            row = np.zeros(self._n_vars)
            for sub_index in indices:
                row[n_subs + self._budget_var_index[sub_index]] = 1.0
            equality_rows.append(row)
            equality_consts.append(instance.wcec)

        constraints: List[Dict[str, object]] = []
        if inequality_rows:
            a_ineq = np.vstack(inequality_rows)
            b_ineq = np.asarray(inequality_consts)
            constraints.append({
                "type": "ineq",
                "fun": lambda x, a=a_ineq, b=b_ineq: a @ x + b,
                "jac": lambda x, a=a_ineq: a,
            })
        if equality_rows:
            a_eq = np.vstack(equality_rows)
            b_eq = np.asarray(equality_consts)
            constraints.append({
                "type": "eq",
                "fun": lambda x, a=a_eq, b=b_eq: a @ x - b,
                "jac": lambda x, a=a_eq: a,
            })
        return constraints

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def initial_guess(self) -> np.ndarray:
        end_times, budgets = proportional_budget_vectors(self.expansion, self.processor)
        return self.pack(end_times, budgets)

    def fallback_vectors(self) -> Tuple[List[float], List[float]]:
        return worst_case_simulation_vectors(self.expansion, self.processor)

    def solve(self, x0: Optional[np.ndarray] = None) -> StaticSchedule:
        """Run the solver and return a validated :class:`StaticSchedule`.

        The raw solver output is repaired (budgets renormalised, end-times
        pushed forward to restore the worst-case chain) before validation; if
        no feasible repaired schedule emerges, the guaranteed-feasible
        worst-case-at-fmax schedule is returned instead, flagged in
        ``metadata["fallback"]``.
        """
        start = self.initial_guess() if x0 is None else np.asarray(x0, dtype=float)
        # The batched jacobian replays scipy's own finite-difference scheme
        # bitwise (see :meth:`jacobian`), so the solver trajectory is
        # identical with or without it — only the wall-clock changes.
        use_vectorized_jacobian = (
            self._compiled is not None
            and self.options.vectorized_jacobian
            and self.options.method == "SLSQP"
        )
        result = optimize.minimize(
            self.objective,
            start,
            method=self.options.method,
            jac=self.jacobian if use_vectorized_jacobian else None,
            bounds=self.bounds(),
            constraints=self.linear_constraints(),
            options={
                "maxiter": self.options.maxiter,
                "ftol": self.options.ftol,
                "eps": self.options.finite_difference_step,
                "disp": self.options.verbose,
            },
        )
        end_times, budgets = self.unpack(np.asarray(result.x, dtype=float))
        repaired = self._repair(end_times, budgets)
        metadata = {
            "solver_status": int(result.status),
            "solver_message": str(result.message),
            "solver_iterations": int(result.get("nit", -1)),
            "fallback": False,
        }
        method_name = "acs" if self.workload_mode == "acec" else "wcs"
        if repaired is not None:
            candidate = StaticSchedule.from_vectors(
                self.expansion, repaired[0], repaired[1],
                method=method_name,
                objective_value=float(self.objective(self.pack(*repaired))),
                metadata=metadata,
            )
            try:
                candidate.validate(self.processor)
                return candidate
            except SchedulingError:
                pass
        # Fall back to the guaranteed-feasible worst-case schedule at fmax.
        fallback_end, fallback_budget = self.fallback_vectors()
        metadata["fallback"] = True
        schedule = StaticSchedule.from_vectors(
            self.expansion, fallback_end, fallback_budget,
            method=method_name,
            objective_value=float(self.objective(self.pack(fallback_end, fallback_budget))),
            metadata=metadata,
        )
        schedule.validate(self.processor)
        return schedule

    # ------------------------------------------------------------------ #
    # Post-processing
    # ------------------------------------------------------------------ #
    def _repair(self, end_times: np.ndarray,
                budgets: np.ndarray) -> Optional[Tuple[List[float], List[float]]]:
        """Project a near-feasible solver output onto the feasible set.

        Budgets are clipped at zero and rescaled so each job's budgets sum to
        its WCEC; end-times are then pushed forward just enough to restore the
        worst-case chain, and clipped to their slot.  Returns ``None`` when the
        projection would violate a slot end (the caller then falls back).
        """
        subs = self.expansion.sub_instances
        repaired_budgets = np.clip(np.asarray(budgets, dtype=float), 0.0, None)
        for instance in self.expansion.instances:
            indices = [sub.order for sub in self.expansion.sub_instances_of(instance)]
            total = repaired_budgets[indices].sum()
            if total <= 1e-12:
                # Degenerate: give everything to the first sub-instance.
                repaired_budgets[indices] = 0.0
                repaired_budgets[indices[0]] = instance.wcec
            else:
                repaired_budgets[indices] *= instance.wcec / total

        fmax = self.processor.fmax
        repaired_ends: List[float] = []
        previous_end = 0.0
        for index, sub in enumerate(subs):
            if repaired_budgets[index] <= 1e-9 * max(1.0, sub.instance.wcec):
                # Zero-budget sub-instances execute nothing; keep their end-time
                # inside the slot but outside the chain bookkeeping.
                repaired_ends.append(min(max(float(end_times[index]), sub.slot_start), sub.slot_end))
                continue
            earliest = max(previous_end, sub.slot_start) + repaired_budgets[index] / fmax
            end = min(max(float(end_times[index]), earliest), sub.slot_end)
            tolerance = 1e-7 * max(1.0, sub.slot_end)
            if end + tolerance < earliest:
                return None
            repaired_ends.append(end)
            previous_end = max(previous_end, end)
        return repaired_ends, list(repaired_budgets)
