"""Additional non-NLP baselines.

The paper compares ACS only against WCS, but two more reference points are
useful when interpreting the numbers (and are standard in the DVS literature):

* :class:`MaxSpeedScheduler` — "no DVS": the static schedule packs every job
  as early as possible at maximum speed.  With greedy reclamation on top, the
  runtime still runs everything at (almost) full speed because the planned
  end-times leave no stretch room.  This gives the energy ceiling.
* :class:`ConstantSpeedScheduler` — the classic static slowdown (e.g. the
  static part of Pillai & Shin's RT-DVS): run the worst case at the breakdown
  frequency, i.e. the slowest constant speed that keeps the task set
  schedulable, and derive end-times from that schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.preemption import FullyPreemptiveSchedule
from ..analysis.response_time import breakdown_frequency
from ..core.errors import InfeasibleTaskSetError
from .base import VoltageScheduler
from .initialization import worst_case_simulation_vectors
from .schedule import StaticSchedule

__all__ = ["MaxSpeedScheduler", "ConstantSpeedScheduler"]


@dataclass
class MaxSpeedScheduler(VoltageScheduler):
    """Packs the worst case at maximum speed ("no DVS" reference point)."""

    @property
    def name(self) -> str:
        return "max_speed"

    def schedule_expansion(self, expansion: FullyPreemptiveSchedule) -> StaticSchedule:
        end_times, budgets = worst_case_simulation_vectors(expansion, self.processor)
        schedule = StaticSchedule.from_vectors(
            expansion, end_times, budgets, method=self.name,
            metadata={"frequency": self.processor.fmax},
        )
        schedule.validate(self.processor)
        return schedule


@dataclass
class ConstantSpeedScheduler(VoltageScheduler):
    """Runs the worst case at the breakdown (slowest feasible constant) frequency.

    Parameters
    ----------
    frequency:
        Optional explicit constant frequency.  When omitted, the breakdown
        frequency of the task set is used.
    """

    frequency: Optional[float] = None

    @property
    def name(self) -> str:
        return "constant_speed"

    def schedule_expansion(self, expansion: FullyPreemptiveSchedule) -> StaticSchedule:
        frequency = self.frequency
        if frequency is None:
            frequency = breakdown_frequency(expansion.taskset, self.processor)
            if frequency is None:
                raise InfeasibleTaskSetError(
                    f"task set {expansion.taskset.name!r} is not schedulable even at maximum speed"
                )
        end_times, budgets = worst_case_simulation_vectors(expansion, self.processor, frequency)
        schedule = StaticSchedule.from_vectors(
            expansion, end_times, budgets, method=self.name,
            metadata={"frequency": frequency},
        )
        schedule.validate(self.processor)
        return schedule
