"""ACS — the paper's average-case-aware offline voltage scheduler.

ACS ("Average-Case Scheduling" in the paper's experimental section) chooses,
for every sub-instance of the fully preemptive schedule, a planned end-time
and a worst-case cycle budget such that

* the schedule remains feasible when every job takes its worst-case execution
  cycles (WCEC), and
* the energy consumed when jobs take their *average-case* execution cycles
  (ACEC) — the common situation at runtime — is minimised under the greedy
  slack-reclamation DVS policy.

The optimisation is the reduced NLP of :mod:`repro.offline.nlp` (see that
module for the mapping to the paper's Section 3.2 formulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.preemption import FullyPreemptiveSchedule
from .base import VoltageScheduler
from .batched_solver import NLPSolveTask, run_program
from .nlp import ReducedNLP, SolverOptions
from .schedule import StaticSchedule

__all__ = ["ACSScheduler"]


@dataclass
class ACSScheduler(VoltageScheduler):
    """Average-case-aware static voltage scheduler (the paper's contribution).

    Parameters
    ----------
    processor:
        The DVS processor model.
    options:
        Solver options forwarded to :class:`~repro.offline.nlp.ReducedNLP`.
    seed_with_wcs:
        When true (default) the solver is warm-started from the WCS solution,
        which makes the optimisation both faster and never worse than the
        baseline in terms of the average-case objective.
    """

    options: SolverOptions = field(default_factory=SolverOptions)
    seed_with_wcs: bool = True

    @property
    def name(self) -> str:
        return "acs"

    def schedule_expansion(self, expansion: FullyPreemptiveSchedule) -> StaticSchedule:
        """Solve the average-case NLP from several starting points and keep the best.

        SLSQP can stall on the piecewise-smooth objective depending on where it
        starts, so the solver is run from the default heuristic guess and — when
        ``seed_with_wcs`` is on — from the WCS solution.  The WCS schedule
        itself is also kept as a candidate (it is feasible for the ACS problem
        by construction), which guarantees that ACS is never worse than the
        baseline on the average-case objective.
        """
        return run_program(self.schedule_program(expansion))

    def schedule_program(self, expansion: FullyPreemptiveSchedule):
        """:meth:`schedule_expansion` as a batchable wave program.

        Wave 1 solves the heuristically seeded ACS problem and the WCS warm
        start together; wave 2 re-solves ACS from the WCS solution.  Driven
        sequentially this performs the exact solve sequence documented above;
        driven by the batched planner the independent wave members share one
        stacked evaluation.
        """
        nlp = ReducedNLP(expansion, self.processor, workload_mode="acec", options=self.options)
        if not self.seed_with_wcs:
            (schedule,) = yield (NLPSolveTask(nlp),)
            candidates = [schedule]
        else:
            wcs_nlp = ReducedNLP(expansion, self.processor, workload_mode="wcec", options=self.options)
            plain, wcs_schedule = yield (NLPSolveTask(nlp), NLPSolveTask(wcs_nlp))
            wcs_vectors = nlp.pack(wcs_schedule.end_times(), wcs_schedule.wc_budgets())
            (seeded,) = yield (NLPSolveTask(nlp, x0=wcs_vectors),)
            candidates = [plain, seeded, StaticSchedule.from_vectors(
                expansion, wcs_schedule.end_times(), wcs_schedule.wc_budgets(),
                method="acs",
                objective_value=float(nlp.objective(wcs_vectors)),
                metadata={**wcs_schedule.metadata, "seed": "wcs-as-is"},
            )]
        best = min(candidates, key=lambda schedule: schedule.objective_value)
        best.validate(self.processor)
        return best
