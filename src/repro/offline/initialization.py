"""Constructive static schedules used as initial guesses, fallbacks and baselines.

The central helper is :func:`worst_case_simulation_vectors`: an analytic
fixed-priority simulation of the *worst case* (every job takes its WCEC) at a
constant frequency.  It returns, for every sub-instance of the fully
preemptive expansion, the cycles the job executed inside that sub-instance's
slot and the time at which it stopped executing there.  Those two vectors form
a feasible static schedule whenever the simulation itself meets all deadlines,
because by construction

* budgets of a job sum to its WCEC,
* every end-time lies inside its slot, and
* consecutive sub-instances in the total order never overlap.

Running the simulation at ``fmax`` yields the most conservative feasible
schedule (used as NLP fallback and as the "no-DVS" baseline); running it at
the breakdown frequency yields the classic constant-slowdown baseline.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..analysis.preemption import FullyPreemptiveSchedule
from ..core.errors import SchedulingError
from ..power.processor import ProcessorModel

__all__ = [
    "worst_case_simulation_vectors",
    "proportional_budget_vectors",
]


def _elementary_boundaries(expansion: FullyPreemptiveSchedule) -> List[float]:
    """All distinct slot boundaries (release times and deadlines) in order."""
    points = set()
    for sub in expansion.sub_instances:
        points.add(sub.slot_start)
        points.add(sub.slot_end)
    return sorted(points)


def worst_case_simulation_vectors(expansion: FullyPreemptiveSchedule, processor: ProcessorModel,
                                  frequency: float = None,
                                  *, require_feasible: bool = True) -> Tuple[List[float], List[float]]:
    """Simulate the worst case at a constant ``frequency`` and map it onto sub-instances.

    Returns ``(end_times, wc_budgets)`` in total order.  Sub-instances in which
    the job does not execute at all receive a zero budget and an end-time equal
    to their slot start.

    Raises :class:`SchedulingError` when the simulation misses a deadline and
    ``require_feasible`` is true.
    """
    freq = processor.fmax if frequency is None else frequency
    if freq <= 0:
        raise SchedulingError(f"frequency must be positive, got {freq}")

    subs = expansion.sub_instances
    boundaries = _elementary_boundaries(expansion)
    remaining: Dict[str, float] = {inst.key: inst.wcec for inst in expansion.instances}

    # cycles executed and last execution time per sub-instance key
    executed: Dict[str, float] = {sub.key: 0.0 for sub in subs}
    last_active: Dict[str, float] = {sub.key: sub.slot_start for sub in subs}

    # Pre-index: for each job, its sub-instances by slot interval for fast lookup.
    subs_by_instance: Dict[str, List] = {}
    for sub in subs:
        subs_by_instance.setdefault(sub.instance.key, []).append(sub)
    for key in subs_by_instance:
        subs_by_instance[key].sort(key=lambda s: s.slot_start)

    instances_sorted = sorted(expansion.instances, key=lambda i: (i.priority, i.release, i.task.name))

    for t_start, t_end in zip(boundaries, boundaries[1:]):
        time_cursor = t_start
        capacity = t_end - t_start
        for instance in instances_sorted:
            if capacity <= 1e-15:
                break
            if remaining[instance.key] <= 1e-12:
                continue
            if instance.release > t_start + 1e-12 or instance.deadline < t_end - 1e-12:
                continue
            # Find the sub-instance of this job whose slot contains [t_start, t_end).
            container = None
            for sub in subs_by_instance[instance.key]:
                if sub.slot_start <= t_start + 1e-12 and sub.slot_end >= t_end - 1e-12:
                    container = sub
                    break
            if container is None:
                continue
            time_needed = remaining[instance.key] / freq
            time_used = min(time_needed, capacity)
            cycles = time_used * freq
            executed[container.key] += cycles
            remaining[instance.key] -= cycles
            time_cursor += time_used
            last_active[container.key] = max(last_active[container.key], time_cursor)
            capacity -= time_used

    if require_feasible:
        unfinished = [key for key, value in remaining.items() if value > 1e-9]
        if unfinished:
            raise SchedulingError(
                f"worst-case simulation at frequency {freq:g} cannot finish jobs {unfinished}; "
                "the task set is not schedulable at this speed"
            )

    end_times = [last_active[sub.key] for sub in subs]
    budgets = [executed[sub.key] for sub in subs]
    return end_times, budgets


def proportional_budget_vectors(expansion: FullyPreemptiveSchedule,
                                processor: ProcessorModel) -> Tuple[List[float], List[float]]:
    """Heuristic initial guess: budgets proportional to slot lengths, end-times stretched.

    The end-times are a forward pass that stretches each sub-instance towards
    the end of its slot while respecting the worst-case chain requirement at
    maximum speed.  The result is *not* guaranteed to be feasible; it is only
    used to seed the NLP, which falls back to
    :func:`worst_case_simulation_vectors` if needed.
    """
    subs = expansion.sub_instances
    budgets: List[float] = []
    for sub in subs:
        siblings = expansion.sub_instances_of(sub.instance)
        total_slot = sum(s.slot_length for s in siblings)
        share = sub.slot_length / total_slot if total_slot > 0 else 1.0 / len(siblings)
        budgets.append(sub.instance.wcec * share)

    end_times: List[float] = []
    previous_end = 0.0
    for sub, budget in zip(subs, budgets):
        earliest = max(previous_end, sub.slot_start) + budget / processor.fmax
        end = min(sub.slot_end, max(earliest, sub.slot_end - 0.0))
        end = max(end, earliest)
        end_times.append(end)
        previous_end = max(previous_end, end)
    return end_times, budgets
