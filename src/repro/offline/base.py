"""Common interface for offline voltage schedulers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from ..analysis.preemption import FullyPreemptiveSchedule, expand_fully_preemptive
from ..core.taskset import TaskSet
from ..power.processor import ProcessorModel
from .schedule import StaticSchedule

__all__ = ["VoltageScheduler"]


@dataclass
class VoltageScheduler(ABC):
    """Base class for every offline voltage scheduler.

    A scheduler turns a task set (or a pre-computed fully preemptive
    expansion) into a :class:`StaticSchedule`.  Subclasses implement
    :meth:`schedule_expansion`; the convenience :meth:`schedule` expands the
    task set first.
    """

    processor: ProcessorModel

    @property
    def name(self) -> str:
        """Short identifier used in reports (e.g. ``"acs"``)."""
        return type(self).__name__.replace("Scheduler", "").lower()

    def schedule(self, taskset: TaskSet, horizon: Optional[float] = None) -> StaticSchedule:
        """Expand ``taskset`` over one hyperperiod (or ``horizon``) and schedule it."""
        expansion = expand_fully_preemptive(taskset, horizon)
        return self.schedule_expansion(expansion)

    @abstractmethod
    def schedule_expansion(self, expansion: FullyPreemptiveSchedule) -> StaticSchedule:
        """Compute the static schedule for an existing expansion."""

    def schedule_program(self, expansion: FullyPreemptiveSchedule):
        """The scheduler's solve sequence as a batchable *program*.

        A program is a generator that yields waves of
        :class:`~repro.offline.batched_solver.NLPSolveTask` tuples, receives
        the matching tuple of solved :class:`StaticSchedule` objects for each
        wave, and returns the final schedule.  Driving a program sequentially
        (:func:`~repro.offline.batched_solver.run_program`) reproduces
        :meth:`schedule_expansion` bitwise; driving many programs together
        (:func:`~repro.offline.batched_solver.run_programs`) lets the batched
        planner stack their solver evaluations across problems.

        The default delegates to :meth:`schedule_expansion` without yielding —
        right for schedulers that do not solve NLPs.  Schedulers built on
        :class:`~repro.offline.nlp.ReducedNLP` override this and express
        :meth:`schedule_expansion` in terms of it.
        """
        return self.schedule_expansion(expansion)
        yield ()  # pragma: no cover - unreachable; makes this a generator
