"""Batched offline planning: cross-problem vectorized NLP solves plus a solve memo.

A Figure-6 sweep solves hundreds of *independent* :class:`~repro.offline.nlp.ReducedNLP`
instances — one ACS and one WCS problem per task set — and each solve spends
most of its wall-clock in :class:`~repro.offline.evaluation.CompiledEvaluation`
calls whose per-row NumPy dispatch overhead dwarfs the arithmetic.  This module
amortises that overhead *across problems* without changing a single bit of any
solver trajectory:

* **Scheduler programs** (:meth:`~repro.offline.base.VoltageScheduler.schedule_program`)
  describe a scheduler's solve sequence as waves of :class:`NLPSolveTask`
  requests.  :func:`run_programs` drives many programs in lock-step, so the
  independent solves of a whole sweep become one concurrent pool.
* **The evaluation coordinator** (:class:`_EvaluationCoordinator`) runs each
  SLSQP instance on its own thread, blocked on an evaluation-request queue.
  Whenever every live solver is waiting, the coordinator drains the pending
  objective/jacobian requests into one *stacked* cross-problem evaluation
  (:func:`stacked_energies`) and hands each solver exactly the numbers the
  per-problem evaluation would have produced — bitwise — so every trajectory,
  and therefore every :class:`~repro.offline.schedule.StaticSchedule`, is
  unchanged.  Problems the vectorized evaluation cannot reproduce (non-linear
  delay laws, non-SLSQP methods) fall back to plain sequential solves, per
  problem, mirroring the runtime engine's ``batch_fallback_reason`` discipline
  (:func:`solve_fallback_reason`).
* **The solve memo** (:class:`SolveMemo`) is a content-addressed cache keyed —
  with the result store's hashing discipline (:func:`~repro.scenarios.store.signature_key`)
  — by everything solve-relevant: the task set, the horizon, the processor,
  the workload mode, the solver options, the scenario set and the warm-start
  vector.  ACS/WCS re-solves of identical task sets across policies, seeds
  and resumed sweeps then cost one solve; backed by a
  :class:`~repro.scenarios.store.ResultStore` the memo survives a killed sweep.

The determinism contract matches the runtime engines: for the same inputs, the
batched planner returns schedules bitwise-identical to sequential
``schedule_expansion`` calls (``tests/offline/test_batched_solver.py``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Any, Dict, Generator, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import SchedulingError
from ..power.processor import ProcessorModel
from ..telemetry.core import current as _telemetry
from .evaluation import _EPS, CompiledEvaluation
from .nlp import ReducedNLP
from .schedule import StaticSchedule

__all__ = [
    "NLPSolveTask",
    "SolveMemo",
    "SchedulerProgram",
    "default_solve_memo",
    "plan_expansions",
    "run_program",
    "run_programs",
    "solve_fallback_reason",
    "solve_signature",
    "solve_tasks",
    "stacked_energies",
]

#: A scheduler program: yields waves of solve tasks, receives the matching
#: wave of schedules, and returns the final schedule via ``StopIteration``.
SchedulerProgram = Generator[Tuple["NLPSolveTask", ...], Tuple[StaticSchedule, ...], StaticSchedule]

#: Telemetry counter names, precomputed so the disabled path allocates nothing.
_MEMO_HIT = "solve_memo.hit"
_MEMO_MISS = "solve_memo.miss"
_MEMO_COMPUTED = "solve_memo.computed"
_OBJECTIVE_EVALS = "nlp.objective_evaluations"
_JACOBIAN_EVALS = "nlp.jacobian_evaluations"


@dataclass(frozen=True)
class NLPSolveTask:
    """One solver invocation: a reduced NLP plus an optional warm-start vector."""

    nlp: ReducedNLP
    x0: Optional[np.ndarray] = None


def solve_fallback_reason(task: NLPSolveTask) -> Optional[str]:
    """Why ``task`` cannot join a stacked solve, or ``None`` if it can.

    Mirrors the runtime engine's ``batch_fallback_reason``: a non-``None``
    reason routes the task to a plain per-problem sequential solve, so the
    batched planner never has to *approximate* — it only batches what it can
    reproduce bitwise.
    """
    nlp = task.nlp
    if nlp._compiled is None:
        return f"processor law {nlp.processor.law!r} has no vectorized evaluation"
    if nlp.options.method != "SLSQP":
        return f"solver method {nlp.options.method!r}"
    return None


# --------------------------------------------------------------------- #
# Solve memo (content-addressed, ResultStore hashing discipline)
# --------------------------------------------------------------------- #
def _processor_signature(processor: ProcessorModel) -> Dict[str, Any]:
    # Field-for-field what the scenario store hashes for a processor (the
    # ``name`` label is deliberately absent: it cannot influence a solve).
    return {
        "vmax": processor.vmax,
        "vmin": processor.vmin,
        "fmax": processor.fmax,
        "vth": processor.vth,
        "alpha": processor.alpha,
        "ceff": processor.ceff,
        "law": processor.law,
    }


def solve_signature(task: NLPSolveTask) -> Dict[str, Any]:
    """Everything that determines a solve's outcome, as a canonical dictionary.

    ``verbose`` is excluded (it only toggles solver chatter); every other
    option, the task set, the horizon, the processor physics, the workload
    mode, the scenario set and the warm start all shape the trajectory and
    are therefore part of the key.
    """
    # Lazy imports: pulling the reporting/scenario packages in at module load
    # would close an import cycle (scenarios.engine itself plans schedules).
    from ..reporting.serialization import taskset_to_dict
    from ..scenarios.store import STORE_FORMAT

    nlp = task.nlp
    options = asdict(nlp.options)
    options.pop("verbose", None)
    scenarios = None
    if nlp.scenarios is not None:
        scenarios = [[weight, dict(actual)] for weight, actual in nlp.scenarios]
    return {
        "store_format": STORE_FORMAT,
        "kind": "nlp-solve",
        "taskset": taskset_to_dict(nlp.expansion.taskset),
        "horizon": nlp.expansion.horizon,
        "processor": _processor_signature(nlp.processor),
        "workload_mode": nlp.workload_mode,
        "options": options,
        "scenarios": scenarios,
        "x0": None if task.x0 is None else [float(v) for v in np.asarray(task.x0, dtype=float)],
    }


def _schedule_payload(schedule: StaticSchedule) -> Dict[str, Any]:
    """The JSON-safe memo record a schedule round-trips through."""
    return {
        "method": schedule.method,
        "objective_value": schedule.objective_value,
        "end_times": [float(v) for v in schedule.end_times()],
        "wc_budgets": [float(v) for v in schedule.wc_budgets()],
        "metadata": dict(schedule.metadata),
    }


def _schedule_from_payload(nlp: ReducedNLP, payload: Mapping[str, Any]) -> StaticSchedule:
    """Rebuild a memoized schedule against the requesting task's expansion.

    ``from_vectors`` re-derives the average-case budgets deterministically,
    and JSON floats round-trip exactly, so the reconstruction is
    bitwise-identical to the schedule a fresh solve would return.
    """
    return StaticSchedule.from_vectors(
        nlp.expansion,
        payload["end_times"],
        payload["wc_budgets"],
        method=payload["method"],
        objective_value=payload["objective_value"],
        metadata=dict(payload["metadata"]),
    )


class SolveMemo:
    """Content-addressed cache of NLP solves.

    Backed either by an in-process dictionary (the default — bounded FIFO, so
    a long-lived process cannot grow without limit) or by any store with the
    :class:`~repro.scenarios.store.ResultStore` ``get``/``put`` interface,
    which makes solves resumable across killed sweeps and worker processes.

    ``hits`` counts solves answered from the memo (including in-flight
    duplicates deduplicated within one wave); ``computed`` counts solver
    invocations that actually ran.
    """

    def __init__(self, store: Optional[Any] = None, *, max_entries: int = 512):
        self._store = store
        self._local: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self.hits = 0
        self.computed = 0

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            payload = self._local.get(key)
        if payload is None and self._store is not None:
            payload = self._store.get(key)
        if payload is not None:
            self.hits += 1
            _telemetry().count(_MEMO_HIT)
        else:
            _telemetry().count(_MEMO_MISS)
        return payload

    def record(self, key: str, payload: Mapping[str, Any], *, label: str = "") -> None:
        self.computed += 1
        _telemetry().count(_MEMO_COMPUTED)
        with self._lock:
            self._local[key] = dict(payload)
            while len(self._local) > self._max_entries:
                self._local.popitem(last=False)
        if self._store is not None:
            self._store.put(key, payload, scenario="nlp-solve", label=label)


_DEFAULT_MEMO = SolveMemo()


def default_solve_memo() -> SolveMemo:
    """The process-wide in-memory memo used when no explicit memo is given."""
    return _DEFAULT_MEMO


# --------------------------------------------------------------------- #
# Stacked cross-problem evaluation
# --------------------------------------------------------------------- #
def stacked_energies(
    lanes: Sequence[Tuple[CompiledEvaluation, np.ndarray, np.ndarray]],
) -> List[np.ndarray]:
    """Evaluate many ``CompiledEvaluation.energies`` requests as one stack.

    Every lane is ``(evaluator, end_times, wc_budgets)`` with matrices of
    shape ``(evaluator.n_subs, K_lane)``; the return value is one ``(K_lane,)``
    energy vector per lane, each **bitwise-equal** to
    ``evaluator.energies(end_times, wc_budgets)``.

    The lanes are stacked side by side into ``(M, W)`` matrices (``M`` the
    largest total-order length, ``W`` the summed column count) and the
    propagation loop of :meth:`CompiledEvaluation.energies` runs *once* over
    ``M`` rows instead of once per problem — the per-row NumPy dispatch cost
    is paid once for the whole drain.  Two properties keep the stack exact:

    * every phase-2 operation is an elementwise float64 ufunc, so evaluating
      a column inside a wider matrix cannot change its value (the per-problem
      scalar constants become per-column vectors holding the same values);
    * padding rows (lanes shorter than ``M``) carry zero slot starts, ends,
      budgets and ceffs with an all-false executed mask, which leaves each
      column's running state untouched through the exact operation order —
      the ``0/0`` division the padding can produce is overwritten by the
      ``available <= eps → fmax`` override before anything reads it, and the
      masked-out segment contributes an exact ``+ 0.0`` to the (non-negative)
      energy accumulator.
    """
    if not lanes:
        return []
    if len(lanes) == 1:
        evaluator, ends, budgets = lanes[0]
        return [evaluator.energies(ends, budgets)]

    n_rows = max(evaluator.n_subs for evaluator, _, _ in lanes)
    widths = [np.asarray(ends, dtype=float).shape[1] for _, ends, _ in lanes]
    total = int(sum(widths))
    bounds = np.concatenate(([0], np.cumsum(widths))).astype(int)

    ends_stack = np.zeros((n_rows, total))
    raw_budgets = np.zeros((n_rows, total))
    slot_stack = np.zeros((n_rows, total))
    ceff_stack = np.zeros((n_rows, total))
    fmax_vec = np.empty(total)
    fmin_vec = np.empty(total)
    vmin_vec = np.empty(total)
    vmax_vec = np.empty(total)
    k_vec = np.empty(total)
    n_instances = max(len(evaluator._initial_remaining) for evaluator, _, _ in lanes)
    remaining = np.zeros((n_instances, total))

    for lane, (evaluator, lane_ends, lane_budgets) in enumerate(lanes):
        lo, hi = bounds[lane], bounds[lane + 1]
        rows = evaluator.n_subs
        ends_stack[:rows, lo:hi] = lane_ends
        raw_budgets[:rows, lo:hi] = lane_budgets
        slot_stack[:rows, lo:hi] = np.asarray(evaluator._slot_starts, dtype=float)[:, None]
        ceff_stack[:rows, lo:hi] = np.asarray(evaluator._ceffs, dtype=float)[:, None]
        fmax_vec[lo:hi] = evaluator._fmax
        fmin_vec[lo:hi] = evaluator._fmin
        vmin_vec[lo:hi] = evaluator._vmin
        vmax_vec[lo:hi] = evaluator._vmax
        k_vec[lo:hi] = evaluator._k
        initial = np.asarray(evaluator._initial_remaining, dtype=float)
        remaining[: initial.shape[0], lo:hi] = initial[:, None]

    budgets = np.maximum(raw_budgets, 0.0)

    # Phase 1 — per-job sequential fill, per lane (the position grouping is
    # lane-specific), with the exact operation order of the per-problem path.
    executed = np.zeros((n_rows, total))
    executed_mask = np.zeros((n_rows, total), dtype=bool)
    for lane, (evaluator, _, _) in enumerate(lanes):
        lo, hi = bounds[lane], bounds[lane + 1]
        for sub_rows, inst_rows in evaluator._positions:
            chunk = np.minimum(budgets[sub_rows, lo:hi],
                               np.maximum(remaining[inst_rows, lo:hi], 0.0))
            mask = chunk > _EPS
            executed[sub_rows, lo:hi] = chunk
            executed_mask[sub_rows, lo:hi] = mask
            remaining[inst_rows, lo:hi] = remaining[inst_rows, lo:hi] - np.where(mask, chunk, 0.0)

    # Phase 2 — the exact in-place ufunc sequence of
    # ``CompiledEvaluation.energies``, with the per-problem scalar constants
    # widened to per-column vectors (masked vector copy replaces masked
    # scalar assignment — identical selection, identical values).
    start = np.empty(total)
    available = np.empty(total)
    frequency = np.empty(total)
    voltage = np.empty(total)
    segment = np.empty(total)
    condition = np.empty(total, dtype=bool)
    previous_finish = np.zeros(total)
    energy = np.zeros(total)
    with np.errstate(divide="ignore", invalid="ignore"):
        for index in range(n_rows):
            np.maximum(slot_stack[index], previous_finish, out=start)
            np.subtract(ends_stack[index], start, out=available)
            np.divide(budgets[index], available, out=frequency)
            np.maximum(frequency, fmin_vec, out=frequency)
            np.minimum(frequency, fmax_vec, out=frequency)
            np.less_equal(available, _EPS, out=condition)
            np.copyto(frequency, fmax_vec, where=condition)
            np.multiply(frequency, k_vec, out=voltage)
            np.maximum(voltage, vmin_vec, out=voltage)
            np.minimum(voltage, vmax_vec, out=voltage)
            np.less_equal(frequency, fmin_vec, out=condition)
            np.copyto(voltage, vmin_vec, where=condition)
            np.greater_equal(frequency, fmax_vec, out=condition)
            np.copyto(voltage, vmax_vec, where=condition)
            np.divide(voltage, k_vec, out=frequency)
            chunk = executed[index]
            np.multiply(ceff_stack[index], voltage, out=segment)
            np.multiply(segment, voltage, out=segment)
            np.multiply(chunk, segment, out=segment)
            np.logical_not(executed_mask[index], out=condition)
            segment[condition] = 0.0
            energy += segment
            np.divide(chunk, frequency, out=frequency)
            np.add(start, frequency, out=frequency)
            frequency[condition] = 0.0
            np.maximum(frequency, start, out=frequency)
            np.maximum(previous_finish, frequency, out=previous_finish)

    return [energy[bounds[lane]:bounds[lane + 1]].copy() for lane in range(len(lanes))]


# --------------------------------------------------------------------- #
# Evaluation coordinator (lock-step solver threads)
# --------------------------------------------------------------------- #
class _Request:
    """One evaluation request parked on the coordinator's queue."""

    __slots__ = ("nlp", "kind", "payload", "event", "value", "error")

    def __init__(self, nlp: ReducedNLP, kind: str, payload: Any):
        self.nlp = nlp
        self.kind = kind  # "scalar" (float list) or "batch" ((n_vars, K) columns)
        self.payload = payload
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


def _evaluate_drain(batch: Sequence[_Request]) -> None:
    """Answer one drained wave of requests with per-problem-exact values.

    An all-scalar drain (every solver is in a line search) keeps the scalar
    fast path — its pure-Python loop beats a width-1 vectorized pass.  As
    soon as any request is a gradient batch, everything is stacked into one
    cross-problem :func:`stacked_energies` call; the scalar and batched
    evaluations are pinned bitwise-equal per column, so both routes hand a
    solver the same numbers.
    """
    if all(request.kind == "scalar" for request in batch):
        for request in batch:
            request.value = request.nlp._scalar_energy(request.payload)
        return
    lanes: List[Tuple[CompiledEvaluation, np.ndarray, np.ndarray]] = []
    plan: List[Tuple[_Request, int, int]] = []
    for request in batch:
        nlp = request.nlp
        if request.kind == "scalar":
            columns = np.asarray(request.payload, dtype=float)[:, None]
        else:
            columns = np.asarray(request.payload, dtype=float)
        ends, budgets = nlp._unpack_batch(columns)
        first_lane = len(lanes)
        for _, evaluator in nlp._compiled:
            lanes.append((evaluator, ends, budgets))
        plan.append((request, first_lane, len(lanes)))
    results = stacked_energies(lanes)
    for request, first_lane, last_lane in plan:
        nlp = request.nlp
        if nlp.scenarios is not None:
            total_weight = sum(weight for weight, _ in nlp.scenarios)
            energy = np.zeros(results[first_lane].shape[0])
            for (weight, _), lane_energy in zip(nlp._compiled, results[first_lane:last_lane]):
                energy += weight * lane_energy
            energy = energy / total_weight
        else:
            energy = results[first_lane]
        request.value = float(energy[0]) if request.kind == "scalar" else energy


class _EvaluationCoordinator:
    """Runs many SLSQP instances on threads and batch-evaluates their requests.

    Every solver thread blocks after submitting an objective/jacobian request;
    once *all* live solvers are blocked, the coordinator drains the queue in
    one stacked evaluation and releases them.  Progress is guaranteed because
    a live solver thread is always either computing (and will submit or
    finish) or already parked on the queue.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._pending: List[_Request] = []
        self._live = 0
        self._failure: Optional[BaseException] = None

    # ---- solver-thread side ------------------------------------------- #
    def _submit(self, request: _Request) -> Any:
        _telemetry().count(_OBJECTIVE_EVALS if request.kind == "scalar" else _JACOBIAN_EVALS)
        with self._cond:
            if self._failure is not None:
                raise self._failure
            self._pending.append(request)
            self._cond.notify_all()
        request.event.wait()
        if request.error is not None:
            raise request.error
        return request.value

    def evaluate_scalar(self, nlp: ReducedNLP, values: List[float]) -> float:
        return self._submit(_Request(nlp, "scalar", values))

    def evaluate_batch(self, nlp: ReducedNLP, columns: np.ndarray) -> np.ndarray:
        return self._submit(_Request(nlp, "batch", columns))

    # ---- coordinator side --------------------------------------------- #
    def run(self, tasks: Sequence[NLPSolveTask]) -> List[StaticSchedule]:
        count = len(tasks)
        schedules: List[Optional[StaticSchedule]] = [None] * count
        errors: List[Optional[BaseException]] = [None] * count

        def solver_main(index: int, task: NLPSolveTask) -> None:
            try:
                schedules[index] = task.nlp.solve(task.x0)
            except BaseException as error:  # noqa: BLE001 - reported to the caller
                errors[index] = error
            finally:
                task.nlp._backend = None
                with self._cond:
                    self._live -= 1
                    self._cond.notify_all()

        threads = []
        self._live = count
        for index, task in enumerate(tasks):
            task.nlp._backend = self
            threads.append(threading.Thread(
                target=solver_main, args=(index, task),
                name=f"nlp-solver-{index}", daemon=True,
            ))
        for thread in threads:
            thread.start()
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: self._live == 0
                    or (self._pending and len(self._pending) >= self._live)
                )
                if self._live == 0 and not self._pending:
                    break
                batch, self._pending = self._pending, []
            _telemetry().observe("solve.drain_width", float(len(batch)))
            try:
                _evaluate_drain(batch)
            except BaseException as error:  # noqa: BLE001 - poison every waiter
                with self._cond:
                    self._failure = error
                for request in batch:
                    request.error = error
            finally:
                for request in batch:
                    request.event.set()
        for thread in threads:
            thread.join()
        for error in errors:
            if error is not None:
                raise error
        return [schedule for schedule in schedules]  # all non-None: no error raised


# --------------------------------------------------------------------- #
# Wave solving and program driving
# --------------------------------------------------------------------- #
def solve_tasks(
    tasks: Sequence[NLPSolveTask],
    memo: Optional[SolveMemo] = None,
    *,
    fallback_out: Optional[List[Optional[str]]] = None,
) -> List[StaticSchedule]:
    """Solve one wave of tasks: memoized, deduplicated, stacked where possible.

    Order of resolution per task: a memo hit replays the stored vectors; an
    in-flight duplicate (identical signature within this wave) is solved once
    and every requester receives its own reconstructed schedule (schedules
    are mutable — sharing one object across requesters would leak one
    caller's mutations into another's); the rest are solved — concurrently
    through the evaluation coordinator when vectorizable, sequentially
    otherwise — and recorded in the memo.

    ``fallback_out``, when given, is rewritten to one entry per task: the
    ``solve_fallback_reason`` string for tasks that took the sequential
    fallback, ``None`` for everything else (memo hits and in-wave
    duplicates never reach a solver, so they carry no reason).
    """
    from ..scenarios.store import signature_key

    tasks = list(tasks)
    schedules: List[Optional[StaticSchedule]] = [None] * len(tasks)
    keys = [signature_key(solve_signature(task)) for task in tasks]
    if fallback_out is not None:
        fallback_out[:] = [None] * len(tasks)

    unresolved: List[int] = []
    for index, key in enumerate(keys):
        payload = memo.lookup(key) if memo is not None else None
        if payload is not None:
            schedules[index] = _schedule_from_payload(tasks[index].nlp, payload)
        else:
            unresolved.append(index)

    first_of: Dict[str, int] = {}
    duplicates: Dict[int, int] = {}
    unique: List[int] = []
    for index in unresolved:
        key = keys[index]
        if key in first_of:
            duplicates[index] = first_of[key]
        else:
            first_of[key] = index
            unique.append(index)

    concurrent: List[int] = []
    for index in unique:
        task = tasks[index]
        reason = solve_fallback_reason(task)
        if reason is not None:
            _telemetry().count("solve.fallback." + reason)
            if fallback_out is not None:
                fallback_out[index] = reason
            with _telemetry().span("solve.sequential"):
                schedules[index] = task.nlp.solve(task.x0)
        else:
            concurrent.append(index)
    if len(concurrent) == 1:
        index = concurrent[0]
        with _telemetry().span("solve.wave"):
            schedules[index] = tasks[index].nlp.solve(tasks[index].x0)
    elif concurrent:
        _telemetry().observe("solve.wave_width", float(len(concurrent)))
        with _telemetry().span("solve.wave"):
            solved = _EvaluationCoordinator().run([tasks[index] for index in concurrent])
        for index, schedule in zip(concurrent, solved):
            schedules[index] = schedule

    if memo is not None:
        for index in unique:
            label = f"{tasks[index].nlp.expansion.taskset.name}/{tasks[index].nlp.workload_mode}"
            memo.record(keys[index], _schedule_payload(schedules[index]), label=label)
    for index, source in duplicates.items():
        if memo is not None:
            memo.hits += 1
        schedules[index] = _schedule_from_payload(
            tasks[index].nlp, _schedule_payload(schedules[source])
        )
    return [schedule for schedule in schedules]


def run_program(program: SchedulerProgram) -> StaticSchedule:
    """Drive one scheduler program sequentially (the reference path).

    Tasks are solved one by one in yield order — exactly the call sequence
    the pre-program ``schedule_expansion`` implementations performed.
    """
    try:
        tasks = next(program)
        while True:
            tasks = program.send(tuple(task.nlp.solve(task.x0) for task in tasks))
    except StopIteration as stop:
        if stop.value is None:
            raise SchedulingError("scheduler program finished without a schedule") from None
        return stop.value


def run_programs(programs: Sequence[SchedulerProgram],
                 memo: Optional[SolveMemo] = None,
                 *,
                 fallback_out: Optional[List[Dict[str, int]]] = None) -> List[StaticSchedule]:
    """Drive many scheduler programs in lock-step waves.

    Each round advances every active program by one wave and solves the union
    of their yielded tasks through :func:`solve_tasks` — the wider the wave,
    the more problems one stacked evaluation amortises.

    ``fallback_out``, when given, is rewritten to one ``{reason: count}``
    tally per program, attributing each sequential-fallback solve to the
    program that requested it.
    """
    programs = list(programs)
    if fallback_out is not None:
        fallback_out[:] = [{} for _ in programs]
    results: List[Optional[StaticSchedule]] = [None] * len(programs)
    inbox: List[Tuple[StaticSchedule, ...]] = [()] * len(programs)
    started = [False] * len(programs)
    active = list(range(len(programs)))
    while active:
        wave: List[Tuple[int, Tuple[NLPSolveTask, ...]]] = []
        still_active: List[int] = []
        for index in active:
            try:
                if started[index]:
                    tasks = programs[index].send(inbox[index])
                else:
                    started[index] = True
                    tasks = next(programs[index])
            except StopIteration as stop:
                if stop.value is None:
                    raise SchedulingError("scheduler program finished without a schedule") from None
                results[index] = stop.value
                continue
            wave.append((index, tuple(tasks)))
            still_active.append(index)
        active = still_active
        if not wave:
            break
        wave_reasons: Optional[List[Optional[str]]] = [] if fallback_out is not None else None
        solved = solve_tasks(
            [task for _, tasks in wave for task in tasks], memo=memo, fallback_out=wave_reasons
        )
        cursor = 0
        for index, tasks in wave:
            inbox[index] = tuple(solved[cursor:cursor + len(tasks)])
            if fallback_out is not None and wave_reasons is not None:
                for reason in wave_reasons[cursor:cursor + len(tasks)]:
                    if reason is not None:
                        tally = fallback_out[index]
                        tally[reason] = tally.get(reason, 0) + 1
            cursor += len(tasks)
    return [result for result in results]


def plan_expansions(
    items: Sequence[Tuple[Any, Mapping[str, Any]]],
    memo: Optional[SolveMemo] = None,
    *,
    fallback_out: Optional[List[Dict[str, int]]] = None,
) -> List[Dict[str, StaticSchedule]]:
    """Plan many ``(expansion, {name: scheduler})`` groups as one solver pool.

    This is the harness entry point: every scheduler of every group
    contributes its program, all programs advance in lock-step, and the
    result is one ``{name: schedule}`` dictionary per group — bitwise what
    per-group sequential ``schedule_expansion`` calls produce.

    ``fallback_out``, when given, is rewritten to one ``{reason: count}``
    tally per *group*, merging the tallies of every scheduler program the
    group contributed (see :func:`run_programs`).
    """
    programs: List[SchedulerProgram] = []
    placements: List[Tuple[int, str]] = []
    for group, (expansion, methods) in enumerate(items):
        for name, scheduler in methods.items():
            programs.append(scheduler.schedule_program(expansion))
            placements.append((group, name))
    program_reasons: Optional[List[Dict[str, int]]] = [] if fallback_out is not None else None
    with _telemetry().span("plan.batched"):
        schedules = run_programs(programs, memo=memo, fallback_out=program_reasons)
    out: List[Dict[str, StaticSchedule]] = [{} for _ in items]
    for (group, name), schedule in zip(placements, schedules):
        out[group][name] = schedule
    if fallback_out is not None and program_reasons is not None:
        fallback_out[:] = [{} for _ in items]
        for (group, _), tally in zip(placements, program_reasons):
            merged = fallback_out[group]
            for reason, count in tally.items():
                merged[reason] = merged.get(reason, 0) + count
    return out
