"""Stochastic ACS: probability-weighted objective (Section 3.2, optional extension).

The paper notes that "the probability weighted workload can be used in the
objective function if the probability density function is known", and falls
back to the ACEC as a good-enough approximation.  This module implements the
full option: the objective becomes the *expected* runtime energy over a set of
sampled workload scenarios (sample-average approximation), each evaluated with
the same greedy-reclamation propagation used by the plain ACS objective.

For symmetric distributions (the paper's truncated normal) the ACEC
approximation is excellent and the two schedulers produce nearly identical
schedules; for skewed distributions — e.g. the bimodal "usually short,
occasionally worst-case" pattern the abstract motivates — the stochastic
variant can place end-times noticeably better.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.preemption import FullyPreemptiveSchedule
from ..core.errors import SchedulingError
from ..workloads.distributions import NormalWorkload, WorkloadModel
from .base import VoltageScheduler
from .batched_solver import NLPSolveTask, run_program
from .nlp import ReducedNLP, SolverOptions
from .schedule import StaticSchedule

__all__ = ["StochasticACSScheduler", "sample_scenarios"]


def sample_scenarios(expansion: FullyPreemptiveSchedule, workload: WorkloadModel,
                     n_scenarios: int, seed: Optional[int] = None) -> List[Tuple[float, Dict[str, float]]]:
    """Draw equally weighted workload scenarios for every job of the expansion."""
    if n_scenarios <= 0:
        raise SchedulingError("n_scenarios must be positive")
    rng = np.random.default_rng(seed)
    scenarios: List[Tuple[float, Dict[str, float]]] = []
    for _ in range(n_scenarios):
        actual = {
            instance.key: float(min(max(workload.sample(rng, instance.task), 0.0), instance.wcec))
            for instance in expansion.instances
        }
        scenarios.append((1.0, actual))
    return scenarios


@dataclass
class StochasticACSScheduler(VoltageScheduler):
    """ACS with a sample-average (probability-weighted) objective.

    Parameters
    ----------
    processor:
        The DVS processor model.
    workload:
        The workload distribution to sample scenarios from (defaults to the
        paper's truncated normal).
    n_scenarios:
        Number of sampled scenarios in the objective.  A handful is enough in
        practice; the cost of one objective evaluation grows linearly with it.
    seed:
        Seed of the scenario sampler (fixed scenarios keep the NLP deterministic).
    options:
        Solver options.
    """

    workload: WorkloadModel = field(default_factory=NormalWorkload)
    n_scenarios: int = 8
    seed: Optional[int] = 20050307
    options: SolverOptions = field(default_factory=SolverOptions)

    @property
    def name(self) -> str:
        return "acs_stochastic"

    def schedule_expansion(self, expansion: FullyPreemptiveSchedule) -> StaticSchedule:
        return run_program(self.schedule_program(expansion))

    def schedule_program(self, expansion: FullyPreemptiveSchedule):
        """The sample-average solve sequence as a batchable wave program.

        Mirrors :meth:`ACSScheduler.schedule_program`: wave 1 pairs the
        scenario-weighted solve with the WCS warm start (the WCS problem is
        the same reduced NLP :class:`~repro.offline.wcs.WCSScheduler` solves),
        wave 2 re-solves the weighted objective from the WCS solution.
        """
        scenarios = sample_scenarios(expansion, self.workload, self.n_scenarios, self.seed)
        nlp = ReducedNLP(expansion, self.processor, workload_mode="acec",
                         options=self.options, scenarios=scenarios)
        # Warm start from the WCS solution and keep it as a feasible candidate,
        # mirroring ACSScheduler's multi-seed strategy.
        wcs_nlp = ReducedNLP(expansion, self.processor, workload_mode="wcec", options=self.options)
        plain, wcs_schedule = yield (NLPSolveTask(nlp), NLPSolveTask(wcs_nlp))
        wcs_vectors = nlp.pack(wcs_schedule.end_times(), wcs_schedule.wc_budgets())
        (seeded,) = yield (NLPSolveTask(nlp, x0=wcs_vectors),)
        candidates = [plain, seeded, StaticSchedule.from_vectors(
            expansion, wcs_schedule.end_times(), wcs_schedule.wc_budgets(),
            method=self.name,
            objective_value=float(nlp.objective(wcs_vectors)),
            metadata={**wcs_schedule.metadata, "seed": "wcs-as-is"},
        )]
        best = min(candidates, key=lambda schedule: schedule.objective_value)
        best.validate(self.processor)
        best.metadata.setdefault("n_scenarios", self.n_scenarios)
        best.method = self.name
        return best
