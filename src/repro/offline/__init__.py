"""Offline (static) voltage scheduling: ACS, WCS, literal NLP and baselines."""

from .acs import ACSScheduler
from .base import VoltageScheduler
from .baselines import ConstantSpeedScheduler, MaxSpeedScheduler
from .batched_solver import (
    NLPSolveTask,
    SolveMemo,
    default_solve_memo,
    plan_expansions,
    run_program,
    run_programs,
    solve_fallback_reason,
    solve_tasks,
)
from .evaluation import (
    AnalyticOutcome,
    CompiledEvaluation,
    average_case_energy,
    evaluate_schedule,
    evaluate_vectors,
    worst_case_energy,
)
from .initialization import proportional_budget_vectors, worst_case_simulation_vectors
from .nlp import ReducedNLP, SolverOptions
from .nlp_literal import LiteralNLPScheduler
from .nonpreemptive import explicit_order_policy, frame_based_taskset
from .schedule import ScheduledSubInstance, StaticSchedule
from .stochastic import StochasticACSScheduler, sample_scenarios
from .wcs import WCSScheduler

__all__ = [
    "VoltageScheduler",
    "ACSScheduler",
    "WCSScheduler",
    "StochasticACSScheduler",
    "sample_scenarios",
    "NLPSolveTask",
    "SolveMemo",
    "default_solve_memo",
    "plan_expansions",
    "run_program",
    "run_programs",
    "solve_fallback_reason",
    "solve_tasks",
    "LiteralNLPScheduler",
    "MaxSpeedScheduler",
    "ConstantSpeedScheduler",
    "ReducedNLP",
    "SolverOptions",
    "StaticSchedule",
    "ScheduledSubInstance",
    "AnalyticOutcome",
    "CompiledEvaluation",
    "evaluate_schedule",
    "evaluate_vectors",
    "average_case_energy",
    "worst_case_energy",
    "worst_case_simulation_vectors",
    "proportional_budget_vectors",
    "frame_based_taskset",
    "explicit_order_policy",
]
