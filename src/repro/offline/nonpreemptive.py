"""Helpers for non-preemptive frame-based systems (the paper's motivational example).

Section 2.2 of the paper illustrates the idea on a *non-preemptive* frame: a
fixed sequence of tasks, all released at time 0 and sharing the frame deadline.
Such a system is a degenerate case of the preemptive machinery: when every
task shares the same release time and the frame length as period, no task is
ever preempted, every job has exactly one sub-instance and the total order is
simply the chosen execution order.  This module builds the corresponding
:class:`~repro.core.taskset.TaskSet` so the regular ACS/WCS schedulers and the
runtime simulator can be reused unchanged for the Table 1 / Figure 1 / Figure 2
experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.errors import InvalidTaskSetError
from ..core.task import Task
from ..core.taskset import TaskSet

__all__ = ["frame_based_taskset", "explicit_order_policy"]


def explicit_order_policy(order: Sequence[str]):
    """Priority policy that encodes a fixed execution order.

    The first task in ``order`` gets the highest priority, so a fixed-priority
    dispatcher with a common release time executes the frame exactly in the
    given order without preemption.
    """
    order = list(order)

    def policy(tasks: Sequence[Task]) -> Dict[str, int]:
        names = {task.name for task in tasks}
        unknown = [name for name in order if name not in names]
        if unknown:
            raise InvalidTaskSetError(f"execution order mentions unknown tasks: {unknown}")
        missing = [name for name in names if name not in order]
        if missing:
            raise InvalidTaskSetError(f"execution order is missing tasks: {sorted(missing)}")
        return {name: index for index, name in enumerate(order)}

    return policy


def frame_based_taskset(tasks: Sequence[Task], frame_length: float,
                        order: Optional[Sequence[str]] = None,
                        name: str = "frame") -> TaskSet:
    """Build a non-preemptive frame as a degenerate preemptive task set.

    Every task is given the frame length as its period and deadline and a
    phase of zero; priorities encode the execution ``order`` (defaults to the
    order in which the tasks are passed).

    Parameters
    ----------
    tasks:
        Tasks with their WCEC/ACEC/BCEC and capacitance; period, deadline and
        phase are overridden.
    frame_length:
        The frame (hyperperiod) length — also every task's deadline.
    order:
        Execution order as a list of task names; defaults to the given order.
    """
    if frame_length <= 0:
        raise InvalidTaskSetError(f"frame_length must be positive, got {frame_length}")
    rebuilt: List[Task] = []
    for task in tasks:
        rebuilt.append(
            Task(
                name=task.name,
                period=frame_length,
                wcec=task.wcec,
                acec=task.acec,
                bcec=task.bcec,
                deadline=frame_length,
                ceff=task.ceff,
                phase=0.0,
            )
        )
    execution_order = list(order) if order is not None else [t.name for t in rebuilt]
    return TaskSet(rebuilt, priority_policy=explicit_order_policy(execution_order), name=name)
