"""Static voltage-schedule data structures.

The output of every offline scheduler (ACS, WCS, the baselines, the
non-preemptive variant) is a :class:`StaticSchedule`: for each sub-instance of
the fully preemptive expansion it records

* ``end_time`` — the planned end-time ``E`` passed to the online DVS policy, and
* ``wc_budget`` — the worst-case cycle budget ``w`` of the sub-instance
  (the budgets of one job sum to its WCEC).

Everything else the runtime needs (speeds, voltages) is derived from these two
numbers, exactly as in the paper.  The schedule also keeps the derived
average-case budgets (sequential fill of the ACEC) for reporting and for the
literal NLP formulation's cross-checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from ..analysis.preemption import FullyPreemptiveSchedule
from ..core.errors import SchedulingError
from ..core.task import SubInstance, TaskInstance
from ..core.workload import fill_average_workloads
from ..power.processor import ProcessorModel

__all__ = ["ScheduledSubInstance", "StaticSchedule"]


@dataclass(frozen=True)
class ScheduledSubInstance:
    """One sub-instance of the fully preemptive schedule with its NLP decisions."""

    sub: SubInstance
    end_time: float
    wc_budget: float
    avg_budget: float = 0.0

    @property
    def key(self) -> str:
        return self.sub.key

    @property
    def instance(self) -> TaskInstance:
        return self.sub.instance

    @property
    def order(self) -> int:
        return self.sub.order

    def planned_wc_speed(self, planned_start: float, processor: ProcessorModel) -> float:
        """Frequency the static schedule plans for the worst case from ``planned_start``."""
        available = self.end_time - planned_start
        if available <= 0:
            return processor.fmax
        return processor.clip_frequency(self.wc_budget / available)


@dataclass
class StaticSchedule:
    """A complete offline voltage schedule over one hyperperiod.

    Attributes
    ----------
    expansion:
        The fully preemptive expansion the schedule was computed for.
    entries:
        One :class:`ScheduledSubInstance` per sub-instance, in total order.
    method:
        Name of the scheduler that produced it (``"acs"``, ``"wcs"``, ...).
    objective_value:
        The optimiser's final objective (average-case energy estimate), when
        available.
    metadata:
        Free-form diagnostic information (solver status, iterations, ...).
    """

    expansion: FullyPreemptiveSchedule
    entries: List[ScheduledSubInstance]
    method: str = "unspecified"
    objective_value: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict)
    _entry_index: Optional[Dict[str, ScheduledSubInstance]] = field(
        init=False, repr=False, compare=False, default=None)
    _instance_index: Optional[Dict[str, List[ScheduledSubInstance]]] = field(
        init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if len(self.entries) != len(self.expansion.sub_instances):
            raise SchedulingError(
                f"schedule has {len(self.entries)} entries but the expansion has "
                f"{len(self.expansion.sub_instances)} sub-instances"
            )
        self.entries = sorted(self.entries, key=lambda e: e.order)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[ScheduledSubInstance]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> ScheduledSubInstance:
        return self.entries[index]

    def entries_for_instance(self, instance: TaskInstance) -> List[ScheduledSubInstance]:
        """Entries of one job, in sub-index order."""
        if self._instance_index is None:
            grouped: Dict[str, List[ScheduledSubInstance]] = {}
            for entry in self.entries:
                grouped.setdefault(entry.instance.key, []).append(entry)
            for entries in grouped.values():
                entries.sort(key=lambda e: e.sub.sub_index)
            self._instance_index = grouped
        return list(self._instance_index.get(instance.key, []))

    def entry_by_key(self, key: str) -> ScheduledSubInstance:
        if self._entry_index is None:
            self._entry_index = {entry.key: entry for entry in self.entries}
        try:
            return self._entry_index[key]
        except KeyError:
            raise KeyError(key) from None

    def end_times(self) -> List[float]:
        """End-times in total order."""
        return [e.end_time for e in self.entries]

    def wc_budgets(self) -> List[float]:
        """Worst-case budgets in total order."""
        return [e.wc_budget for e in self.entries]

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self, processor: ProcessorModel, *, tol: float = 1e-6) -> None:
        """Check the worst-case feasibility invariants of the schedule.

        * every end-time lies inside its sub-instance's slot;
        * consecutive end-times leave room for the worst-case budget at
          maximum speed (constraint (8) of the paper);
        * the budgets of one job sum to its WCEC and are non-negative.
        """
        previous_end = 0.0
        for entry in self.entries:
            sub = entry.sub
            scale = max(1.0, abs(entry.end_time))
            if entry.wc_budget < -tol:
                raise SchedulingError(f"{entry.key}: negative worst-case budget {entry.wc_budget}")
            if entry.end_time > sub.slot_end + tol * scale:
                raise SchedulingError(
                    f"{entry.key}: end-time {entry.end_time} exceeds the slot end {sub.slot_end}"
                )
            if entry.wc_budget <= tol * max(1.0, entry.instance.wcec):
                # A sub-instance with no worst-case budget executes nothing at
                # runtime; its end-time neither needs chain room nor gates the
                # sub-instances that follow it.
                continue
            required = entry.wc_budget / processor.fmax
            earliest_start = max(previous_end, sub.slot_start)
            if entry.end_time + tol * scale < earliest_start + required:
                raise SchedulingError(
                    f"{entry.key}: end-time {entry.end_time} leaves only "
                    f"{entry.end_time - earliest_start:.6g} time units but the worst-case budget "
                    f"needs {required:.6g} at maximum speed"
                )
            previous_end = max(previous_end, entry.end_time)
        for instance in self.expansion.instances:
            entries = self.entries_for_instance(instance)
            total = sum(e.wc_budget for e in entries)
            if abs(total - instance.wcec) > tol * max(1.0, instance.wcec):
                raise SchedulingError(
                    f"instance {instance.key}: worst-case budgets sum to {total}, expected WCEC {instance.wcec}"
                )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_vectors(cls, expansion: FullyPreemptiveSchedule, end_times: Sequence[float],
                     wc_budgets: Sequence[float], *, method: str = "unspecified",
                     objective_value: Optional[float] = None,
                     metadata: Optional[Dict[str, object]] = None) -> "StaticSchedule":
        """Build a schedule from end-time / budget vectors in total order."""
        subs = expansion.sub_instances
        if len(end_times) != len(subs) or len(wc_budgets) != len(subs):
            raise SchedulingError(
                f"expected {len(subs)} end-times and budgets, got {len(end_times)} and {len(wc_budgets)}"
            )
        # Derive the average-case budgets per job with the sequential-fill rule.
        avg_budget_by_key: Dict[str, float] = {}
        by_instance: Dict[str, List[int]] = {}
        for index, sub in enumerate(subs):
            by_instance.setdefault(sub.instance.key, []).append(index)
        for instance_key, indices in by_instance.items():
            indices_sorted = sorted(indices, key=lambda i: subs[i].sub_index)
            budgets = [max(float(wc_budgets[i]), 0.0) for i in indices_sorted]
            instance = subs[indices_sorted[0]].instance
            acec = min(instance.acec, sum(budgets))
            averages = fill_average_workloads(budgets, acec)
            for i, avg in zip(indices_sorted, averages):
                avg_budget_by_key[subs[i].key] = avg
        entries = [
            ScheduledSubInstance(
                sub=sub,
                end_time=float(end_times[index]),
                wc_budget=max(float(wc_budgets[index]), 0.0),
                avg_budget=avg_budget_by_key[sub.key],
            )
            for index, sub in enumerate(subs)
        ]
        return cls(
            expansion=expansion,
            entries=entries,
            method=method,
            objective_value=objective_value,
            metadata=dict(metadata or {}),
        )

    def describe(self) -> str:
        """Multi-line, human-readable table of the schedule."""
        lines = [f"StaticSchedule ({self.method}): {len(self.entries)} sub-instances"]
        for entry in self.entries:
            lines.append(
                f"  {entry.key:<14s} slot=[{entry.sub.slot_start:8.3f}, {entry.sub.slot_end:8.3f}) "
                f"end={entry.end_time:8.3f} wc_budget={entry.wc_budget:10.3f} "
                f"avg_budget={entry.avg_budget:10.3f}"
            )
        return "\n".join(lines)
