"""Literal transcription of the paper's NLP formulation (Section 3.2).

The decision variables are, for every sub-instance ``m`` of the fully
preemptive schedule (in total order):

========  =====================================================
``S_m``   average-case start time
``E_m``   end-time (shared between average and worst case)
``a_m``   average workload (cycles)
``w_m``   worst-case workload (cycles)
``Va_m``  supply voltage used for the average workload
``Vw_m``  supply voltage used for the worst-case workload
========  =====================================================

subject to the paper's constraints:

* (5)/(6)  release-time and deadline windows for ``S_m`` and ``E_m``;
* (7)      voltage range;
* (8)      worst-case chaining  ``E_m − E_{m−1} ≥ w_m · t_cycle(Vw_m)``;
* (9)      greedy-slack bound   ``S_m ≥ E_{m−1} − (w_{m−1}·t(Vw_{m−1}) − a_{m−1}·t(Va_{m−1}))``;
*          average-case fit     ``E_m − S_m ≥ a_m · t_cycle(Va_m)``;
* (10/11)  per-job workload conservation  ``Σ a = ACEC``, ``Σ w = WCEC``;
* (12)     ``0 ≤ a_m ≤ w_m``;
* (13/14)  the case-1/case-2 rule: when the cumulative worst-case budget up to
           ``m`` does not exceed the ACEC, the average workload must equal the
           worst-case workload (earlier sub-instances fill up first).

and the objective ``min Σ Ceff · a_m · Va_m²``.

This formulation has six variables per sub-instance and genuinely non-convex
constraints, so it only scales to small expansions; the reduced formulation in
:mod:`repro.offline.nlp` is the production path.  Both are cross-checked in
``tests/offline/test_nlp_literal.py``.

**When to use which:** use this module only as a correctness oracle — to
verify the reduced formulation reproduces the paper's optimum on a small
task set, or to inspect the paper's variables (voltages, average workloads)
directly.  Everything else — experiments, the CLI, the case studies — goes
through :mod:`repro.offline.nlp`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np
from scipy import optimize

from ..analysis.preemption import FullyPreemptiveSchedule
from ..core.errors import SchedulingError
from ..core.workload import fill_average_workloads
from .base import VoltageScheduler
from .evaluation import evaluate_vectors
from .nlp import ReducedNLP, SolverOptions
from .schedule import StaticSchedule

__all__ = ["LiteralNLPScheduler"]

_BIG_M = 1e3


@dataclass
class LiteralNLPScheduler(VoltageScheduler):
    """Solve the paper's Section 3.2 formulation directly with SLSQP."""

    options: SolverOptions = field(default_factory=lambda: SolverOptions(maxiter=300))
    seed_with_reduced: bool = True

    @property
    def name(self) -> str:
        return "acs_literal"

    # ------------------------------------------------------------------ #
    # Variable layout: x = [S | E | a | w | Va | Vw], each block of length M.
    # ------------------------------------------------------------------ #
    def _blocks(self, x: np.ndarray, n: int) -> Tuple[np.ndarray, ...]:
        return tuple(x[i * n:(i + 1) * n] for i in range(6))

    def schedule_expansion(self, expansion: FullyPreemptiveSchedule) -> StaticSchedule:
        subs = expansion.sub_instances
        n = len(subs)
        processor = self.processor

        ceff = np.array([sub.task.ceff for sub in subs])
        releases = np.array([sub.instance.release for sub in subs])
        slot_starts = np.array([sub.slot_start for sub in subs])
        slot_ends = np.array([sub.slot_end for sub in subs])
        wcecs = {inst.key: inst.wcec for inst in expansion.instances}
        acecs = {inst.key: inst.acec for inst in expansion.instances}

        def objective(x: np.ndarray) -> float:
            _, _, a, _, va, _ = self._blocks(x, n)
            return float(np.sum(ceff * a * va * va))

        def constraints_vector(x: np.ndarray) -> np.ndarray:
            s, e, a, w, va, vw = self._blocks(x, n)
            values: List[float] = []
            freq_a = np.array([processor.frequency(max(v, processor.vmin)) for v in va])
            freq_w = np.array([processor.frequency(max(v, processor.vmin)) for v in vw])
            # Average-case fit: (E − S)·f(Va) − a ≥ 0
            values.extend((e - s) * freq_a - a)
            # Worst-case chaining (8): release guard + chain over the total order.
            values.extend((e - slot_starts) * freq_w - w)
            values.extend((e[1:] - e[:-1]) * freq_w[1:] - w[1:])
            # Greedy-slack bound (9).
            wc_time = w / np.maximum(freq_w, 1e-12)
            avg_time = a / np.maximum(freq_a, 1e-12)
            values.extend(s[1:] - e[:-1] + wc_time[:-1] - avg_time[:-1])
            # a ≤ w (12).
            values.extend(w - a)
            # Case-1 rule (13/14): when the cumulative worst-case budget of the
            # job up to this sub-instance is below the ACEC, force a = w (from
            # below; a ≤ w caps it from above).
            for instance in expansion.instances:
                indices = [sub.order for sub in expansion.sub_instances_of(instance)]
                cumulative = 0.0
                for order in indices:
                    cumulative += w[order]
                    overshoot = max(0.0, cumulative - acecs[instance.key])
                    values.append(a[order] - w[order] + _BIG_M * overshoot)
            return np.asarray(values)

        def equality_vector(x: np.ndarray) -> np.ndarray:
            _, _, a, w, _, _ = self._blocks(x, n)
            values: List[float] = []
            for instance in expansion.instances:
                indices = [sub.order for sub in expansion.sub_instances_of(instance)]
                values.append(float(np.sum(a[indices])) - acecs[instance.key])
                values.append(float(np.sum(w[indices])) - wcecs[instance.key])
            return np.asarray(values)

        bounds: List[Tuple[float, float]] = []
        bounds.extend((releases[i], slot_ends[i]) for i in range(n))          # S
        bounds.extend((slot_starts[i], slot_ends[i]) for i in range(n))       # E
        for sub in subs:                                                       # a
            bounds.append((0.0, sub.instance.acec))
        for sub in subs:                                                       # w
            bounds.append((0.0, sub.instance.wcec))
        bounds.extend((processor.vmin, processor.vmax) for _ in range(n))      # Va
        bounds.extend((processor.vmin, processor.vmax) for _ in range(n))      # Vw

        x0 = self._initial_guess(expansion)
        result = optimize.minimize(
            objective,
            x0,
            method="SLSQP",
            bounds=bounds,
            constraints=[
                {"type": "ineq", "fun": constraints_vector},
                {"type": "eq", "fun": equality_vector},
            ],
            options={"maxiter": self.options.maxiter, "ftol": self.options.ftol,
                     "disp": self.options.verbose},
        )

        _, e_opt, _, w_opt, _, _ = self._blocks(np.asarray(result.x, dtype=float), n)
        metadata = {
            "solver_status": int(result.status),
            "solver_message": str(result.message),
            "fallback": False,
            "formulation": "literal",
        }
        # Re-use the reduced solver's repair/fallback machinery for the output.
        reduced = ReducedNLP(expansion, processor, workload_mode="acec", options=self.options)
        repaired = reduced._repair(e_opt, w_opt)
        if repaired is not None:
            candidate = StaticSchedule.from_vectors(
                expansion, repaired[0], repaired[1], method=self.name,
                objective_value=float(result.fun), metadata=metadata,
            )
            try:
                candidate.validate(processor)
                return candidate
            except SchedulingError:
                pass
        metadata["fallback"] = True
        end_times, budgets = reduced.fallback_vectors()
        schedule = StaticSchedule.from_vectors(
            expansion, end_times, budgets, method=self.name, metadata=metadata,
        )
        schedule.validate(processor)
        return schedule

    # ------------------------------------------------------------------ #
    # Initial guess
    # ------------------------------------------------------------------ #
    def _initial_guess(self, expansion: FullyPreemptiveSchedule) -> np.ndarray:
        subs = expansion.sub_instances
        n = len(subs)
        processor = self.processor
        reduced = ReducedNLP(expansion, processor, workload_mode="acec", options=self.options)
        if self.seed_with_reduced:
            seed_schedule = reduced.solve()
        else:
            end_times, budgets = reduced.fallback_vectors()
            seed_schedule = StaticSchedule.from_vectors(expansion, end_times, budgets, method="seed")
        end_times = np.array(seed_schedule.end_times())
        budgets = np.array(seed_schedule.wc_budgets())

        averages = np.zeros(n)
        for instance in expansion.instances:
            indices = [sub.order for sub in expansion.sub_instances_of(instance)]
            fills = fill_average_workloads([budgets[i] for i in indices], instance.acec)
            for i, value in zip(indices, fills):
                averages[i] = value

        outcome = evaluate_vectors(expansion, end_times, budgets, processor)
        finishes = np.array(outcome.sub_finish_times)
        starts = np.empty(n)
        previous = 0.0
        for index, sub in enumerate(subs):
            starts[index] = max(sub.instance.release, previous)
            previous = max(previous, finishes[index])

        va = np.empty(n)
        vw = np.empty(n)
        for index, sub in enumerate(subs):
            available_wc = max(end_times[index] - max(starts[index], sub.slot_start), 1e-9)
            vw[index] = processor.voltage_for_frequency(budgets[index] / available_wc if budgets[index] > 0 else processor.fmin)
            available_avg = max(end_times[index] - starts[index], 1e-9)
            va[index] = processor.voltage_for_frequency(averages[index] / available_avg if averages[index] > 0 else processor.fmin)
        return np.concatenate([starts, end_times, averages, budgets, va, vw])
