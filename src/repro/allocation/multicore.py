"""Per-core offline planning on top of a task-to-core partition.

A :class:`MulticoreProblem` couples a task set, a processor model (one
identical DVS processor per core — the homogeneous-multicore assumption), a
core count and a partitioning heuristic.  :func:`plan_multicore` then runs the
existing single-core offline pipeline *independently per core* — the same
:class:`~repro.offline.nlp.ReducedNLP` (with its compiled evaluation and
vectorized Jacobian) that powers the single-core reproduction — and returns a
:class:`MulticorePlan`: one :class:`~repro.offline.schedule.StaticSchedule`
per populated core.

Because the per-core problems are independent once the partition is fixed,
planning parallelises trivially: ``jobs=N`` fans the per-core NLP solves out
over a process pool, exactly like the experiment harness's sweep execution,
and the result is identical for any worker count (each solve is a pure
function of its core's task set).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.errors import AllocationError
from ..core.taskset import TaskSet
from ..offline.schedule import StaticSchedule
from ..power.processor import ProcessorModel
from ..telemetry.core import current as _telemetry
from .partitioners import Partition, get_partitioner

__all__ = ["MulticoreProblem", "MulticorePlan", "plan_multicore"]


@dataclass(frozen=True)
class MulticoreProblem:
    """One partitioned-multiprocessor planning problem.

    Attributes
    ----------
    taskset:
        The global task set to distribute.
    processor:
        The (identical) DVS processor model of every core.
    n_cores:
        Number of cores ``m``.
    partitioner:
        Registry name of the allocation heuristic
        (see :func:`~repro.allocation.partitioners.available_partitioners`).
    method:
        Registry name of the offline scheduler run on every core
        (see :func:`~repro.experiments.harness.scheduler_names`).
    """

    taskset: TaskSet
    processor: ProcessorModel
    n_cores: int
    partitioner: str = "wfd"
    method: str = "acs"

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise AllocationError(f"n_cores must be at least 1, got {self.n_cores}")

    def partition(self) -> Partition:
        """Run the configured partitioning heuristic (validated output)."""
        heuristic = get_partitioner(self.partitioner, self.processor)
        return heuristic.partition(self.taskset, self.n_cores)


@dataclass
class MulticorePlan:
    """Per-core static schedules over a validated partition.

    ``schedules[k]`` is the offline schedule of core ``k`` (``None`` for idle
    cores).  ``hyperperiod`` is the *global* hyperperiod of the parent task
    set; every populated core's own hyperperiod divides it, which is what lets
    the runtime simulate all cores over a common wall-clock horizon.
    """

    partition: Partition
    schedules: List[Optional[StaticSchedule]]
    method: str
    processor: ProcessorModel

    def __post_init__(self) -> None:
        if len(self.schedules) != self.partition.n_cores:
            raise AllocationError(
                f"plan has {len(self.schedules)} schedules for "
                f"{self.partition.n_cores} cores"
            )
        for core, (core_set, schedule) in enumerate(
                zip(self.partition.core_tasksets, self.schedules)):
            if (core_set is None) != (schedule is None):
                raise AllocationError(
                    f"core {core}: populated cores need a schedule and idle cores must not have one"
                )

    @property
    def n_cores(self) -> int:
        return self.partition.n_cores

    @property
    def hyperperiod(self) -> float:
        """The global frame: LCM of all task periods (not per-core)."""
        return self.partition.taskset.hyperperiod

    def hyperperiods_per_frame(self, core: int) -> int:
        """How many of core ``core``'s own hyperperiods fit in one global frame."""
        schedule = self.schedules[core]
        if schedule is None:
            raise AllocationError(f"core {core} is idle and has no schedule")
        ratio = self.hyperperiod / schedule.expansion.horizon
        repeats = round(ratio)
        if abs(ratio - repeats) > 1e-9 * max(1.0, ratio) or repeats < 1:
            raise AllocationError(
                f"core {core}: hyperperiod {schedule.expansion.horizon:g} does not "
                f"divide the global hyperperiod {self.hyperperiod:g}"
            )
        return repeats

    def describe(self) -> str:
        """Human-readable summary: the partition plus per-core schedule sizes."""
        lines = [self.partition.describe(),
                 f"method={self.method} global hyperperiod={self.hyperperiod:g}"]
        for core, schedule in enumerate(self.schedules):
            if schedule is None:
                continue
            lines.append(
                f"  core {core}: {len(schedule)} sub-instances, "
                f"horizon={schedule.expansion.horizon:g}, "
                f"objective={schedule.objective_value}"
            )
        return "\n".join(lines)


def _schedule_core(work: Tuple[TaskSet, ProcessorModel, str]) -> StaticSchedule:
    """Worker entry point (module-level so the process pool can pickle it)."""
    # Imported lazily: the experiments package itself builds on this module.
    from ..experiments.harness import make_schedulers

    core_taskset, processor, method = work
    scheduler = make_schedulers([method], processor)[method]
    return scheduler.schedule(core_taskset)


def plan_multicore(problem: MulticoreProblem, *, jobs: int = 1,
                   partition: Optional[Partition] = None) -> MulticorePlan:
    """Partition (unless one is given) and solve the per-core offline NLPs.

    ``jobs=1`` solves in-process; ``jobs>1`` distributes the per-core solves
    over a :class:`~concurrent.futures.ProcessPoolExecutor`.  Each solve
    depends only on its own core's task set, so the plan is identical for any
    worker count.
    """
    if jobs < 1:
        raise AllocationError("jobs must be at least 1")
    resolved = partition if partition is not None else problem.partition()
    if resolved.n_cores != problem.n_cores:
        raise AllocationError(
            f"partition has {resolved.n_cores} cores but the problem asks for {problem.n_cores}"
        )
    populated = resolved.used_cores()
    work = [(resolved.core_tasksets[core], problem.processor, problem.method)
            for core in populated]
    telemetry = _telemetry()
    telemetry.count("plan.multicore_cores", len(work))
    with telemetry.span("plan.multicore"):
        if jobs == 1 or len(work) <= 1:
            solved = [_schedule_core(unit) for unit in work]
        else:
            with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
                solved = list(pool.map(_schedule_core, work))
    schedules: List[Optional[StaticSchedule]] = [None] * resolved.n_cores
    for core, schedule in zip(populated, solved):
        schedules[core] = schedule
    return MulticorePlan(
        partition=resolved,
        schedules=schedules,
        method=problem.method,
        processor=problem.processor,
    )
