"""Partitioned-multiprocessor allocation: task-to-core heuristics and per-core planning.

The subsystem decomposes a multiprocessor DVS problem the standard
partitioned way — allocate tasks to cores, then solve each core with the
existing single-core pipeline:

* :mod:`repro.allocation.partitioners` — first/best/worst-fit-decreasing and
  energy-aware allocation heuristics behind the :class:`Partitioner`
  interface, producing validated :class:`Partition` objects;
* :mod:`repro.allocation.multicore` — :class:`MulticoreProblem` /
  :class:`MulticorePlan` and :func:`plan_multicore`, which runs the offline
  NLP independently (and optionally in parallel) per core.

The runtime counterpart — simulating a plan on ``m`` cores — lives in
:mod:`repro.runtime.multicore`.
"""

from .multicore import MulticorePlan, MulticoreProblem, plan_multicore
from .partitioners import (
    BestFitDecreasingPartitioner,
    EnergyAwarePartitioner,
    FirstFitDecreasingPartitioner,
    Partition,
    Partitioner,
    WorstFitDecreasingPartitioner,
    available_partitioners,
    get_partitioner,
    predicted_energy_rate,
)

__all__ = [
    "Partition",
    "Partitioner",
    "FirstFitDecreasingPartitioner",
    "BestFitDecreasingPartitioner",
    "WorstFitDecreasingPartitioner",
    "EnergyAwarePartitioner",
    "available_partitioners",
    "get_partitioner",
    "predicted_energy_rate",
    "MulticoreProblem",
    "MulticorePlan",
    "plan_multicore",
]
