"""Task-to-core partitioning heuristics for partitioned multiprocessor DVS.

Partitioned scheduling decomposes the multiprocessor problem into a
*resource-allocation* step (assign every task to exactly one core) followed by
``m`` independent single-core problems — the decomposition the offline NLP and
the online runtime of this library already solve.  This module provides the
allocation step: classical bin-packing heuristics over the task set, each
behind the common :class:`Partitioner` interface, producing a validated
:class:`Partition`.

All heuristics place tasks in decreasing order of worst-case utilisation
(``wcec / period`` — the standard "decreasing" variants, which carry the known
approximation guarantees) and only ever place a task on a core whose resulting
task set passes the full single-core feasibility test of
:func:`repro.analysis.feasibility.check_feasibility` at maximum speed — the
same precondition the per-core NLP requires.  They differ in *which* feasible
core they pick:

``ffd`` (first-fit decreasing)
    the lowest-indexed feasible core — packs tightly, tends to leave later
    cores empty;
``bfd`` (best-fit decreasing)
    the feasible core with the highest current utilisation — the classical
    fragmentation-minimising packer;
``wfd`` (worst-fit decreasing)
    the feasible core with the lowest current utilisation — balances load,
    which for DVS is usually the right call: slack is worth energy
    *quadratically*, so spreading it evenly beats concentrating it;
``energy``
    like ``wfd`` but balances the *predicted average-case energy rate* of
    each core instead of raw utilisation, using the same analytic evaluation
    (:class:`~repro.offline.evaluation.CompiledEvaluation`) that drives the
    offline NLP objective — it sees per-task ``ceff`` and ACEC where
    utilisation only sees WCEC.

Per-core priorities are inherited from the parent task set (each core's
:class:`~repro.core.taskset.TaskSet` carries the parent's explicit priority
values), so partitioning never reorders tasks relative to each other.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.feasibility import check_feasibility
from ..analysis.preemption import expand_fully_preemptive
from ..core.errors import AllocationError, InfeasibleTaskSetError
from ..core.task import Task
from ..core.taskset import TaskSet
from ..offline.evaluation import CompiledEvaluation, evaluate_vectors
from ..offline.initialization import proportional_budget_vectors
from ..power.processor import ProcessorModel

__all__ = [
    "Partition",
    "Partitioner",
    "FirstFitDecreasingPartitioner",
    "BestFitDecreasingPartitioner",
    "WorstFitDecreasingPartitioner",
    "EnergyAwarePartitioner",
    "available_partitioners",
    "get_partitioner",
    "predicted_energy_rate",
]


def predicted_energy_rate(taskset: TaskSet, processor: ProcessorModel) -> float:
    """Predicted average-case energy per time unit of ``taskset`` on one core.

    Evaluates the analytic greedy propagation on the heuristic initial
    schedule (:func:`~repro.offline.initialization.proportional_budget_vectors`)
    — cheap enough to call inside a placement loop, yet sensitive to ``ceff``
    and ACEC, which raw utilisation ignores.  The energy is normalised by the
    hyperperiod so that cores whose task subsets have different hyperperiods
    remain comparable.
    """
    expansion = expand_fully_preemptive(taskset)
    end_times, budgets = proportional_budget_vectors(expansion, processor)
    if CompiledEvaluation.supported(processor):
        energy = CompiledEvaluation(expansion, processor).energy(end_times, budgets)
    else:
        energy = evaluate_vectors(expansion, end_times, budgets, processor,
                                  collect_details=False).energy
    return energy / expansion.horizon


@dataclass
class Partition:
    """A validated task-to-core assignment.

    Attributes
    ----------
    taskset:
        The parent (global) task set that was partitioned.
    core_tasksets:
        One :class:`TaskSet` per core (``None`` for idle cores, which happen
        when there are more cores than tasks).  Each core task set inherits
        the parent's priority values explicitly.
    partitioner:
        Registry name of the heuristic that produced the assignment.
    """

    taskset: TaskSet
    core_tasksets: List[Optional[TaskSet]]
    partitioner: str
    _assignment: Dict[str, int] = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        assignment: Dict[str, int] = {}
        for core, core_set in enumerate(self.core_tasksets):
            if core_set is None:
                continue
            for task in core_set:
                if task.name in assignment:
                    raise AllocationError(
                        f"task {task.name!r} assigned to cores "
                        f"{assignment[task.name]} and {core}"
                    )
                assignment[task.name] = core
        parent_names = {task.name for task in self.taskset}
        missing = sorted(parent_names - set(assignment))
        extra = sorted(set(assignment) - parent_names)
        if missing or extra:
            raise AllocationError(
                f"partition does not cover the task set exactly once "
                f"(missing {missing}, extra {extra})"
            )
        self._assignment = assignment

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def n_cores(self) -> int:
        return len(self.core_tasksets)

    @property
    def assignment(self) -> Dict[str, int]:
        """Mapping from task name to core index."""
        return dict(self._assignment)

    def core_of(self, task_name: str) -> int:
        try:
            return self._assignment[task_name]
        except KeyError:
            raise AllocationError(f"unknown task {task_name!r}") from None

    def used_cores(self) -> List[int]:
        """Indices of cores that received at least one task."""
        return [core for core, core_set in enumerate(self.core_tasksets)
                if core_set is not None]

    def utilizations(self, processor: ProcessorModel) -> List[float]:
        """Worst-case utilisation of every core at maximum frequency (0.0 for idle cores)."""
        return [
            0.0 if core_set is None else core_set.utilization(processor.fmax)
            for core_set in self.core_tasksets
        ]

    def average_utilizations(self, processor: ProcessorModel) -> List[float]:
        """Average-case (ACEC) utilisation of every core at maximum frequency."""
        return [
            0.0 if core_set is None else core_set.average_utilization(processor.fmax)
            for core_set in self.core_tasksets
        ]

    def validate(self, processor: ProcessorModel) -> None:
        """Re-check the invariants: exact cover (checked at construction) and per-core feasibility."""
        for core, core_set in enumerate(self.core_tasksets):
            if core_set is None:
                continue
            report = check_feasibility(core_set, processor)
            if not report:
                raise InfeasibleTaskSetError(
                    f"core {core} of partition {self.partitioner!r} is not schedulable: "
                    + "; ".join(report.violations)
                )

    def describe(self) -> str:
        """Human-readable per-core summary."""
        lines = [f"Partition ({self.partitioner}): {len(self._assignment)} tasks "
                 f"on {self.n_cores} cores"]
        for core, core_set in enumerate(self.core_tasksets):
            if core_set is None:
                lines.append(f"  core {core}: idle")
            else:
                names = ", ".join(task.name for task in core_set)
                lines.append(f"  core {core}: {names}")
        return "\n".join(lines)


class Partitioner(ABC):
    """Common interface of the task-to-core allocation heuristics.

    Subclasses implement :meth:`select_core`; the shared :meth:`partition`
    driver handles the decreasing-utilisation placement order, the per-core
    feasibility gate and the final :class:`Partition` validation.
    """

    #: Registry name (set by subclasses).
    name: str = "partitioner"

    def __init__(self, processor: ProcessorModel) -> None:
        self.processor = processor

    # ------------------------------------------------------------------ #
    # Driver
    # ------------------------------------------------------------------ #
    def partition(self, taskset: TaskSet, n_cores: int) -> Partition:
        """Assign every task of ``taskset`` to one of ``n_cores`` cores."""
        if n_cores < 1:
            raise AllocationError(f"n_cores must be at least 1, got {n_cores}")
        priorities = taskset.priorities
        ordered = sorted(
            taskset,
            key=lambda task: (-(task.wcec / task.period), task.name),
        )
        bins: List[List[Task]] = [[] for _ in range(n_cores)]
        for task in ordered:
            # One candidate task set per core, built once and shared between
            # the feasibility gate and select_core (the energy-aware heuristic
            # re-evaluates the same candidates).
            candidates = {
                core: self._make_taskset("candidate", list(bins[core]) + [task],
                                         priorities, core)
                for core in range(n_cores)
            }
            feasible = [core for core in range(n_cores)
                        if check_feasibility(candidates[core], self.processor)]
            if not feasible:
                raise InfeasibleTaskSetError(
                    f"partitioner {self.name!r}: task {task.name!r} "
                    f"(utilisation {task.wcec / task.period / self.processor.fmax:.3f}) "
                    f"fits on none of the {n_cores} cores"
                )
            chosen = self.select_core(task, feasible, bins, priorities, candidates)
            if chosen not in feasible:
                raise AllocationError(
                    f"partitioner {self.name!r} selected infeasible core {chosen}"
                )
            bins[chosen].append(task)
        partition = Partition(
            taskset=taskset,
            core_tasksets=[self._bin_taskset(taskset, bin_tasks, priorities, core)
                           for core, bin_tasks in enumerate(bins)],
            partitioner=self.name,
        )
        partition.validate(self.processor)
        return partition

    @abstractmethod
    def select_core(self, task: Task, feasible: Sequence[int],
                    bins: Sequence[Sequence[Task]],
                    priorities: Dict[str, int],
                    candidates: Dict[int, TaskSet]) -> int:
        """Pick one of the ``feasible`` core indices for ``task``.

        ``candidates[core]`` is the already-built task set of ``core`` with
        ``task`` added — the exact set the feasibility gate just checked.
        """

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _bin_taskset(self, parent: TaskSet, tasks: Sequence[Task],
                     priorities: Dict[str, int], core: int) -> Optional[TaskSet]:
        if not tasks:
            return None
        return self._make_taskset(parent.name, tasks, priorities, core)

    @staticmethod
    def _make_taskset(parent_name: str, tasks: Sequence[Task],
                      priorities: Dict[str, int], core: int) -> TaskSet:
        # The parent's resolved priority values ride along explicitly, so
        # partitioning can never flip the relative priority of two tasks that
        # land on the same core (a fresh RM assignment could, via tie-breaks).
        carried = [replace(task, priority=priorities[task.name]) for task in tasks]
        return TaskSet(carried, priority_policy="explicit",
                       name=f"{parent_name}/core{core}")

    def _bin_utilization(self, bin_tasks: Sequence[Task]) -> float:
        fmax = self.processor.fmax
        return sum(task.utilization(fmax) for task in bin_tasks)


class FirstFitDecreasingPartitioner(Partitioner):
    """First-fit decreasing: the lowest-indexed feasible core."""

    name = "ffd"

    def select_core(self, task: Task, feasible: Sequence[int],
                    bins: Sequence[Sequence[Task]],
                    priorities: Dict[str, int],
                    candidates: Dict[int, TaskSet]) -> int:
        return feasible[0]


class BestFitDecreasingPartitioner(Partitioner):
    """Best-fit decreasing: the feasible core with the highest current utilisation."""

    name = "bfd"

    def select_core(self, task: Task, feasible: Sequence[int],
                    bins: Sequence[Sequence[Task]],
                    priorities: Dict[str, int],
                    candidates: Dict[int, TaskSet]) -> int:
        return max(feasible, key=lambda core: (self._bin_utilization(bins[core]), -core))


class WorstFitDecreasingPartitioner(Partitioner):
    """Worst-fit decreasing: the feasible core with the lowest current utilisation."""

    name = "wfd"

    def select_core(self, task: Task, feasible: Sequence[int],
                    bins: Sequence[Sequence[Task]],
                    priorities: Dict[str, int],
                    candidates: Dict[int, TaskSet]) -> int:
        return min(feasible, key=lambda core: (self._bin_utilization(bins[core]), core))


class EnergyAwarePartitioner(Partitioner):
    """Balance predicted average-case energy instead of raw utilisation.

    For every feasible placement the candidate core's post-placement energy
    rate is predicted with :func:`predicted_energy_rate`; the task goes to the
    core whose prediction is lowest (worst-fit on energy).  This sees per-task
    ``ceff`` and the ACEC — two tasks with equal utilisation but different
    switching capacitance or different average/worst-case gaps are *not*
    interchangeable energy-wise, and this heuristic knows it.
    """

    name = "energy"

    def select_core(self, task: Task, feasible: Sequence[int],
                    bins: Sequence[Sequence[Task]],
                    priorities: Dict[str, int],
                    candidates: Dict[int, TaskSet]) -> int:
        return min(feasible, key=lambda core: (
            predicted_energy_rate(candidates[core], self.processor), core))


_PARTITIONER_FACTORIES = {
    "ffd": FirstFitDecreasingPartitioner,
    "bfd": BestFitDecreasingPartitioner,
    "wfd": WorstFitDecreasingPartitioner,
    "energy": EnergyAwarePartitioner,
}


def available_partitioners() -> Tuple[str, ...]:
    """Registry names accepted by :func:`get_partitioner` (and the CLI)."""
    return tuple(sorted(_PARTITIONER_FACTORIES))


def get_partitioner(name: str, processor: ProcessorModel) -> Partitioner:
    """Instantiate a partitioning heuristic by registry name."""
    try:
        factory = _PARTITIONER_FACTORIES[name.lower()]
    except KeyError:
        known = ", ".join(available_partitioners())
        raise AllocationError(f"unknown partitioner {name!r}; known: {known}") from None
    return factory(processor)
