"""Figure 6(b): ACS vs WCS on the CNC and GAP real-life task sets.

The paper applies the same comparison to two published applications — the CNC
machine controller and the Generic Avionics Platform — and reports the energy
improvement of ACS over WCS for BCEC/WCEC ratios 0.1, 0.5 and 0.9 (up to about
41 % for CNC and 30 % for GAP at ratio 0.1, approaching zero at 0.9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.taskset import TaskSet
from ..power.presets import ideal_processor
from ..power.processor import ProcessorModel
from ..utils.tables import format_markdown_table
from ..workloads.cnc import cnc_taskset
from ..workloads.gap import gap_taskset
from .harness import ComparisonConfig, ComparisonJob, run_comparisons
from .seeding import SIMULATION_STREAM

__all__ = ["Figure6bConfig", "Figure6bPoint", "Figure6bResult", "run_figure6b"]


@dataclass(frozen=True)
class Figure6bConfig:
    """Sweep parameters for the real-life case studies."""

    bcec_wcec_ratios: Sequence[float] = (0.1, 0.5, 0.9)
    hyperperiods_per_point: int = 20
    target_utilization: float = 0.7
    seed: int = 2005
    processor: Optional[ProcessorModel] = None
    applications: Sequence[str] = ("cnc", "gap")
    #: Number of GAP tasks to keep (None = all 17).  The full set expands to a
    #: few hundred sub-instances; smaller values keep quick runs fast.
    gap_tasks: Optional[int] = 8
    #: Worker processes used to execute the sweep (1 = in-process/serial).
    jobs: int = 1

    def resolved_processor(self) -> ProcessorModel:
        return self.processor if self.processor is not None else ideal_processor()


@dataclass(frozen=True)
class Figure6bPoint:
    application: str
    bcec_wcec_ratio: float
    improvement_percent: float
    wcs_energy: float
    acs_energy: float
    deadline_misses: int


@dataclass
class Figure6bResult:
    config: Figure6bConfig
    points: List[Figure6bPoint]

    def point(self, application: str, ratio: float) -> Figure6bPoint:
        for candidate in self.points:
            if candidate.application == application and abs(candidate.bcec_wcec_ratio - ratio) < 1e-12:
                return candidate
        raise KeyError((application, ratio))

    def series(self, application: str) -> List[Tuple[float, float]]:
        """The figure's series for one application: (ratio, improvement %)."""
        return [
            (p.bcec_wcec_ratio, p.improvement_percent)
            for p in sorted(self.points, key=lambda p: p.bcec_wcec_ratio)
            if p.application == application
        ]

    def to_markdown(self) -> str:
        headers = ["BCEC/WCEC"] + [app.upper() for app in self.config.applications]
        rows = []
        for ratio in self.config.bcec_wcec_ratios:
            row: List[object] = [ratio]
            for application in self.config.applications:
                row.append(self.point(application, ratio).improvement_percent)
            rows.append(row)
        return format_markdown_table(headers, rows)


def _application_builders(config: Figure6bConfig) -> Dict[str, Callable[[ProcessorModel, float], TaskSet]]:
    return {
        "cnc": lambda processor, ratio: cnc_taskset(
            processor, target_utilization=config.target_utilization, bcec_wcec_ratio=ratio),
        "gap": lambda processor, ratio: gap_taskset(
            processor, target_utilization=config.target_utilization, bcec_wcec_ratio=ratio,
            n_tasks=config.gap_tasks),
    }


def run_figure6b(config: Optional[Figure6bConfig] = None, *, verbose: bool = False) -> Figure6bResult:
    """Regenerate Figure 6(b)."""
    cfg = config or Figure6bConfig()
    processor = cfg.resolved_processor()
    builders = _application_builders(cfg)
    unknown = [app for app in cfg.applications if app not in builders]
    if unknown:
        raise KeyError(f"unknown applications {unknown}; known: {sorted(builders)}")

    units: List[ComparisonJob] = []
    for app_index, application in enumerate(cfg.applications):
        for ratio_index, ratio in enumerate(cfg.bcec_wcec_ratios):
            units.append(ComparisonJob(
                processor=processor,
                config=ComparisonConfig(
                    n_hyperperiods=cfg.hyperperiods_per_point,
                    seed=cfg.seed,
                ).with_derived_seed(app_index, ratio_index, SIMULATION_STREAM),
                taskset=builders[application](processor, ratio),
            ))
    results = run_comparisons(units, n_jobs=cfg.jobs)

    points: List[Figure6bPoint] = []
    cursor = iter(results)
    for application in cfg.applications:
        for ratio in cfg.bcec_wcec_ratios:
            result = next(cursor)
            point = Figure6bPoint(
                application=application,
                bcec_wcec_ratio=ratio,
                improvement_percent=result.improvement_over_baseline("acs"),
                wcs_energy=result.energy("wcs"),
                acs_energy=result.energy("acs"),
                deadline_misses=sum(o.simulation.miss_count for o in result.outcomes.values()),
            )
            points.append(point)
            if verbose:
                print(
                    f"figure6b: {application} ratio={ratio:g} "
                    f"improvement={point.improvement_percent:.1f}%"
                )
    return Figure6bResult(config=cfg, points=points)
