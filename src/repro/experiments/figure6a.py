"""Figure 6(a): ACS vs WCS on randomly generated task sets.

The paper sweeps the number of tasks (2, 4, 6, 8, 10) and the BCEC/WCEC ratio
(0.1, 0.5, 0.9), generates one hundred random task sets per point, simulates
each for one thousand hyperperiods and reports the mean percentage energy
improvement of ACS over WCS.  The improvement grows with the task count and
shrinks as the ratio approaches 1, peaking around 60 %.

:func:`run_figure6a` reproduces the sweep with configurable sample sizes (the
defaults are scaled down so the whole figure regenerates in minutes on a
laptop; pass the paper's numbers for a full run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..power.presets import ideal_processor
from ..power.processor import ProcessorModel
from ..utils.tables import format_markdown_table
from ..workloads.random_tasksets import RandomTaskSetConfig
from .harness import ComparisonConfig, ComparisonJob, random_comparison_job, run_comparisons

__all__ = ["Figure6aConfig", "Figure6aPoint", "Figure6aResult", "run_figure6a"]


@dataclass(frozen=True)
class Figure6aConfig:
    """Sweep parameters (paper values: 100 task sets, 1000 hyperperiods)."""

    task_counts: Sequence[int] = (2, 4, 6, 8, 10)
    bcec_wcec_ratios: Sequence[float] = (0.1, 0.5, 0.9)
    tasksets_per_point: int = 5
    hyperperiods_per_taskset: int = 20
    target_utilization: float = 0.7
    seed: int = 2005
    processor: Optional[ProcessorModel] = None
    #: Optional period pool forwarded to the random generator.  Restricting the
    #: pool to mutually divisible values keeps the hyperperiod — and with it the
    #: NLP size — small, which is how the quick/benchmark configurations stay fast.
    periods: Optional[Sequence[float]] = None
    #: Worker processes used to execute the sweep (1 = in-process/serial).
    #: Any value produces bitwise-identical results; see
    #: :func:`repro.experiments.harness.run_comparisons`.
    jobs: int = 1
    #: Route the simulations through the batched structure-of-arrays engine
    #: (:mod:`repro.runtime.batched`).  Bitwise-identical to the default
    #: compiled path — this is purely a wall-clock knob.
    batched: bool = False

    def resolved_processor(self) -> ProcessorModel:
        return self.processor if self.processor is not None else ideal_processor()


@dataclass(frozen=True)
class Figure6aPoint:
    """One data point of the figure."""

    n_tasks: int
    bcec_wcec_ratio: float
    mean_improvement_percent: float
    std_improvement_percent: float
    mean_wcs_energy: float
    mean_acs_energy: float
    deadline_misses: int


@dataclass
class Figure6aResult:
    """All points of the figure plus rendering helpers."""

    config: Figure6aConfig
    points: List[Figure6aPoint]

    def point(self, n_tasks: int, ratio: float) -> Figure6aPoint:
        for candidate in self.points:
            if candidate.n_tasks == n_tasks and abs(candidate.bcec_wcec_ratio - ratio) < 1e-12:
                return candidate
        raise KeyError((n_tasks, ratio))

    def series(self, ratio: float) -> List[Tuple[int, float]]:
        """The figure's series for one ratio: (number of tasks, improvement %)."""
        return [
            (p.n_tasks, p.mean_improvement_percent)
            for p in sorted(self.points, key=lambda p: p.n_tasks)
            if abs(p.bcec_wcec_ratio - ratio) < 1e-12
        ]

    def to_markdown(self) -> str:
        """Render the figure as the table of improvement percentages."""
        headers = ["tasks"] + [f"ratio {r:g}" for r in self.config.bcec_wcec_ratios]
        rows = []
        for n_tasks in self.config.task_counts:
            row: List[object] = [n_tasks]
            for ratio in self.config.bcec_wcec_ratios:
                row.append(self.point(n_tasks, ratio).mean_improvement_percent)
            rows.append(row)
        return format_markdown_table(headers, rows)


def _build_jobs(cfg: Figure6aConfig, processor: ProcessorModel) -> List[ComparisonJob]:
    """One picklable work unit per (point, sample), with explicitly derived seeds."""
    units: List[ComparisonJob] = []
    for task_index, n_tasks in enumerate(cfg.task_counts):
        for ratio_index, ratio in enumerate(cfg.bcec_wcec_ratios):
            generator_kwargs = dict(
                n_tasks=n_tasks,
                target_utilization=cfg.target_utilization,
                bcec_wcec_ratio=ratio,
            )
            if cfg.periods is not None:
                generator_kwargs["periods"] = tuple(cfg.periods)
            taskset_config = RandomTaskSetConfig(**generator_kwargs)
            for sample_index in range(cfg.tasksets_per_point):
                units.append(random_comparison_job(
                    processor, taskset_config,
                    ComparisonConfig(n_hyperperiods=cfg.hyperperiods_per_taskset,
                                     seed=cfg.seed, batched=cfg.batched),
                    task_index, ratio_index, sample_index,
                    taskset_index=sample_index,
                ))
    return units


def run_figure6a(config: Optional[Figure6aConfig] = None, *, verbose: bool = False) -> Figure6aResult:
    """Regenerate Figure 6(a) (``cfg.jobs`` worker processes, same result for any count)."""
    cfg = config or Figure6aConfig()
    processor = cfg.resolved_processor()
    results = run_comparisons(_build_jobs(cfg, processor), n_jobs=cfg.jobs)

    points: List[Figure6aPoint] = []
    cursor = iter(results)
    for n_tasks in cfg.task_counts:
        for ratio in cfg.bcec_wcec_ratios:
            improvements: List[float] = []
            wcs_energies: List[float] = []
            acs_energies: List[float] = []
            misses = 0
            for _ in range(cfg.tasksets_per_point):
                result = next(cursor)
                improvements.append(result.improvement_over_baseline("acs"))
                wcs_energies.append(result.energy("wcs"))
                acs_energies.append(result.energy("acs"))
                misses += sum(o.simulation.miss_count for o in result.outcomes.values())
            point = Figure6aPoint(
                n_tasks=n_tasks,
                bcec_wcec_ratio=ratio,
                mean_improvement_percent=float(np.mean(improvements)),
                std_improvement_percent=float(np.std(improvements)),
                mean_wcs_energy=float(np.mean(wcs_energies)),
                mean_acs_energy=float(np.mean(acs_energies)),
                deadline_misses=misses,
            )
            points.append(point)
            if verbose:
                print(
                    f"figure6a: n_tasks={n_tasks} ratio={ratio:g} "
                    f"improvement={point.mean_improvement_percent:.1f}% misses={misses}"
                )
    return Figure6aResult(config=cfg, points=points)
