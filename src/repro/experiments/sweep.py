"""Free-form random-taskset sweep driven by the batched, multiprocess harness.

Unlike the fixed Figure 6 grids, :func:`run_sweep` runs **one** configurable
scenario — task count, BCEC/WCEC ratio, utilisation, online DVS policy — over
many random task sets and aggregates the per-taskset
:class:`~repro.experiments.harness.ComparisonResult` records.  It is the
workhorse behind the ``repro sweep`` CLI subcommand and the canonical
demonstration of the parallel harness: ``jobs=N`` distributes the task sets
over ``N`` worker processes and, because every work unit derives its RNG
seeds from its own coordinates, the aggregated output is bitwise-identical
for any ``N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..power.presets import ideal_processor
from ..power.processor import ProcessorModel
from ..runtime.policies import get_policy
from ..telemetry.core import current as _telemetry
from ..utils.tables import format_markdown_table
from ..workloads.random_tasksets import RandomTaskSetConfig
from .harness import (
    ComparisonConfig,
    ComparisonJob,
    ComparisonResult,
    aggregate_fallback_reasons,
    random_comparison_job,
    run_comparisons,
    warn_if_excessive_fallback,
)

__all__ = ["SweepConfig", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepConfig:
    """One sweep scenario (defaults sized for a laptop smoke run)."""

    n_tasksets: int = 8
    n_tasks: int = 4
    bcec_wcec_ratio: float = 0.5
    target_utilization: float = 0.7
    n_hyperperiods: int = 20
    seed: int = 2005
    #: Online DVS policy name (``"static"``, ``"greedy"``, ``"lookahead"``,
    #: ``"proportional"``) used to simulate every schedule.
    policy: str = "greedy"
    #: Offline schedulers to compare (registry names, first-listed order kept).
    schedulers: Tuple[str, ...] = ("wcs", "acs")
    baseline: str = "wcs"
    #: Worker processes (1 = serial); results are identical for any value.
    jobs: int = 1
    #: Route the simulations through the structure-of-arrays batched engine
    #: (bitwise-identical results; per-unit fallback reasons surface in
    #: :meth:`SweepResult.fallback_summary`).
    batched: bool = False
    processor: Optional[ProcessorModel] = None
    periods: Optional[Sequence[float]] = None

    def resolved_processor(self) -> ProcessorModel:
        return self.processor if self.processor is not None else ideal_processor()


@dataclass
class SweepResult:
    """Per-taskset comparison results plus cross-taskset aggregates."""

    config: SweepConfig
    results: List[ComparisonResult]
    elapsed_seconds: float = 0.0

    def methods(self) -> List[str]:
        return list(self.config.schedulers)

    def mean_energy(self, method: str) -> float:
        return float(np.mean([r.energy(method) for r in self.results]))

    def mean_improvement(self, method: str) -> float:
        return float(np.mean([r.improvement_over_baseline(method) for r in self.results]))

    def total_misses(self) -> int:
        return sum(
            outcome.simulation.miss_count
            for result in self.results
            for outcome in result.outcomes.values()
        )

    def summary_rows(self) -> List[List[object]]:
        return [
            [method, self.mean_energy(method), self.mean_improvement(method)]
            for method in self.methods()
        ]

    def fallback_summary(self) -> Dict[str, int]:
        """Merged ``{reason: count}`` fallback tally across every comparison.

        Keys are prefixed ``"batch:"`` / ``"solve:"`` (see
        :class:`~repro.experiments.harness.ComparisonResult`); empty when no
        batched stage fell back (always the case for non-batched sweeps).
        """
        return aggregate_fallback_reasons(result.fallback_reasons for result in self.results)

    def total_units(self) -> int:
        """Number of simulation work units (one per method per task set)."""
        return sum(len(result.outcomes) for result in self.results)

    def to_markdown(self) -> str:
        """Deterministic report: per-taskset table plus the aggregate table.

        Wall-clock time is deliberately excluded so that serial and parallel
        runs of the same configuration render byte-identical reports.
        """
        per_taskset: List[List[object]] = []
        for index, result in enumerate(self.results):
            row: List[object] = [index]
            for method in self.methods():
                row.append(result.energy(method))
            row.append(result.improvement_over_baseline(
                self._best_non_baseline_method()))
            per_taskset.append(row)
        headers = (["taskset"]
                   + [f"{m} energy" for m in self.methods()]
                   + [f"{self._best_non_baseline_method()} improvement %"])
        lines = [
            format_markdown_table(headers, per_taskset),
            "",
            format_markdown_table(
                ["method", "mean energy / hyperperiod", "improvement over baseline %"],
                self.summary_rows()),
            "",
            f"policy: {self.config.policy} | tasksets: {self.config.n_tasksets} | "
            f"deadline misses: {self.total_misses()}",
        ]
        return "\n".join(lines)

    def _best_non_baseline_method(self) -> str:
        for method in self.methods():
            if method != self.config.baseline:
                return method
        return self.config.baseline


def _build_jobs(cfg: SweepConfig, processor: ProcessorModel) -> List[ComparisonJob]:
    generator_kwargs = dict(
        n_tasks=cfg.n_tasks,
        target_utilization=cfg.target_utilization,
        bcec_wcec_ratio=cfg.bcec_wcec_ratio,
    )
    if cfg.periods is not None:
        generator_kwargs["periods"] = tuple(cfg.periods)
    taskset_config = RandomTaskSetConfig(**generator_kwargs)
    units: List[ComparisonJob] = []
    for sample_index in range(cfg.n_tasksets):
        units.append(random_comparison_job(
            processor, taskset_config,
            ComparisonConfig(n_hyperperiods=cfg.n_hyperperiods, seed=cfg.seed,
                             baseline=cfg.baseline, policy=get_policy(cfg.policy),
                             batched=cfg.batched),
            sample_index,
            taskset_index=sample_index,
            schedulers=cfg.schedulers,
        ))
    return units


def run_sweep(config: Optional[SweepConfig] = None, *, verbose: bool = False) -> SweepResult:
    """Run the sweep (``config.jobs`` worker processes, same result for any count)."""
    cfg = config or SweepConfig()
    processor = cfg.resolved_processor()
    units = _build_jobs(cfg, processor)
    # The stage timer replaces the old inline perf_counter pair: with
    # telemetry enabled the same ns interval is recorded as a "sweep.run"
    # span, so elapsed_seconds stays bitwise-derivable from the span row.
    with _telemetry().stage("sweep.run") as timer:
        results = run_comparisons(units, n_jobs=cfg.jobs)
    elapsed = timer.elapsed_seconds
    sweep_result = SweepResult(config=cfg, results=results, elapsed_seconds=elapsed)
    warn_if_excessive_fallback(sweep_result.fallback_summary(), sweep_result.total_units(),
                               context=f"sweep ({cfg.n_tasksets} tasksets)")
    if verbose:
        for index, result in enumerate(results):
            best = [m for m in cfg.schedulers if m != cfg.baseline]
            shown = best[0] if best else cfg.baseline
            print(f"sweep: taskset {index} {shown} improvement "
                  f"{result.improvement_over_baseline(shown):.1f}%")
    return sweep_result
