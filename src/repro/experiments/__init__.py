"""Experiment harnesses that regenerate the paper's tables and figures."""

from .figure6a import Figure6aConfig, Figure6aPoint, Figure6aResult, run_figure6a
from .figure6b import Figure6bConfig, Figure6bPoint, Figure6bResult, run_figure6b
from .harness import (
    ComparisonConfig,
    ComparisonResult,
    MethodOutcome,
    compare_schedulers,
    default_schedulers,
)
from .motivation import MotivationConfig, MotivationResult, motivation_taskset, run_motivation

__all__ = [
    "ComparisonConfig",
    "ComparisonResult",
    "MethodOutcome",
    "compare_schedulers",
    "default_schedulers",
    "Figure6aConfig",
    "Figure6aPoint",
    "Figure6aResult",
    "run_figure6a",
    "Figure6bConfig",
    "Figure6bPoint",
    "Figure6bResult",
    "run_figure6b",
    "MotivationConfig",
    "MotivationResult",
    "motivation_taskset",
    "run_motivation",
]
