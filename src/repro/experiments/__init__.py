"""Experiment harnesses that regenerate the paper's tables and figures."""

from .figure6a import Figure6aConfig, Figure6aPoint, Figure6aResult, run_figure6a
from .figure6b import Figure6bConfig, Figure6bPoint, Figure6bResult, run_figure6b
from .harness import (
    ComparisonConfig,
    ComparisonJob,
    ComparisonResult,
    MethodOutcome,
    compare_schedulers,
    default_schedulers,
    make_schedulers,
    random_comparison_job,
    run_comparisons,
    scheduler_names,
)
from .motivation import MotivationConfig, MotivationResult, motivation_taskset, run_motivation
from .scalability import (
    ScalabilityConfig,
    ScalabilityPoint,
    ScalabilityResult,
    run_multicore_point,
    run_scalability,
)
from .seeding import derive_rng, derive_seed, seed_sequence
from .sweep import SweepConfig, SweepResult, run_sweep

__all__ = [
    "ComparisonConfig",
    "ComparisonJob",
    "ComparisonResult",
    "MethodOutcome",
    "compare_schedulers",
    "default_schedulers",
    "make_schedulers",
    "random_comparison_job",
    "run_comparisons",
    "scheduler_names",
    "SweepConfig",
    "SweepResult",
    "run_sweep",
    "derive_seed",
    "derive_rng",
    "seed_sequence",
    "Figure6aConfig",
    "Figure6aPoint",
    "Figure6aResult",
    "run_figure6a",
    "Figure6bConfig",
    "Figure6bPoint",
    "Figure6bResult",
    "run_figure6b",
    "MotivationConfig",
    "MotivationResult",
    "motivation_taskset",
    "run_motivation",
    "ScalabilityConfig",
    "ScalabilityPoint",
    "ScalabilityResult",
    "run_multicore_point",
    "run_scalability",
]
