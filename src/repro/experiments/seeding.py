"""Explicit, order-independent seed derivation for experiment sweeps.

The seed-era harness drew per-taskset seeds from a shared master generator
(``int(master_rng.integers(...))``), so every seed depended on the *call
order* of everything that touched the generator before it — adding a data
point shifted the seeds of all later points, and parallel execution was
impossible without replaying the serial draw order.

This module replaces that with derivation from an explicit path: the root
seed plus the integer coordinates of the work unit (point index, sample
index, stream tag) are fed to :class:`numpy.random.SeedSequence`, which mixes
them into a high-quality, collision-resistant child seed.  The same path
always yields the same seed, on any machine, in any execution order — which
is what makes the parallel sweep bitwise-identical to the serial one.
"""

from __future__ import annotations

import numpy as np

__all__ = ["seed_sequence", "derive_seed", "derive_rng", "TASKSET_STREAM", "SIMULATION_STREAM"]

#: Stream tags appended to the derivation path so that the generator used to
#: *build* a task set and the generator used to *simulate* it never collide.
TASKSET_STREAM = 0
SIMULATION_STREAM = 1


def seed_sequence(root: int, *path: int) -> np.random.SeedSequence:
    """A :class:`~numpy.random.SeedSequence` for ``root`` and an integer path.

    The path length is mixed into the entropy because SeedSequence pads its
    entropy with zeros — without it, ``(root,)`` and ``(root, 0)`` would
    collide.
    """
    return np.random.SeedSequence(
        entropy=(int(root), len(path), *(int(p) for p in path)))


def derive_seed(root: int, *path: int) -> int:
    """A deterministic 31-bit child seed for ``(root, *path)``.

    31 bits keeps the value a portable non-negative Python/C int; collisions
    across distinct paths are as unlikely as SeedSequence's mixing allows.
    """
    return int(seed_sequence(root, *path).generate_state(1, np.uint64)[0] >> 33)


def derive_rng(root: int, *path: int) -> np.random.Generator:
    """A fresh :class:`~numpy.random.Generator` seeded from ``(root, *path)``."""
    return np.random.default_rng(seed_sequence(root, *path))
