"""The motivational example (Table 1, Figures 1 and 2 of the paper).

The paper opens with a three-task non-preemptive frame to show why end-times
chosen for the worst case waste energy when jobs usually finish early:

* Figure 1(a): the energy-optimal static schedule when every task takes its
  WCEC — each task is stretched over an equal share of the 20 ms frame.
* Figure 1(b): the same end-times at runtime with greedy slack reclamation
  when the tasks actually take their ACEC.
* Figure 2: end-times chosen with the average case in mind (the ACS idea)
  reduce the runtime energy by roughly a quarter, while remaining feasible —
  unlike naively using each task's deadline as its end-time, which would need
  more than the maximum supply voltage in the worst case.
* The price: if the worst case does occur, the ACS end-times cost roughly a
  third more energy than the WCS end-times.

The exact task parameters in the published table are not fully legible in the
available scan, so this module uses a faithful reconstruction (three equal
tasks whose WCS schedule matches the end-times 6.7/13.3/20 ms visible in
Figure 1) and verifies the same qualitative statements; EXPERIMENTS.md records
the measured percentages next to the paper's 24 % / 33 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.task import Task
from ..core.taskset import TaskSet
from ..offline.acs import ACSScheduler
from ..offline.evaluation import average_case_energy, worst_case_energy
from ..offline.nonpreemptive import frame_based_taskset
from ..offline.wcs import WCSScheduler
from ..power.presets import ideal_processor
from ..power.processor import ProcessorModel
from ..runtime.results import improvement_percent
from ..utils.tables import format_markdown_table

__all__ = ["MotivationConfig", "MotivationResult", "motivation_taskset", "run_motivation"]

#: Frame length of the motivational example (ms).
FRAME_LENGTH = 20.0


@dataclass(frozen=True)
class MotivationConfig:
    """Parameters of the reconstructed motivational example."""

    frame_length: float = FRAME_LENGTH
    #: Defaults reconstruct the paper's figures closely: the WCS-optimal schedule
    #: ends at 6.7 / 13.3 / 20 ms (Figure 1) and the ACS-optimal end-times land on
    #: 10 / 15 / 20 ms (Figure 2) with a ≈33 % worst-case penalty, matching the text.
    wcec: float = 5000.0
    acec: float = 1500.0
    bcec: float = 500.0
    processor: Optional[ProcessorModel] = None

    def resolved_processor(self) -> ProcessorModel:
        if self.processor is not None:
            return self.processor
        # 1000 cycles/ms at 5 V, frequency proportional to voltage: the
        # simplified model the paper's example assumes.
        return ideal_processor(vmax=5.0, vmin=0.5, fmax=1000.0)


def motivation_taskset(config: Optional[MotivationConfig] = None) -> TaskSet:
    """The three-task non-preemptive frame of Table 1 (reconstructed)."""
    cfg = config or MotivationConfig()
    tasks = [
        Task(name=f"T{i + 1}", period=cfg.frame_length, wcec=cfg.wcec,
             acec=cfg.acec, bcec=cfg.bcec)
        for i in range(3)
    ]
    return frame_based_taskset(tasks, cfg.frame_length, name="motivation")


@dataclass
class MotivationResult:
    """Energies of the four scenarios discussed in Section 2.2."""

    wcs_end_times: List[float]
    acs_end_times: List[float]
    wcs_worst_case_energy: float
    wcs_average_case_energy: float
    acs_average_case_energy: float
    acs_worst_case_energy: float

    @property
    def improvement_average_case_percent(self) -> float:
        """Energy reduction of the ACS end-times in the average case (paper: ≈24 %)."""
        return improvement_percent(self.wcs_average_case_energy, self.acs_average_case_energy)

    @property
    def penalty_worst_case_percent(self) -> float:
        """Energy increase of the ACS end-times when the worst case occurs (paper: ≈33 %)."""
        return 100.0 * (self.acs_worst_case_energy - self.wcs_worst_case_energy) / self.wcs_worst_case_energy

    def to_markdown(self) -> str:
        headers = ["scenario", "end-times", "workload", "energy"]
        rows = [
            ["Fig. 1(a) static schedule", "WCS", "WCEC", self.wcs_worst_case_energy],
            ["Fig. 1(b) runtime (greedy)", "WCS", "ACEC", self.wcs_average_case_energy],
            ["Fig. 2   runtime (greedy)", "ACS", "ACEC", self.acs_average_case_energy],
            ["worst case under ACS", "ACS", "WCEC", self.acs_worst_case_energy],
        ]
        return format_markdown_table(headers, rows, float_format=".4g")


def run_motivation(config: Optional[MotivationConfig] = None) -> MotivationResult:
    """Reproduce the motivational example end to end."""
    cfg = config or MotivationConfig()
    processor = cfg.resolved_processor()
    taskset = motivation_taskset(cfg)

    wcs_schedule = WCSScheduler(processor).schedule(taskset)
    acs_schedule = ACSScheduler(processor).schedule(taskset)

    return MotivationResult(
        wcs_end_times=wcs_schedule.end_times(),
        acs_end_times=acs_schedule.end_times(),
        wcs_worst_case_energy=worst_case_energy(wcs_schedule, processor),
        wcs_average_case_energy=average_case_energy(wcs_schedule, processor),
        acs_average_case_energy=average_case_energy(acs_schedule, processor),
        acs_worst_case_energy=worst_case_energy(acs_schedule, processor),
    )
