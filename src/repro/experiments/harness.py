"""Experiment harness: schedule a task set with several methods and simulate them.

This is the glue the paper's evaluation needs: for a given task set it

1. expands the hyperperiod once,
2. runs every requested offline scheduler on the same expansion,
3. simulates every resulting static schedule with the same random workload
   realisations (common random numbers, so the comparison is paired), and
4. reports per-method runtime energy plus the percentage improvement of every
   method over a chosen baseline (WCS in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.preemption import expand_fully_preemptive
from ..core.errors import ExperimentError
from ..core.taskset import TaskSet
from ..offline.acs import ACSScheduler
from ..offline.base import VoltageScheduler
from ..offline.schedule import StaticSchedule
from ..offline.wcs import WCSScheduler
from ..power.processor import ProcessorModel
from ..runtime.dvs import GreedySlackPolicy, SlackPolicy
from ..runtime.results import SimulationResult, improvement_percent
from ..runtime.simulator import DVSSimulator, SimulationConfig
from ..workloads.distributions import NormalWorkload, WorkloadModel

__all__ = ["ComparisonConfig", "MethodOutcome", "ComparisonResult", "compare_schedulers", "default_schedulers"]


@dataclass(frozen=True)
class ComparisonConfig:
    """Settings shared by every method in one comparison."""

    n_hyperperiods: int = 50
    seed: Optional[int] = 12345
    baseline: str = "wcs"
    workload: WorkloadModel = field(default_factory=NormalWorkload)
    policy: SlackPolicy = field(default_factory=GreedySlackPolicy)
    simulation: SimulationConfig = None

    def simulation_config(self) -> SimulationConfig:
        if self.simulation is not None:
            return self.simulation
        return SimulationConfig(n_hyperperiods=self.n_hyperperiods, seed=self.seed)


@dataclass
class MethodOutcome:
    """Static schedule plus simulated runtime energy of one method."""

    method: str
    schedule: StaticSchedule
    simulation: SimulationResult

    @property
    def mean_energy(self) -> float:
        return self.simulation.mean_energy_per_hyperperiod


@dataclass
class ComparisonResult:
    """Outcome of :func:`compare_schedulers` on one task set."""

    taskset_name: str
    outcomes: Dict[str, MethodOutcome]
    baseline: str

    def energy(self, method: str) -> float:
        return self.outcomes[method].mean_energy

    def improvement_over_baseline(self, method: str) -> float:
        """Percentage energy reduction of ``method`` relative to the baseline."""
        baseline_energy = self.energy(self.baseline)
        return improvement_percent(baseline_energy, self.energy(method))

    def methods(self) -> List[str]:
        return list(self.outcomes)

    def rows(self) -> List[List[object]]:
        """Table rows: method, mean energy, improvement over baseline, misses."""
        result = []
        for method, outcome in self.outcomes.items():
            result.append([
                method,
                outcome.mean_energy,
                self.improvement_over_baseline(method),
                outcome.simulation.miss_count,
            ])
        return result


def default_schedulers(processor: ProcessorModel) -> Dict[str, VoltageScheduler]:
    """The pair the paper compares: ACS against the WCS baseline."""
    return {"wcs": WCSScheduler(processor), "acs": ACSScheduler(processor)}


def compare_schedulers(taskset: TaskSet, processor: ProcessorModel,
                       schedulers: Optional[Dict[str, VoltageScheduler]] = None,
                       config: Optional[ComparisonConfig] = None) -> ComparisonResult:
    """Schedule ``taskset`` with every scheduler and simulate all of them with paired randomness."""
    cfg = config or ComparisonConfig()
    methods = schedulers or default_schedulers(processor)
    if cfg.baseline not in methods:
        raise ExperimentError(
            f"baseline {cfg.baseline!r} is not among the schedulers {sorted(methods)}"
        )

    expansion = expand_fully_preemptive(taskset)
    outcomes: Dict[str, MethodOutcome] = {}
    for name, scheduler in methods.items():
        schedule = scheduler.schedule_expansion(expansion)
        simulator = DVSSimulator(processor, policy=cfg.policy, config=cfg.simulation_config())
        # Paired comparison: every method sees the same workload realisations.
        rng = np.random.default_rng(cfg.seed)
        simulation = simulator.run(schedule, cfg.workload, rng)
        outcomes[name] = MethodOutcome(method=name, schedule=schedule, simulation=simulation)
    return ComparisonResult(taskset_name=taskset.name, outcomes=outcomes, baseline=cfg.baseline)
