"""Experiment harness: schedule task sets with several methods and simulate them.

This is the glue the paper's evaluation needs: for a given task set it

1. expands the hyperperiod once,
2. runs every requested offline scheduler on the same expansion,
3. simulates every resulting static schedule with the same random workload
   realisations (common random numbers, so the comparison is paired), and
4. reports per-method runtime energy plus the percentage improvement of every
   method over a chosen baseline (WCS in the paper).

On top of the single-taskset :func:`compare_schedulers`, the harness provides
a **batched, multiprocess runner**: a sweep is described as a list of
picklable :class:`ComparisonJob` work units and executed by
:func:`run_comparisons`, serially or on a :class:`concurrent.futures`
process pool.  Every job carries its own explicitly derived RNG seeds (see
:mod:`repro.experiments.seeding`), so the results are bitwise-identical
regardless of worker count or completion order.
"""

from __future__ import annotations

import copy
import functools
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..analysis.preemption import expand_fully_preemptive
from ..core.errors import ExperimentError
from ..core.taskset import TaskSet
from ..offline.acs import ACSScheduler
from ..offline.base import VoltageScheduler
from ..offline.baselines import ConstantSpeedScheduler, MaxSpeedScheduler
from ..offline.batched_solver import SolveMemo, default_solve_memo, plan_expansions
from ..offline.schedule import StaticSchedule
from ..offline.wcs import WCSScheduler
from ..power.processor import ProcessorModel
from ..runtime.batched import BatchUnit, batch_fallback_reason, simulate_batch
from ..runtime.policies import DVSPolicy, GreedySlackPolicy
from ..runtime.results import SimulationResult, improvement_percent
from ..runtime.simulator import DVSSimulator, SimulationConfig
from ..workloads.arrivals import ArrivalModel
from ..workloads.distributions import NormalWorkload, WorkloadModel
from ..telemetry.core import current as _telemetry
from ..workloads.random_tasksets import RandomTaskSetConfig, generate_random_taskset
from .seeding import SIMULATION_STREAM, TASKSET_STREAM, derive_rng, derive_seed

__all__ = [
    "ComparisonConfig",
    "MethodOutcome",
    "ComparisonResult",
    "ComparisonJob",
    "aggregate_fallback_reasons",
    "compare_schedulers",
    "run_comparisons",
    "iter_comparisons",
    "random_comparison_job",
    "default_schedulers",
    "make_schedulers",
    "scheduler_names",
    "warn_if_excessive_fallback",
]


@dataclass(frozen=True)
class ComparisonConfig:
    """Settings shared by every method in one comparison.

    The ``seed`` is the *explicit* seed of this comparison's workload
    generator: every method replays exactly the same draws (paired
    comparison), and two runs with the same seed are bit-identical.  Sweeps
    must not draw these seeds from a shared generator — derive them from the
    work unit's coordinates with :meth:`with_derived_seed` so the value is
    independent of execution order (serial and parallel runs then agree).
    """

    n_hyperperiods: int = 50
    seed: Optional[int] = 12345
    baseline: str = "wcs"
    workload: WorkloadModel = field(default_factory=NormalWorkload)
    policy: DVSPolicy = field(default_factory=GreedySlackPolicy)
    simulation: SimulationConfig = None
    #: Run the simulator's compiled event loop (identical results either way;
    #: ``False`` pins the reference loop, e.g. for equivalence sweeps).  Only
    #: consulted when ``simulation`` is unset — an explicit
    #: :class:`SimulationConfig` carries its own ``fast_path`` and wins.
    fast_path: bool = True
    #: Route the simulations through the structure-of-arrays engine of
    #: :mod:`repro.runtime.batched`: one comparison advances all its method
    #: simulations in lock-step, and :func:`iter_comparisons` additionally
    #: batches *across* comparison jobs.  Bitwise-identical results either
    #: way.  Like ``fast_path``, only consulted when ``simulation`` is unset.
    batched: bool = False
    #: Record the typed event stream on every method's
    #: :class:`~repro.runtime.results.SimulationResult` (see
    #: :mod:`repro.runtime.trace`).  Batched units fall back per unit to the
    #: compiled loop.  Only consulted when ``simulation`` is unset.
    trace: bool = False
    #: Optional arrival model perturbing the job releases (``None`` is the
    #: paper's strictly periodic model).  Only consulted when ``simulation``
    #: is unset.
    arrivals: Optional["ArrivalModel"] = None
    #: Plan the offline schedules through the batched solver
    #: (:mod:`repro.offline.batched_solver`): one comparison's NLP solves run
    #: concurrently against a stacked evaluation, share the content-addressed
    #: solve memo, and — in batch execution — join the solver pool of the
    #: whole chunk.  Bitwise-identical schedules either way; ``False`` pins
    #: the per-scheduler sequential solves (e.g. for equivalence sweeps).
    batched_planning: bool = True

    def simulation_config(self) -> SimulationConfig:
        if self.simulation is not None:
            return self.simulation
        return SimulationConfig(n_hyperperiods=self.n_hyperperiods, seed=self.seed,
                                fast_path=self.fast_path, batched=self.batched,
                                trace=self.trace, arrivals=self.arrivals)

    def with_derived_seed(self, *path: int) -> "ComparisonConfig":
        """A copy whose seed is derived from ``(self.seed, *path)``.

        ``path`` is the stable integer coordinate of the work unit,
        conventionally ending with a stream tag — e.g. ``(point_index,
        sample_index, seeding.SIMULATION_STREAM)`` — so simulation seeds can
        never collide with the task-set generation stream.  A ``None`` seed
        stays ``None``.  This is how the figure/sweep modules seed every
        work unit; see :mod:`repro.experiments.seeding`.
        """
        if self.seed is None:
            return self
        return replace(self, seed=derive_seed(self.seed, *path))


@dataclass
class MethodOutcome:
    """Static schedule plus simulated runtime energy of one method."""

    method: str
    schedule: StaticSchedule
    simulation: SimulationResult

    @property
    def mean_energy(self) -> float:
        return self.simulation.mean_energy_per_hyperperiod


@dataclass
class ComparisonResult:
    """Outcome of :func:`compare_schedulers` on one task set.

    ``fallback_reasons`` tallies, per reason, how often this comparison's
    batched stages had to take a per-unit sequential path: keys are
    ``"batch:<reason>"`` (a simulation unit fell back from the SoA engine
    to the compiled loop) and ``"solve:<reason>"`` (an NLP solve fell back
    from the stacked coordinator).  Empty when nothing fell back — and
    always empty for non-batched runs, whose sequential paths are the
    chosen route, not a fallback.
    """

    taskset_name: str
    outcomes: Dict[str, MethodOutcome]
    baseline: str
    fallback_reasons: Dict[str, int] = field(default_factory=dict)

    def energy(self, method: str) -> float:
        return self.outcomes[method].mean_energy

    def improvement_over_baseline(self, method: str) -> float:
        """Percentage energy reduction of ``method`` relative to the baseline."""
        baseline_energy = self.energy(self.baseline)
        return improvement_percent(baseline_energy, self.energy(method))

    def methods(self) -> List[str]:
        return list(self.outcomes)

    def rows(self) -> List[List[object]]:
        """Table rows: method, mean energy, improvement over baseline, misses."""
        result = []
        for method, outcome in self.outcomes.items():
            result.append([
                method,
                outcome.mean_energy,
                self.improvement_over_baseline(method),
                outcome.simulation.miss_count,
            ])
        return result


def aggregate_fallback_reasons(tallies: Iterable[Optional[Mapping[str, int]]]) -> Dict[str, int]:
    """Merge per-unit/per-result ``{reason: count}`` tallies into one."""
    merged: Dict[str, int] = {}
    for tally in tallies:
        if not tally:
            continue
        for reason, count in tally.items():
            merged[reason] = merged.get(reason, 0) + count
    return merged


def warn_if_excessive_fallback(fallback_reasons: Mapping[str, int], total_units: int,
                               *, context: str) -> None:
    """One-line warning when >50% of a sweep's simulation units fell back.

    A mostly-fallback batched sweep silently runs at compiled-loop speed;
    surfacing it once per sweep (never per unit) tells the user to either
    drop ``batched`` or remove whatever gates the vectorized core.
    """
    fell = sum(count for reason, count in fallback_reasons.items() if reason.startswith("batch:"))
    if total_units > 0 and fell * 2 > total_units:
        reasons = ", ".join(
            f"{reason[len('batch:'):]} x{count}"
            for reason, count in sorted(fallback_reasons.items())
            if reason.startswith("batch:")
        )
        warnings.warn(
            f"{context}: batched engine fell back for {fell}/{total_units} "
            f"simulation units ({reasons})",
            RuntimeWarning,
            stacklevel=3,
        )


# --------------------------------------------------------------------- #
# Scheduler registry
# --------------------------------------------------------------------- #
_SCHEDULER_FACTORIES = {
    "wcs": WCSScheduler,
    "acs": ACSScheduler,
    "max_speed": MaxSpeedScheduler,
    "constant_speed": ConstantSpeedScheduler,
}


def scheduler_names() -> Tuple[str, ...]:
    """Registry names accepted by :func:`make_schedulers` (and the CLI)."""
    return tuple(sorted(_SCHEDULER_FACTORIES))


def make_schedulers(names: Sequence[str], processor: ProcessorModel) -> Dict[str, VoltageScheduler]:
    """Instantiate schedulers from registry names (order preserved).

    Sweep work units ship scheduler *names* rather than instances so that the
    units stay small and trivially picklable for the process pool.
    """
    unknown = [name for name in names if name not in _SCHEDULER_FACTORIES]
    if unknown:
        raise ExperimentError(
            f"unknown schedulers {unknown}; known: {sorted(_SCHEDULER_FACTORIES)}"
        )
    return {name: _SCHEDULER_FACTORIES[name](processor) for name in names}


def default_schedulers(processor: ProcessorModel) -> Dict[str, VoltageScheduler]:
    """The pair the paper compares: ACS against the WCS baseline."""
    return {"wcs": WCSScheduler(processor), "acs": ACSScheduler(processor)}


# --------------------------------------------------------------------- #
# Single comparison
# --------------------------------------------------------------------- #
def _resolve_solve_memo(solve_memo_root: Optional[str]) -> SolveMemo:
    """The solve memo for a worker: persistent when a store root is given.

    A root (the scenario result store's directory, as a picklable string)
    gives every worker process its own :class:`SolveMemo` view onto the same
    on-disk store — puts are atomic, so concurrent workers cooperate instead
    of clashing, and a resumed sweep finds its solves.  The memo lives in a
    ``solve-memo/`` subdirectory so the scenario store's own record listing
    and garbage collection keep seeing only scenario payloads.  Without a
    root the process-wide in-memory memo still deduplicates within the run.
    """
    if solve_memo_root is None:
        return default_solve_memo()
    from ..scenarios.store import ResultStore

    # The memo's backing store tallies its own telemetry family, so scenario
    # payload traffic and solve-memo traffic stay separable in a counter dump.
    return SolveMemo(
        ResultStore(Path(solve_memo_root) / "solve-memo", telemetry_prefix="solve_memo_store")
    )


def _plan_schedules(expansion, methods: Dict[str, VoltageScheduler],
                    cfg: ComparisonConfig,
                    solve_memo: Optional[SolveMemo],
                    fallback_out: Optional[Dict[str, int]] = None) -> Dict[str, StaticSchedule]:
    """Offline-plan one comparison's methods, batched or sequential per config.

    ``fallback_out``, when given, receives the ``solve_fallback_reason``
    tally of the batched planner (sequential planning is a configuration
    choice, not a fallback, and contributes nothing).
    """
    if cfg.batched_planning:
        group_reasons: Optional[List[Dict[str, int]]] = [] if fallback_out is not None else None
        (schedules,) = plan_expansions(
            [(expansion, methods)],
            memo=solve_memo if solve_memo is not None else default_solve_memo(),
            fallback_out=group_reasons,
        )
        if fallback_out is not None and group_reasons:
            fallback_out.update(aggregate_fallback_reasons(group_reasons))
        return schedules
    return {name: scheduler.schedule_expansion(expansion)
            for name, scheduler in methods.items()}


def _prepare_units(taskset: TaskSet, processor: ProcessorModel,
                   methods: Dict[str, VoltageScheduler],
                   cfg: ComparisonConfig,
                   schedules: Optional[Dict[str, StaticSchedule]] = None,
                   solve_memo: Optional[SolveMemo] = None,
                   plan_fallback_out: Optional[Dict[str, int]] = None,
                   ) -> Tuple[Dict[str, StaticSchedule], List[BatchUnit]]:
    """Schedules plus one simulation work unit per method for one comparison.

    Every unit carries its own deepcopied policy (a stateful policy must not
    leak one method's runtime history into the next method's simulation) and
    its own fresh generator seeded with ``cfg.seed`` (paired comparison:
    every method sees the same workload realisations).  Pre-planned
    ``schedules`` (from a cross-job batched planning pass) skip the planning
    stage entirely.
    """
    if schedules is None:
        expansion = expand_fully_preemptive(taskset)
        schedules = _plan_schedules(expansion, methods, cfg, solve_memo,
                                    fallback_out=plan_fallback_out)
    sim_config = cfg.simulation_config()
    units = [
        BatchUnit(schedule=schedules[name], processor=processor,
                  policy=copy.deepcopy(cfg.policy), config=sim_config,
                  workload=cfg.workload, rng=np.random.default_rng(cfg.seed))
        for name in schedules
    ]
    return schedules, units


def compare_schedulers(taskset: TaskSet, processor: ProcessorModel,
                       schedulers: Optional[Dict[str, VoltageScheduler]] = None,
                       config: Optional[ComparisonConfig] = None,
                       solve_memo: Optional[SolveMemo] = None) -> ComparisonResult:
    """Schedule ``taskset`` with every scheduler and simulate all of them with paired randomness."""
    cfg = config or ComparisonConfig()
    methods = schedulers or default_schedulers(processor)
    if cfg.baseline not in methods:
        raise ExperimentError(
            f"baseline {cfg.baseline!r} is not among the schedulers {sorted(methods)}"
        )

    fallback_reasons: Dict[str, int] = {}
    plan_reasons: Dict[str, int] = {}
    schedules, units = _prepare_units(taskset, processor, methods, cfg,
                                      solve_memo=solve_memo,
                                      plan_fallback_out=plan_reasons)
    for reason, count in plan_reasons.items():
        fallback_reasons["solve:" + reason] = count
    if cfg.simulation_config().batched:
        for unit in units:
            reason = batch_fallback_reason(unit)
            if reason is not None:
                key = "batch:" + reason
                fallback_reasons[key] = fallback_reasons.get(key, 0) + 1
        # All methods advance in lock-step through the batched engine.
        with _telemetry().span("sim.comparison"):
            simulations = simulate_batch(units)
    else:
        with _telemetry().span("sim.comparison"):
            simulations = [
                DVSSimulator(processor, policy=unit.policy, config=unit.config)
                .run(unit.schedule, unit.workload, unit.rng)
                for unit in units
            ]
    outcomes = {
        name: MethodOutcome(method=name, schedule=schedules[name], simulation=simulation)
        for name, simulation in zip(schedules, simulations)
    }
    return ComparisonResult(taskset_name=taskset.name, outcomes=outcomes, baseline=cfg.baseline,
                            fallback_reasons=fallback_reasons)


# --------------------------------------------------------------------- #
# Batched, multiprocess execution
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ComparisonJob:
    """One self-contained, picklable work unit of a sweep.

    Either an explicit ``taskset`` is given (case studies, fixed sets), or a
    ``taskset_config`` plus ``taskset_seed`` describe a random task set that
    the worker generates itself — the generation RNG is derived from the seed
    alone, so the same unit always produces the same task set no matter which
    process runs it, or when.
    """

    processor: ProcessorModel
    config: ComparisonConfig
    taskset: Optional[TaskSet] = None
    taskset_config: Optional[RandomTaskSetConfig] = None
    taskset_seed: Optional[int] = None
    taskset_index: int = 0
    schedulers: Tuple[str, ...] = ("wcs", "acs")

    def __post_init__(self) -> None:
        if (self.taskset is None) == (self.taskset_config is None):
            raise ExperimentError(
                "exactly one of taskset / taskset_config must be given"
            )
        if self.taskset_config is not None and self.taskset_seed is None:
            raise ExperimentError("a random-taskset job needs an explicit taskset_seed")

    def resolve_taskset(self) -> TaskSet:
        if self.taskset is not None:
            return self.taskset
        rng = derive_rng(self.taskset_seed)
        return generate_random_taskset(self.taskset_config, self.processor, rng,
                                       index=self.taskset_index)


def random_comparison_job(processor: ProcessorModel, taskset_config: RandomTaskSetConfig,
                          config: ComparisonConfig, *path: int, taskset_index: int = 0,
                          schedulers: Tuple[str, ...] = ("wcs", "acs")) -> ComparisonJob:
    """Build the work unit for one random task set at sweep coordinate ``path``.

    This is the one place that encodes the seed-pairing convention: the
    simulation seed is ``config.seed`` derived over ``(*path,
    SIMULATION_STREAM)`` and the task-set generation seed over ``(*path,
    TASKSET_STREAM)``.  Every random sweep (Figure 6a, ``repro sweep``) must
    construct its units through here so the serial/parallel determinism
    guarantee cannot diverge between callers.
    """
    if config.seed is None:
        raise ExperimentError("random_comparison_job needs a non-None config.seed to derive from")
    return ComparisonJob(
        processor=processor,
        config=config.with_derived_seed(*path, SIMULATION_STREAM),
        taskset_config=taskset_config,
        taskset_seed=derive_seed(config.seed, *path, TASKSET_STREAM),
        taskset_index=taskset_index,
        schedulers=tuple(schedulers),
    )


def _execute_comparison_job(job: ComparisonJob,
                            solve_memo_root: Optional[str] = None) -> ComparisonResult:
    """Worker entry point (module-level so the process pool can pickle it)."""
    taskset = job.resolve_taskset()
    schedulers = make_schedulers(job.schedulers, job.processor)
    return compare_schedulers(taskset, job.processor, schedulers, job.config,
                              solve_memo=_resolve_solve_memo(solve_memo_root))


def _execute_comparison_batch(jobs: Sequence[ComparisonJob],
                              solve_memo_root: Optional[str] = None,
                              ) -> List[ComparisonResult]:
    """Run many comparison jobs as one lock-step batch of simulation units.

    Every ``(job, method)`` pair becomes one :class:`BatchUnit`; the batched
    engine advances all of them together.  Offline planning is batched the
    same way: the programs of every ``batched_planning`` job in the chunk
    join one solver pool, so their SLSQP evaluations stack across jobs and
    identical solves collapse into the memo.  Each unit still carries its
    own generator and policy copy, so the results are bitwise-identical to
    executing the jobs one by one (the batched engine's own contract).
    Module-level so the process pool can pickle it.
    """
    solve_memo = _resolve_solve_memo(solve_memo_root)
    entries = []
    for job in jobs:
        taskset = job.resolve_taskset()
        methods = make_schedulers(job.schedulers, job.processor)
        cfg = job.config
        if cfg.baseline not in methods:
            raise ExperimentError(
                f"baseline {cfg.baseline!r} is not among the schedulers {sorted(methods)}"
            )
        entries.append((job, taskset, methods, cfg, expand_fully_preemptive(taskset)))

    batchable = [index for index, (_, _, _, cfg, _) in enumerate(entries)
                 if cfg.batched_planning]
    group_reasons: List[Dict[str, int]] = []
    planned = plan_expansions(
        [(entries[index][4], entries[index][2]) for index in batchable],
        memo=solve_memo,
        fallback_out=group_reasons,
    )
    planned_schedules: Dict[int, Dict[str, StaticSchedule]] = dict(zip(batchable, planned))
    plan_reasons: Dict[int, Dict[str, int]] = dict(zip(batchable, group_reasons))

    prepared = []
    units: List[BatchUnit] = []
    for index, (job, taskset, methods, cfg, expansion) in enumerate(entries):
        schedules = planned_schedules.get(index)
        if schedules is None:
            schedules = {name: scheduler.schedule_expansion(expansion)
                         for name, scheduler in methods.items()}
        schedules, job_units = _prepare_units(taskset, job.processor, methods, cfg,
                                              schedules=schedules)
        fallback_reasons = {
            "solve:" + reason: count
            for reason, count in plan_reasons.get(index, {}).items()
        }
        for unit in job_units:
            reason = batch_fallback_reason(unit)
            if reason is not None:
                key = "batch:" + reason
                fallback_reasons[key] = fallback_reasons.get(key, 0) + 1
        prepared.append((taskset, cfg, schedules, fallback_reasons))
        units.extend(job_units)
    with _telemetry().span("sim.comparison_batch"):
        simulations = simulate_batch(units)
    results: List[ComparisonResult] = []
    cursor = 0
    for taskset, cfg, schedules, fallback_reasons in prepared:
        outcomes = {}
        for name in schedules:
            outcomes[name] = MethodOutcome(method=name, schedule=schedules[name],
                                           simulation=simulations[cursor])
            cursor += 1
        results.append(ComparisonResult(taskset_name=taskset.name, outcomes=outcomes,
                                        baseline=cfg.baseline,
                                        fallback_reasons=fallback_reasons))
    return results


def iter_comparisons(jobs: Sequence[ComparisonJob], n_jobs: int = 1,
                     chunksize: int = 1,
                     solve_memo_root: Optional[str] = None) -> Iterator[ComparisonResult]:
    """Execute comparison jobs, yielding each result as soon as it is known.

    Results arrive in submission order with the same bitwise guarantee as
    :func:`run_comparisons`.  Streaming is what lets incremental consumers
    (the scenario result store) persist every finished unit immediately, so
    a run killed mid-sweep loses at most the units still in flight.

    When every job opts into the batched engine
    (``ComparisonConfig(batched=True)``), jobs are executed as lock-step
    batches instead of one at a time — all jobs at once in-process, or one
    contiguous chunk per worker on the pool.  Results are still yielded in
    submission order and remain bitwise-identical; the trade-off is coarser
    streaming (a batch's results all arrive when the batch completes).
    """
    if n_jobs < 1:
        raise ExperimentError("n_jobs must be at least 1")
    jobs = list(jobs)
    if all(job.config.simulation_config().batched for job in jobs) and len(jobs) > 1:
        if n_jobs == 1:
            yield from _execute_comparison_batch(jobs, solve_memo_root=solve_memo_root)
            return
        workers = min(n_jobs, len(jobs))
        # Contiguous, near-even chunks: worker w takes jobs[w::workers] would
        # reorder results, so slice instead.
        bounds = np.linspace(0, len(jobs), workers + 1).astype(int)
        chunks = [jobs[bounds[w]:bounds[w + 1]] for w in range(workers)]
        chunks = [chunk for chunk in chunks if chunk]
        run_batch = functools.partial(_execute_comparison_batch,
                                      solve_memo_root=solve_memo_root)
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            for batch in pool.map(run_batch, chunks):
                yield from batch
        return
    if n_jobs == 1 or len(jobs) <= 1:
        for job in jobs:
            yield _execute_comparison_job(job, solve_memo_root=solve_memo_root)
        return
    workers = min(n_jobs, len(jobs))
    run_job = functools.partial(_execute_comparison_job,
                                solve_memo_root=solve_memo_root)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        yield from pool.map(run_job, jobs, chunksize=chunksize)


def run_comparisons(jobs: Sequence[ComparisonJob], n_jobs: int = 1,
                    chunksize: int = 1,
                    solve_memo_root: Optional[str] = None) -> List[ComparisonResult]:
    """Execute a batch of comparison jobs, optionally on a process pool.

    ``n_jobs=1`` runs in-process (no pool overhead, easiest to debug);
    ``n_jobs>1`` fans the units out over a :class:`ProcessPoolExecutor`.
    Results are returned in submission order and are bitwise-identical for
    any ``n_jobs``, because every unit derives its randomness from its own
    coordinates rather than from shared-generator call order.  A
    ``solve_memo_root`` (the scenario store's directory) makes the offline
    solve memo persistent, so resumed or repeated sweeps skip solved NLPs.
    """
    return list(iter_comparisons(jobs, n_jobs=n_jobs, chunksize=chunksize,
                                 solve_memo_root=solve_memo_root))
