"""Multicore scalability sweep: energy vs core count across partitioners.

The Figure-6 experiments compare *offline schedulers* on one core; this sweep
compares *partitioning heuristics* across core counts.  One task set is
planned and simulated for every ``(m, partitioner)`` combination — the same
application, the same workload realisation root seed per core count — and the
report shows, Figure-6-style, the mean energy per (global) hyperperiod and
the percentage improvement over the single-core baseline.

The physics being measured: distributing a fixed workload over more cores
gives every core more static slack, the per-core NLP stretches every
sub-instance over more time, and the quadratic energy law turns that linear
slowdown into a superlinear energy win — until ``fmin``/``vmin`` clipping
flattens the curve.  Partitioners differ in how evenly they hand that slack
out, which is exactly what the columns of the report compare.

Work units are independent, so ``jobs=N`` distributes them over a process
pool with the usual bitwise-determinism guarantee (every unit derives its
simulation seed from its own coordinates).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..allocation.multicore import MulticoreProblem, plan_multicore
from ..core.errors import ExperimentError
from ..core.taskset import TaskSet
from ..power.presets import ideal_processor
from ..power.processor import ProcessorModel
from ..runtime.multicore import MulticoreResult, MulticoreRunner
from ..runtime.simulator import SimulationConfig
from ..telemetry.core import current as _telemetry
from ..utils.tables import format_markdown_table
from ..workloads.cnc import cnc_taskset
from ..workloads.gap import gap_taskset

__all__ = ["ScalabilityConfig", "ScalabilityPoint", "ScalabilityResult", "run_scalability"]


@dataclass(frozen=True)
class ScalabilityConfig:
    """Sweep parameters (defaults sized for a laptop run).

    ``application`` selects the task set: ``"cnc"`` (8 tasks) or ``"gap"``
    (up to 17, trimmed by ``gap_tasks``).  The set is scaled to
    ``target_utilization`` on *one* core, so it is single-core feasible and
    every core count in ``core_counts`` measures the benefit of spreading the
    same workload.
    """

    core_counts: Sequence[int] = (1, 2, 4, 8)
    partitioners: Sequence[str] = ("ffd", "bfd", "wfd", "energy")
    application: str = "cnc"
    method: str = "acs"
    policy: str = "greedy"
    bcec_wcec_ratio: float = 0.5
    target_utilization: float = 0.7
    n_hyperperiods: int = 20
    seed: int = 2005
    gap_tasks: Optional[int] = 8
    #: Worker processes (1 = serial); results are identical for any value.
    jobs: int = 1
    processor: Optional[ProcessorModel] = None

    def resolved_processor(self) -> ProcessorModel:
        return self.processor if self.processor is not None else ideal_processor()

    def build_taskset(self) -> TaskSet:
        processor = self.resolved_processor()
        if self.application == "cnc":
            return cnc_taskset(processor, target_utilization=self.target_utilization,
                               bcec_wcec_ratio=self.bcec_wcec_ratio)
        if self.application == "gap":
            return gap_taskset(processor, target_utilization=self.target_utilization,
                               bcec_wcec_ratio=self.bcec_wcec_ratio,
                               n_tasks=self.gap_tasks)
        raise ExperimentError(
            f"unknown application {self.application!r}; known: cnc, gap")


@dataclass(frozen=True)
class ScalabilityPoint:
    """One ``(core count, partitioner)`` cell of the sweep."""

    n_cores: int
    partitioner: str
    mean_energy_per_hyperperiod: float
    total_energy: float
    max_core_utilization: float
    used_cores: int
    deadline_misses: int


@dataclass
class ScalabilityResult:
    """The full grid plus Figure-6-style reporting."""

    config: ScalabilityConfig
    points: List[ScalabilityPoint]
    elapsed_seconds: float = 0.0

    def point(self, n_cores: int, partitioner: str) -> ScalabilityPoint:
        for candidate in self.points:
            if candidate.n_cores == n_cores and candidate.partitioner == partitioner:
                return candidate
        raise KeyError((n_cores, partitioner))

    @property
    def baseline_cores(self) -> int:
        """The core count improvements are measured against: 1 when swept, else the smallest."""
        return 1 if 1 in self.config.core_counts else min(self.config.core_counts)

    def improvement_over_single_core(self, n_cores: int, partitioner: str) -> float:
        """Energy reduction (%) relative to the :attr:`baseline_cores` run of the same partitioner."""
        baseline = self.point(self.baseline_cores, partitioner)
        cell = self.point(n_cores, partitioner)
        if baseline.mean_energy_per_hyperperiod <= 0:
            return 0.0
        return 100.0 * (baseline.mean_energy_per_hyperperiod
                        - cell.mean_energy_per_hyperperiod) / baseline.mean_energy_per_hyperperiod

    def to_markdown(self) -> str:
        """Deterministic report: energy grid, improvement grid, balance diagnostics."""
        partitioners = list(self.config.partitioners)
        energy_rows: List[List[object]] = []
        improvement_rows: List[List[object]] = []
        balance_rows: List[List[object]] = []
        for n_cores in self.config.core_counts:
            energy_rows.append(
                [n_cores] + [self.point(n_cores, p).mean_energy_per_hyperperiod
                             for p in partitioners])
            improvement_rows.append(
                [n_cores] + [self.improvement_over_single_core(n_cores, p)
                             for p in partitioners])
            balance_rows.append(
                [n_cores]
                + [self.point(n_cores, p).max_core_utilization for p in partitioners]
                + [self.point(n_cores, partitioners[0]).used_cores])
        headers = ["cores"] + list(partitioners)
        lines = [
            "mean energy per global hyperperiod:",
            format_markdown_table(headers, energy_rows),
            "",
            f"energy improvement over m={self.baseline_cores} (%):",
            format_markdown_table(headers, improvement_rows),
            "",
            "max per-core worst-case utilisation:",
            format_markdown_table(headers + [f"used cores ({partitioners[0]})"],
                                  balance_rows),
            "",
            f"application: {self.config.application} | method: {self.config.method} | "
            f"policy: {self.config.policy} | hyperperiods: {self.config.n_hyperperiods} | "
            f"misses: {sum(p.deadline_misses for p in self.points)}",
        ]
        return "\n".join(lines)


def run_multicore_point(config: ScalabilityConfig, n_cores: int,
                        partitioner: str, *, jobs: int = 1) -> MulticoreResult:
    """Plan and simulate one ``(m, partitioner)`` combination.

    Every point shares the same root seed: core ``k`` replays the same
    workload stream in every cell (the runner derives per-core generators
    from ``(seed, core, SIMULATION_STREAM)``), so two cells that produce the
    same partition — e.g. first-fit at any ``m``, which packs every task onto
    core 0 whenever the whole set fits there — report *identical* energies,
    and the comparison along both axes is as paired as partitioning allows.
    """
    processor = config.resolved_processor()
    taskset = config.build_taskset()
    problem = MulticoreProblem(
        taskset=taskset,
        processor=processor,
        n_cores=n_cores,
        partitioner=partitioner,
        method=config.method,
    )
    plan = plan_multicore(problem, jobs=jobs)
    runner = MulticoreRunner(
        processor,
        policy=config.policy,
        config=SimulationConfig(n_hyperperiods=config.n_hyperperiods),
    )
    return runner.run(plan, seed=config.seed)


def _execute_point(work: Tuple[ScalabilityConfig, int, str]) -> ScalabilityPoint:
    """Worker entry point (module-level so the process pool can pickle it)."""
    config, n_cores, partitioner = work
    result = run_multicore_point(config, n_cores, partitioner)
    return ScalabilityPoint(
        n_cores=n_cores,
        partitioner=partitioner,
        mean_energy_per_hyperperiod=result.mean_energy_per_hyperperiod,
        total_energy=result.total_energy,
        max_core_utilization=max(result.core_utilizations),
        used_cores=sum(1 for u in result.core_utilizations if u > 0.0),
        deadline_misses=result.miss_count,
    )


def run_scalability(config: Optional[ScalabilityConfig] = None, *,
                    verbose: bool = False) -> ScalabilityResult:
    """Run the sweep (``config.jobs`` worker processes, same result for any count)."""
    cfg = config or ScalabilityConfig()
    units = [(cfg, n_cores, partitioner)
             for n_cores in cfg.core_counts
             for partitioner in cfg.partitioners]
    # Telemetry stage timer (spans when enabled, a bare stopwatch when not);
    # elapsed_seconds stays derivable bitwise from the recorded span.
    with _telemetry().stage("scalability.run") as timer:
        if cfg.jobs == 1 or len(units) <= 1:
            points = [_execute_point(unit) for unit in units]
        else:
            with ProcessPoolExecutor(max_workers=min(cfg.jobs, len(units))) as pool:
                points = list(pool.map(_execute_point, units))
    elapsed = timer.elapsed_seconds
    if verbose:
        for point in points:
            print(f"scalability: m={point.n_cores} {point.partitioner} "
                  f"energy/hp={point.mean_energy_per_hyperperiod:.4g} "
                  f"misses={point.deadline_misses}")
    return ScalabilityResult(config=cfg, points=points, elapsed_seconds=elapsed)
