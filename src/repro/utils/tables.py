"""Plain-text table rendering for the experiment harness.

The benchmark harness prints the same rows/series the paper reports; these
helpers render them as GitHub-flavoured markdown tables or CSV without pulling
in any third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

__all__ = ["format_markdown_table", "format_csv"]

Cell = Union[str, int, float]


def _render_cell(cell: Cell, float_format: str) -> str:
    if isinstance(cell, bool):  # bool is an int subclass; render explicitly
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return format(cell, float_format)
    return str(cell)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                          float_format: str = ".2f") -> str:
    """Render ``headers``/``rows`` as a GitHub-flavoured markdown table."""
    rendered_rows: List[List[str]] = [[_render_cell(c, float_format) for c in row] for row in rows]
    header_cells = [str(h) for h in headers]
    widths = [len(h) for h in header_cells]
    for row in rendered_rows:
        if len(row) != len(header_cells):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(header_cells)} columns: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)) + " |"

    lines = [fmt_row(header_cells), "| " + " | ".join("-" * w for w in widths) + " |"]
    lines.extend(fmt_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
               float_format: str = ".6g") -> str:
    """Render ``headers``/``rows`` as CSV text (no quoting; cells must be simple)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(",".join(_render_cell(c, float_format) for c in row))
    return "\n".join(lines)
