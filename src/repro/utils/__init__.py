"""Small shared utilities (exact rational math, table formatting, validation)."""

from .rational import (
    almost_equal,
    almost_geq,
    almost_leq,
    fraction_lcm,
    lcm_of_values,
    to_fraction,
)
from .tables import format_csv, format_markdown_table

__all__ = [
    "almost_equal",
    "almost_geq",
    "almost_leq",
    "fraction_lcm",
    "lcm_of_values",
    "to_fraction",
    "format_csv",
    "format_markdown_table",
]
