"""Exact rational helpers for hyperperiod computation.

Task periods are real numbers (the CNC/GAP case studies use milliseconds with
fractional values), so the hyperperiod cannot be computed with an integer LCM
directly.  We convert each period to a :class:`fractions.Fraction` with a
bounded denominator and take the LCM of the fractions, which keeps the result
exact for any realistic period specification.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, Sequence

__all__ = ["to_fraction", "fraction_lcm", "lcm_of_values", "almost_equal", "almost_leq", "almost_geq"]

#: Maximum denominator used when converting floats to fractions.  1e6 keeps
#: micro-second resolution for periods expressed in seconds.
MAX_DENOMINATOR = 10 ** 6


def to_fraction(value: float, max_denominator: int = MAX_DENOMINATOR) -> Fraction:
    """Convert ``value`` to a fraction with a bounded denominator."""
    if value <= 0:
        raise ValueError(f"expected a positive value, got {value}")
    return Fraction(value).limit_denominator(max_denominator)


def fraction_lcm(a: Fraction, b: Fraction) -> Fraction:
    """Least common multiple of two positive fractions.

    ``lcm(p/q, r/s) = lcm(p, r) / gcd(q, s)`` once both are in lowest terms.
    """
    numerator = a.numerator * b.numerator // gcd(a.numerator, b.numerator)
    denominator = gcd(a.denominator, b.denominator)
    return Fraction(numerator, denominator)


def lcm_of_values(values: Sequence[float], max_denominator: int = MAX_DENOMINATOR) -> float:
    """Least common multiple of a sequence of positive real values."""
    if not values:
        raise ValueError("cannot compute the LCM of an empty sequence")
    result = to_fraction(values[0], max_denominator)
    for value in values[1:]:
        result = fraction_lcm(result, to_fraction(value, max_denominator))
    return float(result)


def almost_equal(a: float, b: float, *, rel: float = 1e-9, abs_tol: float = 1e-9) -> bool:
    """Tolerant float equality used by schedule invariant checks."""
    return abs(a - b) <= max(abs_tol, rel * max(abs(a), abs(b)))


def almost_leq(a: float, b: float, *, tol: float = 1e-9) -> bool:
    """``a <= b`` with tolerance."""
    return a <= b + tol


def almost_geq(a: float, b: float, *, tol: float = 1e-9) -> bool:
    """``a >= b`` with tolerance."""
    return a >= b - tol


def all_positive(values: Iterable[float]) -> bool:
    """True when every element of ``values`` is strictly positive."""
    return all(v > 0 for v in values)
