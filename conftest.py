"""Pytest bootstrap: make the src-layout package importable without installation.

The repository uses a ``src/`` layout.  When the package has been installed
(``pip install -e .``) this file is a no-op; otherwise it prepends ``src/`` to
``sys.path`` so the test suite and the benchmarks run directly from a fresh
checkout (useful on machines without network access for build back-ends).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
