"""Smoke tests for the example scripts.

Every script must at least be syntactically valid; the multicore partitioning
example (the cheapest end-to-end demonstration of the allocation subsystem)
is additionally *executed* in its ``--quick`` mode in a fresh interpreter, the
way a user would run it.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")


def example_scripts():
    return sorted(name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py"))


def test_examples_directory_is_populated():
    assert "multicore_partitioning.py" in example_scripts()


@pytest.mark.parametrize("script", example_scripts())
def test_example_compiles(script):
    path = os.path.join(EXAMPLES_DIR, script)
    with open(path) as handle:
        compile(handle.read(), path, "exec")


def _run_example(script, *args):
    environment = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    environment["PYTHONPATH"] = src + os.pathsep + environment.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script), *args],
        capture_output=True, text=True, env=environment, cwd=REPO_ROOT,
        timeout=300,
    )


def test_multicore_partitioning_example_runs_quick():
    completed = _run_example("multicore_partitioning.py", "--quick")
    assert completed.returncode == 0, completed.stderr
    output = completed.stdout
    for expected in ("cnc", "gap", "ffd", "wfd", "energy", "partitioner"):
        assert expected in output
    # The example's headline claim: balancing beats packing on both apps.
    assert "4-core partitioned DVS" in output
