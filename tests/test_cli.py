"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    @pytest.mark.parametrize("command", ["motivation", "figure6a", "figure6b",
                                         "simulate", "trace", "sweep",
                                         "partition", "scalability"])
    def test_known_subcommands(self, command):
        args = build_parser().parse_args([command])
        assert callable(args.runner)

    def test_flags(self):
        args = build_parser().parse_args(["figure6a", "--quick", "--seed", "11"])
        assert args.quick and args.seed == 11

    def test_figure_jobs_flag(self):
        args = build_parser().parse_args(["figure6a", "--jobs", "4"])
        assert args.jobs == 4

    def test_simulate_flags(self):
        args = build_parser().parse_args(
            ["simulate", "--app", "cnc", "--method", "acs", "--policy", "all"])
        assert args.app == "cnc" and args.method == "acs" and args.policy == "all"

    def test_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--jobs", "2", "--tasksets", "6", "--policy", "lookahead"])
        assert args.jobs == 2 and args.tasksets == 6 and args.policy == "lookahead"

    def test_sweep_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--policy", "oracle"])

    def test_partition_flags(self):
        args = build_parser().parse_args(
            ["partition", "--cores", "4", "--partitioner", "wfd", "--app", "cnc"])
        assert args.cores == 4 and args.partitioner == "wfd" and args.app == "cnc"

    def test_partition_rejects_unknown_partitioner(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["partition", "--partitioner", "oracle"])

    def test_scalability_flags(self):
        args = build_parser().parse_args(
            ["scalability", "--cores", "1,2", "--partitioners", "wfd", "--quick"])
        assert args.cores == "1,2" and args.partitioners == "wfd" and args.quick

    def test_trace_flags(self):
        args = build_parser().parse_args(
            ["trace", "--app", "demo", "--policy", "lookahead", "--jitter", "1.5"])
        assert args.app == "demo" and args.policy == "lookahead"
        assert args.jitter == 1.5 and args.hyperperiods == 2

    def test_trace_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--policy", "oracle"])


class TestMain:
    def test_motivation_runs(self, capsys):
        assert main(["motivation"]) == 0
        output = capsys.readouterr().out
        assert "average-case improvement" in output
        assert "Fig. 2" in output

    def test_figure6b_quick_runs(self, capsys):
        assert main(["figure6b", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "CNC" in output and "GAP" in output

    def test_simulate_demo_all_policies(self, capsys):
        assert main(["simulate", "--app", "demo", "--policy", "all",
                     "--hyperperiods", "5"]) == 0
        output = capsys.readouterr().out
        for policy in ("static", "greedy", "lookahead", "proportional"):
            assert policy in output
        assert "saving vs static %" in output

    def test_trace_prints_events_and_saves_json(self, capsys, tmp_path):
        target = tmp_path / "events.json"
        assert main(["trace", "--app", "demo", "--jitter", "1.5",
                     "--output", str(target)]) == 0
        output = capsys.readouterr().out
        assert "arrivals=sporadic(max_jitter=1.5)" in output
        assert "execution trace" in output  # the Gantt chart header
        for kind in ("JobRelease", "SegmentStart", "SegmentEnd", "HyperperiodReset"):
            assert kind in output
        import json

        from repro.runtime.trace import EventTrace

        rows = json.loads(target.read_text())["events"]
        trace = EventTrace.from_dicts(rows)  # strict: kinds and fields validate
        assert len(trace) > 0
        assert f"{len(trace)} events" in output

    def test_trace_periodic_has_no_jitter_label(self, capsys):
        assert main(["trace", "--hyperperiods", "1"]) == 0
        output = capsys.readouterr().out
        assert "arrivals=periodic" in output

    @pytest.mark.parametrize("argv", [
        ["simulate", "--app", "demo", "--policy", "oracle"],
        ["simulate", "--app", "demo", "--policy", ""],
        ["sweep", "--quick", "--jobs", "0"],
    ])
    def test_bad_arguments_fail_cleanly(self, argv, capsys):
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")

    def test_partition_runs_and_serializes(self, capsys, tmp_path):
        target = tmp_path / "multicore.json"
        assert main(["partition", "--cores", "4", "--partitioner", "wfd",
                     "--app", "demo", "--hyperperiods", "3",
                     "--output", str(target)]) == 0
        output = capsys.readouterr().out
        assert "partitioner=wfd" in output
        assert "mean energy per global hyperperiod" in output
        import json
        data = json.loads(target.read_text())
        assert data["n_cores"] == 4
        assert data["partitioner"] == "wfd"
        assert data["total_energy"] > 0
        assert len(data["cores"]) == 4
        assert sorted(data["assignment"]) == ["camera", "logger", "planner"]

    def test_scalability_quick_runs(self, capsys):
        assert main(["scalability", "--quick", "--partitioners", "ffd,wfd"]) == 0
        output = capsys.readouterr().out
        assert "energy improvement over m=1" in output
        assert "wall-clock" in output

    @pytest.mark.parametrize("argv", [
        ["partition", "--cores", "0"],
        ["partition", "--app", "demo", "--jobs", "0"],
        ["scalability", "--cores", "two"],
        ["scalability", "--cores", ""],
    ])
    def test_partition_bad_arguments_fail_cleanly(self, argv, capsys):
        assert main(argv) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_sweep_quick_runs_and_saves_json(self, capsys, tmp_path):
        target = tmp_path / "sweep.json"
        assert main(["sweep", "--quick", "--output", str(target)]) == 0
        output = capsys.readouterr().out
        assert "mean energy / hyperperiod" in output
        assert "wall-clock" in output
        import json
        data = json.loads(target.read_text())
        assert data["config"]["policy"] == "greedy"
        assert len(data["results"]) == data["config"]["n_tasksets"]
