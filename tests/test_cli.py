"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    @pytest.mark.parametrize("command", ["motivation", "figure6a", "figure6b"])
    def test_known_subcommands(self, command):
        args = build_parser().parse_args([command])
        assert callable(args.runner)

    def test_flags(self):
        args = build_parser().parse_args(["figure6a", "--quick", "--seed", "11"])
        assert args.quick and args.seed == 11


class TestMain:
    def test_motivation_runs(self, capsys):
        assert main(["motivation"]) == 0
        output = capsys.readouterr().out
        assert "average-case improvement" in output
        assert "Fig. 2" in output

    def test_figure6b_quick_runs(self, capsys):
        assert main(["figure6b", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "CNC" in output and "GAP" in output
