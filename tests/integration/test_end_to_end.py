"""End-to-end integration tests across the full pipeline.

These tests exercise the complete flow the paper describes — expansion →
offline NLP → online simulation — on several task sets and check the headline
claims: ACS never misses a deadline, reduces runtime energy relative to WCS
when workloads vary, and the gain shrinks as the BCEC/WCEC ratio approaches 1.
"""

import numpy as np
import pytest

from repro import (
    ACSScheduler,
    DVSSimulator,
    NormalWorkload,
    SimulationConfig,
    Task,
    TaskSet,
    WCSScheduler,
    ideal_processor,
    improvement_percent,
)
from repro.offline.evaluation import average_case_energy, evaluate_schedule
from repro.workloads.distributions import FixedWorkload
from repro.workloads.random_tasksets import RandomTaskSetConfig, generate_random_taskset


@pytest.fixture(scope="module")
def processor():
    return ideal_processor(fmax=1000.0)


def simulate(schedule, processor, workload, n_hyperperiods=30, seed=0):
    simulator = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=n_hyperperiods))
    return simulator.run(schedule, workload, np.random.default_rng(seed))


class TestHeadlineClaim:
    def test_acs_beats_wcs_on_variable_workloads(self, processor):
        taskset = TaskSet([
            Task("A", period=10, wcec=3000, acec=1650, bcec=300),
            Task("B", period=20, wcec=8000, acec=4400, bcec=800),
            Task("C", period=40, wcec=4000, acec=2200, bcec=400),
        ])
        acs = ACSScheduler(processor).schedule(taskset)
        wcs = WCSScheduler(processor).schedule(taskset)
        workload = NormalWorkload()
        acs_result = simulate(acs, processor, workload)
        wcs_result = simulate(wcs, processor, workload)
        assert acs_result.met_all_deadlines and wcs_result.met_all_deadlines
        improvement = improvement_percent(wcs_result.mean_energy_per_hyperperiod,
                                          acs_result.mean_energy_per_hyperperiod)
        assert improvement > 10.0

    def test_gain_shrinks_as_ratio_approaches_one(self, processor):
        """The paper's main trend: BCEC/WCEC → 1 leaves no variation to exploit."""
        improvements = {}
        for ratio in (0.1, 0.9):
            taskset = TaskSet([
                Task("A", period=10, wcec=3000),
                Task("B", period=20, wcec=8000),
            ]).with_bcec_ratio(ratio)
            acs = ACSScheduler(processor).schedule(taskset)
            wcs = WCSScheduler(processor).schedule(taskset)
            workload = NormalWorkload()
            acs_result = simulate(acs, processor, workload, seed=3)
            wcs_result = simulate(wcs, processor, workload, seed=3)
            improvements[ratio] = improvement_percent(
                wcs_result.mean_energy_per_hyperperiod, acs_result.mean_energy_per_hyperperiod)
        assert improvements[0.1] > improvements[0.9] - 1.0
        assert improvements[0.1] > 5.0

    def test_random_tasksets_never_miss_deadlines(self, processor):
        """Worst-case guarantee holds on randomly generated task sets."""
        rng = np.random.default_rng(11)
        config = RandomTaskSetConfig(n_tasks=4, bcec_wcec_ratio=0.1)
        for index in range(2):
            taskset = generate_random_taskset(config, processor, rng, index)
            acs = ACSScheduler(processor).schedule(taskset)
            result = simulate(acs, processor, FixedWorkload(mode="wcec"), n_hyperperiods=2)
            assert result.met_all_deadlines
            result = simulate(acs, processor, NormalWorkload(), n_hyperperiods=20, seed=index)
            assert result.met_all_deadlines


class TestSimulatorVsAnalytic:
    def test_average_case_energy_agrees(self, processor, two_task_set=None):
        """The analytic evaluator (the NLP objective) and the event simulator must agree
        when every job takes exactly its ACEC."""
        taskset = TaskSet([
            Task("A", period=10, wcec=3000, acec=1500, bcec=600),
            Task("B", period=20, wcec=8000, acec=4400, bcec=800),
        ])
        for scheduler in (ACSScheduler(processor), WCSScheduler(processor)):
            schedule = scheduler.schedule(taskset)
            analytic = average_case_energy(schedule, processor)
            simulated = simulate(schedule, processor, FixedWorkload(mode="acec"),
                                 n_hyperperiods=1).total_energy
            assert simulated == pytest.approx(analytic, rel=1e-6)

    def test_worst_case_energy_agrees(self, processor):
        taskset = TaskSet([
            Task("hi", period=10, wcec=2000, acec=1000, bcec=400),
            Task("mid", period=20, wcec=5000, acec=2500, bcec=1000),
            Task("lo", period=40, wcec=12000, acec=6000, bcec=2400),
        ])
        schedule = ACSScheduler(processor).schedule(taskset)
        actual = {i.key: i.wcec for i in schedule.expansion.instances}
        analytic = evaluate_schedule(schedule, processor, actual).energy
        simulated = simulate(schedule, processor, FixedWorkload(mode="wcec"),
                             n_hyperperiods=1).total_energy
        assert simulated == pytest.approx(analytic, rel=1e-6)


class TestCmosProcessorPipeline:
    def test_full_pipeline_with_cmos_delay_law(self):
        """The whole flow also works with the non-linear delay law."""
        from repro import cmos_processor
        processor = cmos_processor(fmax=1000.0)
        taskset = TaskSet([
            Task("A", period=10, wcec=3000, acec=1500, bcec=600),
            Task("B", period=20, wcec=8000, acec=4400, bcec=800),
        ])
        acs = ACSScheduler(processor).schedule(taskset)
        wcs = WCSScheduler(processor).schedule(taskset)
        acs.validate(processor)
        workload = NormalWorkload()
        acs_result = simulate(acs, processor, workload, n_hyperperiods=20, seed=5)
        wcs_result = simulate(wcs, processor, workload, n_hyperperiods=20, seed=5)
        assert acs_result.met_all_deadlines
        assert acs_result.mean_energy_per_hyperperiod <= wcs_result.mean_energy_per_hyperperiod * 1.02
