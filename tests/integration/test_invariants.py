"""Property-based invariants across the offline/online pipeline.

Hypothesis generates small random task sets; for each we check the invariants
that must hold for *any* input:

* the ACS and WCS schedules are structurally valid (budgets conserved, slots
  respected, worst-case chain feasible);
* simulating the worst case never misses a deadline;
* the simulated energy is reproducible and strictly positive;
* ACS never does worse than WCS on the average-case analytic objective (it is
  seeded from the WCS solution, so this must hold by construction).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.task import Task
from repro.core.taskset import TaskSet
from repro.offline.acs import ACSScheduler
from repro.offline.evaluation import average_case_energy
from repro.offline.nlp import SolverOptions
from repro.offline.wcs import WCSScheduler
from repro.power.presets import ideal_processor
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.workloads.distributions import FixedWorkload, NormalWorkload

PROCESSOR = ideal_processor(fmax=1000.0)
FAST_OPTIONS = SolverOptions(maxiter=40)


@st.composite
def small_tasksets(draw):
    """2–3 tasks, divisor-friendly periods, utilisation ≤ 0.85, varied BCEC/WCEC ratios."""
    n_tasks = draw(st.integers(min_value=2, max_value=3))
    periods = draw(st.lists(st.sampled_from([10.0, 20.0, 40.0]), min_size=n_tasks, max_size=n_tasks))
    shares = draw(st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=n_tasks, max_size=n_tasks))
    ratio = draw(st.sampled_from([0.1, 0.5, 0.9]))
    utilization = draw(st.floats(min_value=0.3, max_value=0.85))
    total_share = sum(shares)
    tasks = []
    for index, (period, share) in enumerate(zip(periods, shares)):
        task_utilization = utilization * share / total_share
        wcec = max(task_utilization * period * PROCESSOR.fmax, 1.0)
        tasks.append(Task(f"t{index}", period=period, wcec=wcec).scaled(bcec_ratio=ratio))
    return TaskSet(tasks, name="hypothesis")


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(taskset=small_tasksets())
def test_schedules_valid_and_worst_case_safe(taskset):
    acs = ACSScheduler(PROCESSOR, options=FAST_OPTIONS).schedule(taskset)
    wcs = WCSScheduler(PROCESSOR, options=FAST_OPTIONS).schedule(taskset)
    for schedule in (acs, wcs):
        schedule.validate(PROCESSOR)
        for instance in schedule.expansion.instances:
            entries = schedule.entries_for_instance(instance)
            assert sum(e.wc_budget for e in entries) == pytest.approx(instance.wcec, rel=1e-6)
            assert sum(e.avg_budget for e in entries) == pytest.approx(
                min(instance.acec, instance.wcec), rel=1e-6)
        simulator = DVSSimulator(PROCESSOR, config=SimulationConfig(n_hyperperiods=2))
        result = simulator.run(schedule, FixedWorkload(mode="wcec"))
        assert result.met_all_deadlines
        assert result.total_energy > 0
    # ACS is warm-started from WCS, so its analytic average-case energy can never be worse.
    assert average_case_energy(acs, PROCESSOR) <= average_case_energy(wcs, PROCESSOR) * (1 + 1e-6)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(taskset=small_tasksets(), seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_simulation_reproducible_and_miss_free_on_random_workloads(taskset, seed):
    schedule = ACSScheduler(PROCESSOR, options=FAST_OPTIONS).schedule(taskset)
    config = SimulationConfig(n_hyperperiods=5)
    first = DVSSimulator(PROCESSOR, config=config).run(
        schedule, NormalWorkload(), np.random.default_rng(seed))
    second = DVSSimulator(PROCESSOR, config=config).run(
        schedule, NormalWorkload(), np.random.default_rng(seed))
    assert first.total_energy == pytest.approx(second.total_energy)
    assert first.met_all_deadlines
    # Energy is bounded below by running every executed cycle at vmin and above by vmax.
    executed = sum(first.energy_by_task.values())
    assert executed == pytest.approx(first.total_energy)
