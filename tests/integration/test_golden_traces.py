"""Golden event-trace regression tests.

Each fixture under ``tests/fixtures/traces/`` pins the *complete* typed event
stream of one deterministic run — every release, resume, frequency change,
segment, preemption and deadline miss with full float precision.  Any change
to dispatch order, RNG consumption, slack arithmetic or event emission shows
up as a trace diff here, long before it would move an aggregate energy
number.

Pinned runs:

* ``figure6a_smoke_unit0``  — the first work unit of the committed
  ``examples/scenarios/figure6a.toml`` at its smoke profile (trace forced on;
  tracing is opt-in, so forcing it cannot change the simulated numbers).
* ``demo_greedy``           — the CLI demo application (``repro trace`` with
  its defaults).  The committed motivation scenario itself is the analytic
  end-times table (kind ``motivation``) and never runs the simulator, so the
  demo frame stands in for it as the hand-sized golden run.
* ``sporadic_unit0``        — the first unit of the committed
  ``examples/scenarios/sporadic.toml`` exactly as ``repro run`` executes it.

Regenerate intentionally with::

    REPRO_REGEN_FIXTURES=1 PYTHONPATH=src python -m pytest tests/integration/test_golden_traces.py

after reviewing the diff — a regeneration is a semantic change to the
simulator and should be called out in the commit message.
"""

import json
import os

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.experiments.harness import run_comparisons
from repro.power.presets import ideal_processor
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.runtime.trace import EventTrace
from repro.scenarios import MemoryStore, ScenarioEngine, ScenarioSpec, load_scenario
from repro.workloads.distributions import NormalWorkload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
FIXTURES_DIR = os.path.join(REPO_ROOT, "tests", "fixtures", "traces")
SCENARIOS_DIR = os.path.join(REPO_ROOT, "examples", "scenarios")
REGEN = os.environ.get("REPRO_REGEN_FIXTURES") == "1"


# --------------------------------------------------------------------- #
# Deterministic generators, one per fixture
# --------------------------------------------------------------------- #
def _traced_spec(path, profile=None):
    """Load a committed scenario with the event stream forced on."""
    spec = load_scenario(path, profile=profile)
    data = spec.to_dict()
    data["simulation"]["trace"] = True
    return ScenarioSpec.from_dict(data)


def _scenario_unit_events(spec, unit_index=0):
    """The first point's ``unit_index``-th unit, exactly as the engine runs it."""
    engine = ScenarioEngine(MemoryStore())
    compiled = engine.compile(spec)
    key = compiled.points[0].unit_keys[unit_index]
    result = run_comparisons([compiled.units[key]])[0]
    return {
        method: outcome.simulation.trace.to_dicts()
        for method, outcome in result.outcomes.items()
    }


def generate_figure6a_smoke_unit0():
    spec = _traced_spec(os.path.join(SCENARIOS_DIR, "figure6a.toml"), profile="smoke")
    return _scenario_unit_events(spec)


def generate_sporadic_unit0():
    # sporadic.toml already declares trace = true; no forcing needed.
    spec = load_scenario(os.path.join(SCENARIOS_DIR, "sporadic.toml"))
    assert spec.simulation.trace, "sporadic.toml must commit to trace = true"
    return _scenario_unit_events(spec)


def generate_demo_greedy():
    """The `repro trace` default run, built through the library API."""
    from repro.cli import _demo_taskset
    from repro.experiments.harness import make_schedulers

    processor = ideal_processor(fmax=1000.0)
    schedule = make_schedulers(["acs"], processor)["acs"].schedule(_demo_taskset(0.5))
    simulator = DVSSimulator(
        processor, policy="greedy",
        config=SimulationConfig(n_hyperperiods=2, trace=True))
    result = simulator.run(schedule, NormalWorkload(), np.random.default_rng(2005))
    return {"acs": result.trace.to_dicts()}


GENERATORS = {
    "figure6a_smoke_unit0": generate_figure6a_smoke_unit0,
    "demo_greedy": generate_demo_greedy,
    "sporadic_unit0": generate_sporadic_unit0,
}


# --------------------------------------------------------------------- #
# Fixture I/O (one event per line, so regeneration diffs stay readable)
# --------------------------------------------------------------------- #
def _fixture_path(name):
    return os.path.join(FIXTURES_DIR, f"{name}.json")


def _write_fixture(name, traces):
    os.makedirs(FIXTURES_DIR, exist_ok=True)
    chunks = []
    for method in sorted(traces):
        rows = ",\n".join("   " + json.dumps(row, sort_keys=True)
                          for row in traces[method])
        chunks.append(f"  {json.dumps(method)}: [\n{rows}\n  ]")
    with open(_fixture_path(name), "w") as handle:
        handle.write("{\n" + ",\n".join(chunks) + "\n}\n")


def _read_fixture(name):
    with open(_fixture_path(name)) as handle:
        return json.load(handle)


# --------------------------------------------------------------------- #
# Tests
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_golden_trace(name):
    traces = GENERATORS[name]()
    if REGEN:
        _write_fixture(name, traces)
    assert os.path.exists(_fixture_path(name)), (
        f"missing fixture {name}.json — generate it with REPRO_REGEN_FIXTURES=1")
    golden = _read_fixture(name)
    assert sorted(golden) == sorted(traces)
    for method in sorted(golden):
        expected = golden[method]
        actual = traces[method]
        assert len(actual) == len(expected), (
            f"{name}/{method}: {len(actual)} events, fixture has {len(expected)}")
        for index, (got, want) in enumerate(zip(actual, expected)):
            assert got == want, (
                f"{name}/{method} diverges at event {index}:\n"
                f"  got  {got}\n  want {want}")
        # The committed rows must also rebuild into a well-formed trace.
        rebuilt = EventTrace.from_dicts(expected)
        assert rebuilt.to_dicts() == expected


def test_fixture_directory_has_no_orphans():
    committed = {name[:-5] for name in os.listdir(FIXTURES_DIR)
                 if name.endswith(".json")}
    assert committed == set(GENERATORS), (
        "fixtures and generators out of sync — delete stale files or add a generator")


def test_sporadic_scenario_runs_end_to_end_through_the_cli(tmp_path, capsys):
    """The acceptance path: `repro run examples/scenarios/sporadic.toml`."""
    spec_path = os.path.join(SCENARIOS_DIR, "sporadic.toml")
    exit_code = cli_main(["run", spec_path, "--store", str(tmp_path / "store"),
                          "--output", str(tmp_path / "out")])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "sporadic" in output
    assert "computed=2 skipped=0" in output
    # Warm rerun: everything store-hits, nothing recomputed.
    exit_code = cli_main(["run", spec_path, "--store", str(tmp_path / "store")])
    assert exit_code == 0
    assert "computed=0 skipped=2" in capsys.readouterr().out
    result = json.loads((tmp_path / "out" / "sporadic.json").read_text())
    assert result["scenario"]["name"] == "sporadic"
    assert result["points"]
