"""Advisory in-flight claims: exclusive-create, release, and gc of orphans."""

import json
import os

from repro.scenarios import ClaimRecord, MemoryStore, ResultStore


class TestResultStoreClaims:
    def test_claim_is_exclusive_create(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.claim("k1", owner="serve:1") is True
        assert store.claim("k1", owner="serve:2") is False  # second claimant loses
        assert store.claim("k2") is True  # other keys unaffected

    def test_release_and_reclaim(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.claim("k1") is True
        assert store.release("k1") is True
        assert store.release("k1") is False  # already released: no-op
        assert store.claim("k1") is True  # the key is claimable again

    def test_claims_lists_records_with_metadata(self, tmp_path):
        store = ResultStore(tmp_path)
        store.claim("k1", owner="serve:a")
        store.claim("k2", owner="serve:b")
        claims = store.claims()
        assert [claim.key for claim in claims] == ["k1", "k2"]
        assert all(isinstance(claim, ClaimRecord) for claim in claims)
        assert claims[0].owner == "serve:a" and claims[0].pid == os.getpid()
        assert claims[0].created > 0

    def test_claims_are_advisory_only(self, tmp_path):
        """A claim never blocks get/put — correctness rests on atomic writes."""
        store = ResultStore(tmp_path)
        store.claim("deadbeef")
        assert store.get("deadbeef") is None
        store.put("deadbeef", {"x": 1})
        assert store.get("deadbeef") == {"x": 1}

    def test_unreadable_claim_files_are_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.claim("k1")
        (store.claims_dir / "torn.json").write_text("{not json")
        assert [claim.key for claim in store.claims()] == ["k1"]

    def test_gc_collects_orphaned_claims(self, tmp_path):
        store = ResultStore(tmp_path)
        store.claim("orphan")
        removed = store.gc(remove_all=True)
        assert any(entry.label == "(orphaned claim)" for entry in removed)
        assert store.claims() == []

    def test_gc_older_than_keeps_fresh_claims(self, tmp_path):
        store = ResultStore(tmp_path)
        store.claim("fresh")
        removed = store.gc(older_than_days=1.0)
        assert removed == []
        assert [claim.key for claim in store.claims()] == ["fresh"]

    def test_gc_dry_run_reports_without_deleting(self, tmp_path):
        store = ResultStore(tmp_path)
        store.claim("orphan")
        removed = store.gc(remove_all=True, dry_run=True)
        assert any(entry.label == "(orphaned claim)" for entry in removed)
        assert [claim.key for claim in store.claims()] == ["orphan"]

    def test_claim_record_is_json_on_disk(self, tmp_path):
        store = ResultStore(tmp_path)
        store.claim("k1", owner="serve:x")
        record = json.loads(store.claim_path("k1").read_text())
        assert record["key"] == "k1" and record["owner"] == "serve:x"


class TestMemoryStoreClaims:
    """The in-process stand-in honours the same claim contract."""

    def test_parity_with_result_store(self):
        store = MemoryStore()
        assert store.claim("k1", owner="serve:a") is True
        assert store.claim("k1") is False
        assert [claim.key for claim in store.claims()] == ["k1"]
        assert store.claims()[0].owner == "serve:a"
        assert store.release("k1") is True
        assert store.release("k1") is False
        assert store.claims() == []
