"""Result store: content addressing, atomicity, resume and garbage collection."""

import json

import pytest

from repro.core.errors import ReproError
from repro.scenarios import ResultStore, ScenarioEngine, ScenarioSpec, signature_key

#: Small but real comparison sweep: 2 ratios x 2 repetitions = 4 work units.
SWEEP = {
    "kind": "comparison",
    "name": "mini-sweep",
    "taskset": {"source": "random", "n_tasks": 3, "periods": [10.0, 20.0, 40.0]},
    "simulation": {"hyperperiods": 3, "seed": 7, "repetitions": 2},
    "matrix": {"taskset.ratio": [0.1, 0.9]},
}


class TestSignatureKey:
    def test_key_is_order_insensitive_and_content_sensitive(self):
        key_a = signature_key({"seed": 1, "kind": "comparison"})
        key_b = signature_key({"kind": "comparison", "seed": 1})
        key_c = signature_key({"kind": "comparison", "seed": 2})
        assert key_a == key_b
        assert key_a != key_c
        assert len(key_a) == 64

    def test_non_serialisable_signature_fails_cleanly(self):
        with pytest.raises(ReproError, match="serialisable"):
            signature_key({"bad": object()})


class TestStoreBasics:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = signature_key({"x": 1})
        assert store.get(key) is None
        store.put(key, {"value": 1.5}, scenario="s", label="p")
        assert store.get(key) == {"value": 1.5}
        (entry,) = store.entries()
        assert entry.key == key
        assert entry.scenario == "s" and entry.label == "p"
        assert not entry.stale

    def test_torn_record_reads_as_miss_and_gc_stale_removes_it(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = signature_key({"x": 2})
        store.put(key, {"value": 2})
        store.path_for(key).write_text("{ torn json", encoding="utf-8")
        assert store.get(key) is None
        removed = store.gc(stale_only=True)
        assert [entry.key for entry in removed] == [key]
        assert not store.path_for(key).exists()

    def test_gc_needs_exactly_one_criterion(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(ReproError, match="exactly one"):
            store.gc()
        with pytest.raises(ReproError, match="exactly one"):
            store.gc(remove_all=True, stale_only=True)

    def test_gc_older_than_and_dry_run(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = signature_key({"x": 3})
        store.put(key, {"value": 3})
        assert store.gc(older_than_days=1.0) == []  # fresh record survives
        would_remove = store.gc(older_than_days=-1.0, dry_run=True)  # cutoff in the future
        assert [entry.key for entry in would_remove] == [key]
        assert store.contains(key)  # dry run removed nothing
        store.gc(older_than_days=-1.0)
        assert not store.contains(key)

    def test_killed_mid_write_orphan_is_collected_by_stale_gc(self, tmp_path):
        """A put killed between scratch write and rename leaves a .tmp-<pid> orphan."""
        store = ResultStore(tmp_path / "store")
        key = signature_key({"x": 4})
        store.put(key, {"value": 4})
        # Simulate a writer killed mid-put: the scratch file was written but
        # the atomic rename never happened (same naming as ResultStore.put).
        orphan = store.path_for(key).with_suffix(".tmp-12345")
        orphan.write_text('{"partial":', encoding="utf-8")
        # The orphan never corrupts reads or listings...
        assert store.get(key) == {"value": 4}
        assert [entry.key for entry in store.entries()] == [key]
        # ...and stale GC collects it (and only it — the real record survives).
        removed = store.gc(stale_only=True)
        assert [entry.key for entry in removed] == [key]
        assert [entry.label for entry in removed] == ["(orphaned scratch file)"]
        assert not orphan.exists()
        assert store.contains(key)

    def test_orphan_age_is_respected_by_older_than_gc(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = signature_key({"x": 5})
        store.put(key, {"value": 5})
        orphan = store.path_for(key).with_suffix(".tmp-999")
        orphan.write_text("x", encoding="utf-8")
        assert store.gc(older_than_days=1.0) == []  # fresh orphan survives by mtime
        removed = store.gc(older_than_days=-1.0)  # cutoff in the future collects both
        assert {entry.key for entry in removed} == {key}
        assert not orphan.exists()
        # remove_all also sweeps orphans.
        orphan.write_text("x", encoding="utf-8")
        removed = store.gc(remove_all=True)
        assert [entry.label for entry in removed] == ["(orphaned scratch file)"]
        assert not orphan.exists()


class TestResume:
    def test_killed_sweep_resumes_with_zero_recomputation(self, tmp_path):
        """Cold run, simulated kill, resume: no duplicate work, bitwise aggregates."""
        store = ResultStore(tmp_path / "store")
        spec = ScenarioSpec.from_dict(SWEEP)

        cold = ScenarioEngine(store).run(spec)
        assert (cold.computed, cold.skipped) == (4, 0)

        # A finished sweep replays entirely from the store...
        warm = ScenarioEngine(store).run(spec)
        assert (warm.computed, warm.skipped) == (0, 4)
        assert warm.points == cold.points  # bitwise: identical floats, not approx

        # ...and a sweep killed halfway (half the records gone) resumes by
        # recomputing exactly the missing units, to the same aggregates.
        victims = [entry.key for entry in store.entries()][:2]
        for key in victims:
            store.remove(key)
        resumed = ScenarioEngine(store).run(spec)
        assert (resumed.computed, resumed.skipped) == (2, 2)
        assert resumed.points == cold.points

    def test_units_are_persisted_as_they_finish(self, tmp_path, monkeypatch):
        """A run that dies mid-sweep keeps every already-finished unit on disk."""
        import repro.experiments.harness as harness

        store = ResultStore(tmp_path / "store")
        spec = ScenarioSpec.from_dict(SWEEP)
        real_execute = harness._execute_comparison_job
        calls = {"n": 0}

        def dying_execute(job, **kwargs):
            calls["n"] += 1
            if calls["n"] > 2:
                raise RuntimeError("simulated crash mid-sweep")
            return real_execute(job, **kwargs)

        monkeypatch.setattr(harness, "_execute_comparison_job", dying_execute)
        with pytest.raises(RuntimeError, match="mid-sweep"):
            ScenarioEngine(store).run(spec)
        # The two units that finished before the crash are already stored...
        assert len(store.entries()) == 2
        monkeypatch.undo()
        # ...so the resumed run recomputes exactly the other two.
        resumed = ScenarioEngine(store).run(spec)
        assert (resumed.computed, resumed.skipped) == (2, 2)
        fresh = ScenarioEngine(ResultStore(tmp_path / "fresh")).run(spec)
        assert resumed.points == fresh.points

    def test_force_recomputes_everything(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = ScenarioSpec.from_dict(SWEEP)
        cold = ScenarioEngine(store).run(spec)
        forced = ScenarioEngine(store).run(spec, force=True)
        assert forced.computed == 4 and forced.skipped == 0
        assert forced.points == cold.points

    def test_spec_changes_miss_the_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = ScenarioSpec.from_dict(SWEEP)
        ScenarioEngine(store).run(spec)
        changed = ScenarioSpec.from_dict({**SWEEP, "simulation": {**SWEEP["simulation"], "seed": 8}})
        rerun = ScenarioEngine(store).run(changed)
        assert rerun.computed == 4  # different seed -> different content hashes

    def test_payloads_survive_json_round_trip_bitwise(self, tmp_path):
        """Floats replayed from disk equal the in-memory originals exactly."""
        store = ResultStore(tmp_path / "store")
        spec = ScenarioSpec.from_dict(SWEEP)
        ScenarioEngine(store).run(spec)
        for entry in store.entries():
            payload = store.get(entry.key)
            assert json.loads(json.dumps(payload)) == payload
