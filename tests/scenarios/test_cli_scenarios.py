"""CLI coverage for `repro run` and `repro store ls/gc`."""

import json
import sys

import pytest

from repro.cli import build_parser, main

#: Instant scenario (deterministic, no simulation) for CLI-level round trips.
MOTIVATION = {
    "kind": "motivation",
    "name": "motivation-cli",
    "power": {"model": "ideal", "vmax": 5.0, "vmin": 0.5, "fmax": 1000.0},
}

#: Tiny comparison sweep: two work units, a couple of seconds end to end.
SWEEP = {
    "kind": "comparison",
    "name": "cli-sweep",
    "taskset": {"source": "random", "n_tasks": 2, "periods": [10.0, 20.0]},
    "simulation": {"hyperperiods": 2, "seed": 5, "repetitions": 2},
}


def write_spec(tmp_path, document, name="scenario.json"):
    target = tmp_path / name
    target.write_text(json.dumps(document))
    return str(target)


class TestParser:
    def test_run_flags(self):
        args = build_parser().parse_args(
            ["run", "a.toml", "b.json", "--profile", "smoke", "--jobs", "4",
             "--store", "/tmp/s", "--force"])
        assert args.specs == ["a.toml", "b.json"]
        assert args.profile == "smoke" and args.jobs == 4
        assert args.store == "/tmp/s" and args.force

    def test_store_subcommands(self):
        ls = build_parser().parse_args(["store", "ls", "--store", "/tmp/s"])
        assert ls.store_command == "ls"
        gc = build_parser().parse_args(["store", "gc", "--all", "--dry-run"])
        assert gc.store_command == "gc" and gc.all and gc.dry_run

    def test_gc_requires_exactly_one_criterion(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "gc"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "gc", "--all", "--stale"])


class TestRun:
    def test_no_store_run(self, capsys, tmp_path):
        spec = write_spec(tmp_path, MOTIVATION)
        assert main(["run", spec, "--no-store"]) == 0
        output = capsys.readouterr().out
        assert "== motivation-cli" in output
        assert "computed=1 skipped=0 (store: disabled)" in output
        assert "worst case under ACS" in output

    def test_store_round_trip_and_force(self, capsys, tmp_path):
        spec = write_spec(tmp_path, SWEEP)
        store = str(tmp_path / "store")
        assert main(["run", spec, "--store", store]) == 0
        assert "computed=2 skipped=0" in capsys.readouterr().out
        assert main(["run", spec, "--store", store]) == 0
        assert "computed=0 skipped=2" in capsys.readouterr().out
        assert main(["run", spec, "--store", store, "--force"]) == 0
        assert "computed=2 skipped=0" in capsys.readouterr().out

    def test_output_directory_gets_result_json(self, capsys, tmp_path):
        spec = write_spec(tmp_path, MOTIVATION)
        out_dir = tmp_path / "results"
        assert main(["run", spec, "--no-store", "--output", str(out_dir)]) == 0
        data = json.loads((out_dir / "motivation-cli.json").read_text())
        assert data["scenario"]["kind"] == "motivation"
        assert data["computed"] == 1
        assert len(data["points"]) == 1

    @pytest.mark.parametrize("argv_tail", [
        ["--profile", "turbo"],       # profile not declared in the file
        ["--jobs", "0"],              # invalid worker count
        ["--no-store", "--store", "x"],
    ])
    def test_bad_arguments_fail_cleanly(self, capsys, tmp_path, argv_tail):
        spec = write_spec(tmp_path, MOTIVATION)
        assert main(["run", spec, *argv_tail]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_missing_spec_file_fails_cleanly(self, capsys):
        assert main(["run", "no/such/file.toml", "--no-store"]) == 2
        assert "does not exist" in capsys.readouterr().err

    @pytest.mark.skipif(sys.version_info < (3, 11), reason="TOML needs tomllib")
    def test_committed_motivation_toml_runs(self, capsys):
        assert main(["run", "examples/scenarios/motivation.toml", "--no-store",
                     "--profile", "smoke"]) == 0
        assert "average-case improvement" in capsys.readouterr().out


class TestStoreCommands:
    def test_ls_and_gc_lifecycle(self, capsys, tmp_path):
        spec = write_spec(tmp_path, MOTIVATION)
        store = str(tmp_path / "store")

        assert main(["store", "ls", "--store", store]) == 0
        assert "empty" in capsys.readouterr().out

        assert main(["run", spec, "--store", store]) == 0
        capsys.readouterr()

        assert main(["store", "ls", "--store", store]) == 0
        listing = capsys.readouterr().out
        assert "motivation-cli" in listing and "1 record(s)" in listing

        assert main(["store", "gc", "--store", store, "--all", "--dry-run"]) == 0
        assert "would remove 1 record(s)" in capsys.readouterr().out

        assert main(["store", "gc", "--store", store, "--all"]) == 0
        assert "removed 1 record(s)" in capsys.readouterr().out

        assert main(["store", "ls", "--store", store]) == 0
        assert "empty" in capsys.readouterr().out

    def test_gc_stale_keeps_current_records(self, capsys, tmp_path):
        spec = write_spec(tmp_path, MOTIVATION)
        store = str(tmp_path / "store")
        assert main(["run", spec, "--store", store]) == 0
        capsys.readouterr()
        assert main(["store", "gc", "--store", store, "--stale"]) == 0
        assert "removed 0 record(s)" in capsys.readouterr().out
