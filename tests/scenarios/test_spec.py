"""Scenario spec: parsing, validation, profiles and lossless round-trips."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import ScenarioError, ScenarioLoader, ScenarioSpec, load_scenario

MINIMAL = {"kind": "comparison", "name": "mini"}


class TestValidation:
    def test_minimal_document_gets_defaults(self):
        spec = ScenarioSpec.from_dict(MINIMAL)
        assert spec.taskset.source == "random"
        assert spec.offline.methods == ("wcs", "acs")
        assert spec.offline.baseline == "wcs"
        assert spec.online.policy == "greedy"
        assert spec.workload.model == "normal"
        assert spec.power.model == "ideal"
        assert spec.simulation.seed == 2005
        assert spec.matrix == ()

    @pytest.mark.parametrize("document,fragment", [
        ({**MINIMAL, "kind": "nope"}, "kind"),
        ({**MINIMAL, "unknown_section": {}}, "unknown_section"),
        ({**MINIMAL, "taskset": {"source": "martian"}}, "taskset.source"),
        ({**MINIMAL, "taskset": {"typo_field": 1}}, "typo_field"),
        ({**MINIMAL, "taskset": {"ratio": 0.0}}, "ratio"),
        ({**MINIMAL, "taskset": {"source": "explicit"}}, "explicit"),
        ({**MINIMAL, "offline": {"methods": []}}, "at least one"),
        ({**MINIMAL, "offline": {"methods": ["acs"], "baseline": "wcs"}}, "baseline"),
        ({**MINIMAL, "offline": {"methods": ["oracle"]}}, "oracle"),
        ({**MINIMAL, "online": {"policy": "oracle"}}, "policy"),
        ({**MINIMAL, "workload": {"model": "oracle"}}, "workload"),
        ({**MINIMAL, "workload": {"model": "normal", "sigma_fraction": -1.0}}, "workload"),
        ({**MINIMAL, "power": {"model": "steam"}}, "power.model"),
        ({**MINIMAL, "power": {"model": "ideal", "vmax": -2.0}}, "power"),
        ({**MINIMAL, "simulation": {"hyperperiods": 0}}, "hyperperiods"),
        ({**MINIMAL, "simulation": {"repetitions": 0}}, "repetitions"),
        ({**MINIMAL, "simulation": {"engine": "warp"}}, "engine"),
        ({**MINIMAL, "matrix": {"taskset.no_such_field": [1, 2]}}, "no_such_field"),
        ({**MINIMAL, "matrix": {"taskset.ratio": []}}, "at least one value"),
        ({**MINIMAL, "matrix": {"nodots": [1]}}, "dotted"),
        ({**MINIMAL, "kind": "motivation", "matrix": {"taskset.ratio": [0.5]}}, "matrix"),
        ({**MINIMAL, "kind": "multicore"}, "multicore"),
        ({**MINIMAL, "multicore": {"cores": [2]}}, "multicore"),
        ({**MINIMAL, "motivation": {"wcec": 100.0}}, "motivation"),
    ])
    def test_malformed_documents_fail_eagerly(self, document, fragment):
        with pytest.raises(ScenarioError) as excinfo:
            ScenarioSpec.from_dict(document)
        assert fragment.split(".")[-1] in str(excinfo.value)

    def test_explicit_taskset_requires_core_fields(self):
        document = {**MINIMAL, "taskset": {"source": "explicit", "tasks": [{"name": "a"}]}}
        with pytest.raises(ScenarioError, match="missing fields"):
            ScenarioSpec.from_dict(document)

    def test_simulation_engine_defaults_and_round_trips(self):
        assert ScenarioSpec.from_dict(MINIMAL).simulation.engine == "auto"
        spec = ScenarioSpec.from_dict(
            {**MINIMAL, "simulation": {"engine": "batched"}})
        assert spec.simulation.engine == "batched"
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_auto_engine_allowed_for_every_kind(self):
        document = {"kind": "motivation", "name": "m",
                    "simulation": {"engine": "auto"}}
        assert ScenarioSpec.from_dict(document).simulation.engine == "auto"

    def test_batched_engine_rejected_outside_comparison_kind(self):
        document = {"kind": "motivation", "name": "m",
                    "simulation": {"engine": "batched"}}
        with pytest.raises(ScenarioError, match="only supported for kind"):
            ScenarioSpec.from_dict(document)

    def test_trace_defaults_off_and_round_trips(self):
        assert ScenarioSpec.from_dict(MINIMAL).simulation.trace is False
        spec = ScenarioSpec.from_dict({**MINIMAL, "simulation": {"trace": True}})
        assert spec.simulation.trace is True
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_trace_rejected_outside_comparison_kind(self):
        document = {"kind": "motivation", "name": "m",
                    "simulation": {"trace": True}}
        with pytest.raises(ScenarioError, match="trace"):
            ScenarioSpec.from_dict(document)
        with pytest.raises(ScenarioError, match=r"simulation\.trace: expected"):
            ScenarioSpec.from_dict({**MINIMAL, "simulation": {"trace": "yes"}})

    def test_arrivals_section_defaults_and_round_trips(self):
        assert ScenarioSpec.from_dict(MINIMAL).arrivals.model == "periodic"
        spec = ScenarioSpec.from_dict(
            {**MINIMAL, "arrivals": {"model": "sporadic", "max_jitter": 1.5}})
        assert spec.arrivals.model == "sporadic"
        assert spec.arrivals.params == {"max_jitter": 1.5}
        data = spec.to_dict()
        assert data["arrivals"] == {"model": "sporadic", "max_jitter": 1.5}
        assert ScenarioSpec.from_dict(data) == spec
        # The default periodic model is left implicit in the serialised form.
        assert "arrivals" not in ScenarioSpec.from_dict(MINIMAL).to_dict()

    def test_arrivals_validated_eagerly(self):
        with pytest.raises(ScenarioError, match="unknown arrival model"):
            ScenarioSpec.from_dict({**MINIMAL, "arrivals": {"model": "poisson"}})
        with pytest.raises(ScenarioError, match="non-negative"):
            ScenarioSpec.from_dict(
                {**MINIMAL, "arrivals": {"model": "sporadic", "max_jitter": -1.0}})
        with pytest.raises(ScenarioError, match="arrivals"):
            ScenarioSpec.from_dict(
                {"kind": "motivation", "name": "m",
                 "arrivals": {"model": "sporadic"}})

    def test_multicore_requires_single_method_and_fixed_taskset(self):
        base = {"kind": "multicore", "name": "m",
                "offline": {"methods": ["acs"], "baseline": "acs"},
                "taskset": {"source": "cnc"}}
        assert ScenarioSpec.from_dict(base).kind == "multicore"
        with pytest.raises(ScenarioError, match="one offline method"):
            ScenarioSpec.from_dict({**base, "offline": {"methods": ["wcs", "acs"]}})
        with pytest.raises(ScenarioError, match="fixed task set"):
            ScenarioSpec.from_dict({**base, "taskset": {"source": "random"}})


class TestRoundTrip:
    def test_dict_round_trip_figure6a_shape(self):
        document = {
            "kind": "comparison",
            "name": "fig",
            "taskset": {"source": "random", "utilization": 0.7},
            "simulation": {"hyperperiods": 20, "seed": 2005, "repetitions": 5},
            "matrix": {"taskset.n_tasks": [2, 4, 6], "taskset.ratio": [0.1, 0.5]},
        }
        spec = ScenarioSpec.from_dict(document)
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        # Axis order is semantically significant and must survive the trip.
        assert [key for key, _ in again.matrix] == ["taskset.n_tasks", "taskset.ratio"]

    def test_json_file_round_trip(self, tmp_path):
        spec = ScenarioSpec.from_dict({
            "kind": "comparison",
            "name": "jsonny",
            "taskset": {"source": "explicit", "name": "demo",
                        "tasks": [{"name": "a", "period": 10, "wcec": 1000}]},
            "workload": {"model": "bimodal", "burst_probability": 0.2},
        })
        target = tmp_path / "scenario.json"
        target.write_text(ScenarioLoader.dumps(spec))
        assert load_scenario(target) == spec

    def test_loader_defaults_name_to_file_stem(self, tmp_path):
        target = tmp_path / "my-sweep.json"
        target.write_text(json.dumps({"kind": "comparison"}))
        assert load_scenario(target).name == "my-sweep"


class TestProfiles:
    def make_file(self, tmp_path):
        document = {
            "kind": "comparison",
            "name": "profiled",
            "simulation": {"hyperperiods": 50, "repetitions": 10},
            "matrix": {"taskset.ratio": [0.1, 0.5, 0.9]},
            "profiles": {
                "smoke": {
                    "simulation": {"hyperperiods": 2},
                    "matrix": {"taskset.ratio": [0.5]},
                },
            },
        }
        target = tmp_path / "profiled.json"
        target.write_text(json.dumps(document))
        return target

    def test_profile_deep_merges_over_base(self, tmp_path):
        target = self.make_file(tmp_path)
        base = load_scenario(target)
        smoke = load_scenario(target, profile="smoke")
        assert base.simulation.hyperperiods == 50
        assert smoke.simulation.hyperperiods == 2
        assert smoke.simulation.repetitions == 10  # untouched by the profile
        assert smoke.matrix == (("taskset.ratio", (0.5,)),)

    def test_unknown_profile_fails(self, tmp_path):
        target = self.make_file(tmp_path)
        with pytest.raises(ScenarioError, match="unknown profile"):
            load_scenario(target, profile="turbo")

    def test_profiles_listing(self, tmp_path):
        target = self.make_file(tmp_path)
        assert ScenarioLoader().profiles(target) == ("smoke",)


class TestCommittedScenarioFiles:
    """Every committed example spec must load, under every declared profile."""

    pytestmark = pytest.mark.skipif(
        "sys.version_info < (3, 11)", reason="TOML scenario files need tomllib")

    def scenario_files(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2] / "examples" / "scenarios"
        files = sorted(root.glob("*.toml"))
        assert files, "examples/scenarios/ must ship committed scenario files"
        return files

    def test_all_committed_scenarios_validate(self):
        loader = ScenarioLoader()
        names = set()
        for path in self.scenario_files():
            spec = loader.load(path)
            names.add(spec.name)
            assert "smoke" in loader.profiles(path), f"{path.name} lacks a smoke profile"
            loader.load(path, profile="smoke")  # must validate too
        assert {"figure6a", "figure6b", "motivation", "scalability", "sporadic"} <= names


# ------------------------------------------------------------------ #
# Property-based round-trips
# ------------------------------------------------------------------ #
_METHODS = st.sampled_from([("wcs", "acs"), ("acs",), ("wcs", "acs", "max_speed")])


@st.composite
def comparison_documents(draw):
    methods = draw(_METHODS)
    document = {
        "kind": "comparison",
        "name": draw(st.text(alphabet="abcdefgh-", min_size=1, max_size=12)),
        "taskset": {
            "source": "random",
            "n_tasks": draw(st.integers(min_value=1, max_value=8)),
            "ratio": draw(st.floats(min_value=0.05, max_value=1.0, allow_nan=False)),
            "utilization": draw(st.floats(min_value=0.1, max_value=0.95, allow_nan=False)),
        },
        "offline": {"methods": list(methods), "baseline": methods[0]},
        "online": {"policy": draw(st.sampled_from(["static", "greedy", "lookahead", "proportional"]))},
        "workload": {"model": draw(st.sampled_from(["normal", "uniform", "fixed", "bimodal"]))},
        "simulation": {
            "hyperperiods": draw(st.integers(min_value=1, max_value=100)),
            "seed": draw(st.integers(min_value=0, max_value=2**31)),
            "repetitions": draw(st.integers(min_value=1, max_value=10)),
            "fast_path": draw(st.booleans()),
            "trace": draw(st.booleans()),
        },
    }
    if draw(st.booleans()):
        document["arrivals"] = {
            "model": "sporadic",
            "max_jitter": draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False)),
        }
    if draw(st.booleans()):
        document["matrix"] = {
            "taskset.ratio": draw(st.lists(
                st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
                min_size=1, max_size=3)),
            "simulation.hyperperiods": draw(st.lists(
                st.integers(min_value=1, max_value=50), min_size=1, max_size=3)),
        }
    return document


@given(document=comparison_documents())
@settings(max_examples=50, deadline=None)
def test_property_spec_round_trips_losslessly(document):
    spec = ScenarioSpec.from_dict(document)
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec
    assert ScenarioSpec.from_dict(json.loads(ScenarioLoader.dumps(spec))) == spec
