"""Engine equivalence: scenarios reproduce the hand-written experiment modules bitwise."""

import sys
from pathlib import Path

import pytest

from repro.experiments.figure6a import Figure6aConfig, run_figure6a
from repro.experiments.figure6b import Figure6bConfig, run_figure6b
from repro.experiments.motivation import run_motivation
from repro.experiments.scalability import ScalabilityConfig, run_scalability
from repro.scenarios import ScenarioEngine, ScenarioSpec, load_scenario

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestCompile:
    def test_points_and_units_follow_the_matrix(self):
        spec = ScenarioSpec.from_dict({
            "kind": "comparison",
            "name": "grid",
            "simulation": {"repetitions": 3},
            "matrix": {"taskset.n_tasks": [2, 4], "taskset.ratio": [0.1, 0.5, 0.9]},
        })
        compiled = ScenarioEngine().compile(spec)
        assert len(compiled.points) == 6
        assert all(len(point.unit_keys) == 3 for point in compiled.points)
        assert len(compiled.units) == 18  # all units distinct (coords pin the seeds)
        assert compiled.points[0].coords == {"taskset.n_tasks": 2, "taskset.ratio": 0.1}

    def test_multicore_grid_is_native(self):
        spec = ScenarioSpec.from_dict({
            "kind": "multicore",
            "name": "grid",
            "taskset": {"source": "cnc"},
            "offline": {"methods": ["acs"], "baseline": "acs"},
            "multicore": {"cores": [1, 2, 4], "partitioners": ["ffd", "wfd"]},
        })
        compiled = ScenarioEngine().compile(spec)
        assert len(compiled.points) == 6
        assert len(compiled.units) == 6


@pytest.mark.skipif(sys.version_info < (3, 11), reason="TOML scenario files need tomllib")
class TestTraceAndArrivalsSignatures:
    """Trace/arrivals are *conditional* signature keys: every pre-existing
    store hash must be preserved, while traced/jittered units key apart."""

    def _first_unit(self, document):
        spec = ScenarioSpec.from_dict(document)
        compiled = ScenarioEngine().compile(spec)
        key = compiled.points[0].unit_keys[0]
        return key, compiled.units[key]

    def test_defaults_add_no_new_signature_keys(self):
        from repro.scenarios.engine import _comparison_signature

        document = {"kind": "comparison", "name": "sig",
                    "simulation": {"hyperperiods": 2, "repetitions": 1}}
        _, job = self._first_unit(document)
        signature = _comparison_signature(job)
        assert "trace" not in signature
        assert "arrivals" not in signature

    def test_trace_and_arrivals_key_apart_from_the_default(self):
        base = {"kind": "comparison", "name": "sig",
                "simulation": {"hyperperiods": 2, "repetitions": 1}}
        default_key, _ = self._first_unit(base)
        traced_key, traced_job = self._first_unit(
            {**base, "simulation": {"hyperperiods": 2, "repetitions": 1, "trace": True}})
        jittered_key, jittered_job = self._first_unit(
            {**base, "arrivals": {"model": "sporadic", "max_jitter": 1.5}})
        assert len({default_key, traced_key, jittered_key}) == 3
        assert traced_job.config.trace is True
        assert type(jittered_job.config.arrivals).__name__ == "SporadicArrivals"

    def test_explicit_periodic_arrivals_hit_the_default_key(self):
        """[arrivals] model = "periodic" is spelled-out default — same hash."""
        base = {"kind": "comparison", "name": "sig",
                "simulation": {"hyperperiods": 2, "repetitions": 1}}
        default_key, default_job = self._first_unit(base)
        periodic_key, periodic_job = self._first_unit(
            {**base, "arrivals": {"model": "periodic"}})
        assert periodic_key == default_key
        assert periodic_job.config.arrivals is None is default_job.config.arrivals

    def test_sporadic_scenario_units_are_traced_and_jittered(self):
        spec = load_scenario(REPO_ROOT / "examples" / "scenarios" / "sporadic.toml")
        compiled = ScenarioEngine().compile(spec)
        from repro.scenarios.engine import _comparison_signature

        for job in compiled.units.values():
            signature = _comparison_signature(job)
            assert signature["trace"] is True
            assert signature["arrivals"] == {
                "max_jitter": 1.5, "name": "sporadic", "type": "SporadicArrivals"}


@pytest.mark.skipif(sys.version_info < (3, 11), reason="TOML scenario files need tomllib")
class TestFigure6aAcceptance:
    """The committed figure6a scenario reproduces `repro figure6a` bit for bit."""

    def test_smoke_profile_matches_run_figure6a_quick_bitwise(self):
        spec = load_scenario(REPO_ROOT / "examples" / "scenarios" / "figure6a.toml",
                             profile="smoke")
        result = ScenarioEngine().run(spec)
        reference = run_figure6a(Figure6aConfig(
            task_counts=(2, 4), tasksets_per_point=2,
            hyperperiods_per_taskset=5, seed=2005))
        for point in reference.points:
            ours = result.point(n_tasks=point.n_tasks, ratio=point.bcec_wcec_ratio)
            acs = ours["methods"]["acs"]
            wcs = ours["methods"]["wcs"]
            # Exact float equality on purpose: the scenario path must compile
            # to the identical jobs, seeds and aggregation as the figure module.
            assert acs["mean_improvement_percent"] == point.mean_improvement_percent
            assert acs["std_improvement_percent"] == point.std_improvement_percent
            assert acs["mean_energy_per_hyperperiod"] == point.mean_acs_energy
            assert wcs["mean_energy_per_hyperperiod"] == point.mean_wcs_energy
            assert ours["deadline_misses"] == point.deadline_misses

    def test_default_profile_compiles_to_the_default_figure6a_workload(self):
        """Same sweep shape as Figure6aConfig() without executing the jobs."""
        spec = load_scenario(REPO_ROOT / "examples" / "scenarios" / "figure6a.toml")
        compiled = ScenarioEngine().compile(spec)
        default = Figure6aConfig()
        expected_points = len(default.task_counts) * len(default.bcec_wcec_ratios)
        assert len(compiled.points) == expected_points
        assert len(compiled.units) == expected_points * default.tasksets_per_point
        assert spec.simulation.hyperperiods == default.hyperperiods_per_taskset
        assert spec.simulation.seed == default.seed


class TestFigure6bEquivalence:
    def test_case_study_axis_matches_run_figure6b_bitwise(self):
        spec = ScenarioSpec.from_dict({
            "kind": "comparison",
            "name": "fig6b-cnc",
            "taskset": {"source": "cnc", "utilization": 0.7},
            "simulation": {"hyperperiods": 2, "seed": 2005},
            "matrix": {"taskset.source": ["cnc"], "taskset.ratio": [0.1, 0.5]},
        })
        result = ScenarioEngine().run(spec)
        reference = run_figure6b(Figure6bConfig(
            applications=("cnc",), bcec_wcec_ratios=(0.1, 0.5),
            hyperperiods_per_point=2, seed=2005))
        for point in reference.points:
            ours = result.point(source=point.application, ratio=point.bcec_wcec_ratio)
            assert ours["methods"]["acs"]["mean_improvement_percent"] == point.improvement_percent
            assert ours["methods"]["wcs"]["mean_energy_per_hyperperiod"] == point.wcs_energy
            assert ours["methods"]["acs"]["mean_energy_per_hyperperiod"] == point.acs_energy


class TestScalabilityEquivalence:
    def test_multicore_grid_matches_run_scalability_bitwise(self):
        spec = ScenarioSpec.from_dict({
            "kind": "multicore",
            "name": "scal",
            "taskset": {"source": "cnc", "ratio": 0.5, "utilization": 0.7},
            "offline": {"methods": ["acs"], "baseline": "acs"},
            "simulation": {"hyperperiods": 5, "seed": 2005},
            "multicore": {"cores": [1, 2], "partitioners": ["ffd", "wfd"]},
        })
        result = ScenarioEngine().run(spec)
        reference = run_scalability(ScalabilityConfig(
            core_counts=(1, 2), partitioners=("ffd", "wfd"), n_hyperperiods=5))
        for point in reference.points:
            ours = result.point(cores=point.n_cores, partitioner=point.partitioner)
            assert ours["mean_energy_per_hyperperiod"] == point.mean_energy_per_hyperperiod
            assert ours["total_energy"] == point.total_energy
            assert ours["max_core_utilization"] == point.max_core_utilization
            assert ours["used_cores"] == point.used_cores
            assert ours["deadline_misses"] == point.deadline_misses


class TestMotivationEquivalence:
    def test_motivation_scenario_matches_run_motivation(self):
        spec = ScenarioSpec.from_dict({
            "kind": "motivation",
            "name": "motivation",
            "power": {"model": "ideal", "vmax": 5.0, "vmin": 0.5, "fmax": 1000.0},
        })
        (point,) = ScenarioEngine().run(spec).points
        reference = run_motivation()
        assert point["wcs_end_times"] == reference.wcs_end_times
        assert point["acs_end_times"] == reference.acs_end_times
        assert point["wcs_worst_case_energy"] == reference.wcs_worst_case_energy
        assert point["acs_average_case_energy"] == reference.acs_average_case_energy
        assert point["improvement_average_case_percent"] == reference.improvement_average_case_percent


class TestEngineChoiceEquivalence:
    """simulation.engine is a wall-clock knob: results and store keys agree."""

    DOCUMENT = {
        "kind": "comparison",
        "name": "engine-choice",
        "taskset": {"source": "random", "n_tasks": 3, "periods": [10.0, 20.0, 40.0]},
        "simulation": {"hyperperiods": 3, "seed": 7, "repetitions": 3},
        "matrix": {"taskset.ratio": [0.1, 0.9]},
    }

    def spec(self, engine):
        simulation = {**self.DOCUMENT["simulation"], "engine": engine}
        return ScenarioSpec.from_dict({**self.DOCUMENT, "simulation": simulation})

    def test_batched_run_matches_compiled_run_bitwise(self):
        compiled = ScenarioEngine().run(self.spec("compiled"))
        batched = ScenarioEngine().run(self.spec("batched"))
        assert batched.points == compiled.points

    def test_batched_run_store_hits_a_compiled_store(self, tmp_path):
        from repro.scenarios import ResultStore

        store = ResultStore(tmp_path / "store")
        cold = ScenarioEngine(store).run(self.spec("compiled"))
        assert cold.computed > 0 and cold.skipped == 0
        warm = ScenarioEngine(store).run(self.spec("batched"))
        # The engine deliberately stays out of the signature; a batched run
        # replays every compiled record instead of recomputing.
        assert warm.computed == 0
        assert warm.skipped == cold.computed
        assert warm.points == cold.points


class TestAutoEngineSelection:
    """engine = "auto" (the default) picks the runtime from the sweep size."""

    def compiled_scenario(self, repetitions, engine=None):
        simulation = {"hyperperiods": 2, "seed": 7, "repetitions": repetitions}
        if engine is not None:
            simulation["engine"] = engine
        spec = ScenarioSpec.from_dict({
            "kind": "comparison",
            "name": "auto-choice",
            "taskset": {"source": "random", "n_tasks": 3, "periods": [10.0, 20.0, 40.0]},
            "simulation": simulation,
            "matrix": {"taskset.ratio": [0.1, 0.9]},
        })
        return ScenarioEngine().compile(spec)

    def test_small_sweep_stays_on_the_compiled_loop(self):
        # 2 matrix points x 2 repetitions x 2 methods = 8 units < threshold.
        compiled = self.compiled_scenario(repetitions=2)
        assert all(not job.config.batched for job in compiled.units.values())

    def test_large_sweep_flips_to_the_batched_engine(self):
        from repro.scenarios.engine import AUTO_BATCH_THRESHOLD

        # 2 matrix points x 50 repetitions x 2 methods = 200 units.
        compiled = self.compiled_scenario(repetitions=50)
        total = sum(len(job.schedulers) for job in compiled.units.values())
        assert total >= AUTO_BATCH_THRESHOLD
        assert all(job.config.batched for job in compiled.units.values())

    def test_explicit_engine_choice_overrides_auto(self):
        compiled = self.compiled_scenario(repetitions=50, engine="compiled")
        assert all(not job.config.batched for job in compiled.units.values())
        batched = self.compiled_scenario(repetitions=2, engine="batched")
        assert all(job.config.batched for job in batched.units.values())

    def test_auto_flip_does_not_change_unit_keys(self):
        auto = self.compiled_scenario(repetitions=50)
        explicit = self.compiled_scenario(repetitions=50, engine="compiled")
        assert set(auto.units) == set(explicit.units)


class TestParallelDeterminism:
    def test_worker_count_does_not_change_aggregates(self):
        spec = ScenarioSpec.from_dict({
            "kind": "comparison",
            "name": "par",
            "taskset": {"source": "random", "n_tasks": 3, "periods": [10.0, 20.0, 40.0]},
            "simulation": {"hyperperiods": 2, "seed": 11, "repetitions": 2},
            "matrix": {"taskset.ratio": [0.2, 0.8]},
        })
        serial = ScenarioEngine().run(spec, n_jobs=1)
        parallel = ScenarioEngine().run(spec, n_jobs=2)
        assert serial.points == parallel.points

    def test_markdown_report_is_deterministic(self):
        spec = ScenarioSpec.from_dict({
            "kind": "comparison",
            "name": "md",
            "taskset": {"source": "random", "n_tasks": 2, "periods": [10.0, 20.0]},
            "simulation": {"hyperperiods": 2, "seed": 3},
            "matrix": {"taskset.ratio": [0.5]},
        })
        first = ScenarioEngine().run(spec).to_markdown()
        second = ScenarioEngine().run(spec).to_markdown()
        assert first == second
        assert "| ratio" in first and "misses" in first


class TestUnitLevelApi:
    """The unit-level view (`iter_units`/`run_unit`/`aggregate`) the sweep
    server schedules from must agree exactly with the batch `run` path."""

    SPEC = {
        "kind": "motivation",
        "name": "unit-api",
        "power": {"model": "ideal", "vmax": 5.0, "vmin": 0.5, "fmax": 1000.0},
    }

    def test_iter_units_yields_keyed_labelled_units(self):
        engine = ScenarioEngine()
        compiled = engine.compile(ScenarioSpec.from_dict(self.SPEC))
        (item,) = list(engine.iter_units(compiled))
        key, unit, label = item
        assert key in compiled.units and compiled.units[key] is unit
        assert label == "unit-api"

    def test_run_unit_plus_aggregate_matches_engine_run(self):
        from repro.scenarios import run_unit

        engine = ScenarioEngine()
        spec = ScenarioSpec.from_dict(self.SPEC)
        compiled = engine.compile(spec)
        payloads = {key: run_unit(unit) for key, unit, _ in engine.iter_units(compiled)}
        assert engine.aggregate(compiled, payloads) == engine.run(spec).points

    def test_run_unit_agrees_for_comparison_jobs(self):
        from repro.scenarios import run_unit

        engine = ScenarioEngine()
        spec = ScenarioSpec.from_dict({
            "kind": "comparison",
            "name": "unit-api-cmp",
            "taskset": {"source": "random", "n_tasks": 2, "periods": [10.0, 20.0]},
            "simulation": {"hyperperiods": 2, "seed": 3},
            "matrix": {"taskset.ratio": [0.5]},
        })
        compiled = engine.compile(spec)
        payloads = {key: run_unit(unit) for key, unit, _ in engine.iter_units(compiled)}
        assert engine.aggregate(compiled, payloads) == engine.run(spec).points

    def test_run_unit_rejects_unknown_unit_types(self):
        from repro.core.errors import ExperimentError
        from repro.scenarios import run_unit

        with pytest.raises(ExperimentError, match="unknown work-unit type"):
            run_unit(object())
