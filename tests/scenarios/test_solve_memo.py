"""Scenario-level solve memoization: resumed sweeps never re-solve NLPs.

The scenario engine hands its result-store root to the harness, which keeps
a content-addressed memo of every offline NLP solve in a ``solve-memo/``
subdirectory.  A sweep that loses its *comparison* records (killed run,
``--force``, a changed simulation seed) must replan its schedules entirely
from that memo — zero optimizer invocations — and the memo records must
stay invisible to the scenario store's own listing and garbage collection.
"""

from repro.scenarios import ResultStore, ScenarioEngine, ScenarioSpec

#: Real NLP-backed sweep (wcs + acs are both solver methods): 2 points.
SWEEP = {
    "kind": "comparison",
    "name": "memo-sweep",
    "taskset": {"source": "random", "n_tasks": 3, "periods": [10.0, 20.0, 40.0]},
    "simulation": {"hyperperiods": 2, "seed": 13},
    "matrix": {"taskset.ratio": [0.2, 0.8]},
}


def test_killed_sweep_replans_from_the_solve_memo(tmp_path, monkeypatch):
    store = ResultStore(tmp_path / "store")
    spec = ScenarioSpec.from_dict(SWEEP)

    cold = ScenarioEngine(store).run(spec)
    assert cold.computed == 2 and cold.skipped == 0
    comparison_keys = {entry.key for entry in store.entries()}
    assert len(comparison_keys) == 2

    # Simulate a lost/killed sweep: every comparison record is gone, the
    # solve memo (a subdirectory the store listing must not see) survives.
    for key in comparison_keys:
        store.remove(key)
    assert store.entries() == []
    assert (tmp_path / "store" / "solve-memo").is_dir()

    # Resume with the optimizer hard-disabled: the full replan must come out
    # of the memo, and still reproduce the cold aggregates bitwise.
    from repro.offline.nlp import ReducedNLP

    def exploding_solve(self, x0=None):
        raise AssertionError("ReducedNLP.solve invoked despite a warm solve memo")

    monkeypatch.setattr(ReducedNLP, "solve", exploding_solve)
    resumed = ScenarioEngine(store).run(spec)
    assert (resumed.computed, resumed.skipped) == (2, 0)
    assert resumed.points == cold.points


def test_solve_memo_is_invisible_to_store_listing_and_gc(tmp_path):
    store = ResultStore(tmp_path / "store")
    spec = ScenarioSpec.from_dict(SWEEP)
    ScenarioEngine(store).run(spec)
    # Only the two comparison payloads are listed...
    assert len(store.entries()) == 2
    # ...and a full GC leaves the memo untouched.
    store.gc(remove_all=True)
    assert store.entries() == []
    memo_store = ResultStore(tmp_path / "store" / "solve-memo")
    assert len(memo_store.entries()) > 0


def test_warm_rerun_over_a_memory_store_still_memoizes_in_process():
    """Without a persistent store the process-wide memo still deduplicates."""
    from repro.offline.batched_solver import default_solve_memo

    spec = ScenarioSpec.from_dict(SWEEP)
    memo = default_solve_memo()
    before = memo.computed
    ScenarioEngine().run(spec)
    first_run = memo.computed - before
    assert first_run > 0
    ScenarioEngine().run(spec)
    # The second run's solves all hit the in-memory memo.
    assert memo.computed == before + first_run
