"""Unit tests for the arrival models (release jitter of sporadic workloads)."""

import numpy as np
import pytest

from repro.core.errors import WorkloadError
from repro.core.task import Task
from repro.core.taskset import TaskSet
from repro.workloads.arrivals import (
    PeriodicArrivals,
    SporadicArrivals,
    available_arrival_models,
    get_arrival_model,
)


@pytest.fixture()
def instances():
    taskset = TaskSet([
        Task("a", period=10, wcec=1000),
        Task("b", period=20, wcec=2000),
    ], name="arrivals")
    return taskset.instances()


def test_registry():
    assert available_arrival_models() == ("periodic", "sporadic")
    assert isinstance(get_arrival_model("periodic"), PeriodicArrivals)
    model = get_arrival_model("sporadic", max_jitter=2.5)
    assert isinstance(model, SporadicArrivals)
    assert model.max_jitter == 2.5
    with pytest.raises(WorkloadError, match="unknown arrival model"):
        get_arrival_model("poisson")


def test_negative_jitter_rejected():
    with pytest.raises(WorkloadError, match="non-negative"):
        SporadicArrivals(max_jitter=-0.1)


def test_periodic_draws_nothing(instances):
    """The paper's model: all-zero offsets AND an untouched generator."""
    rng = np.random.default_rng(1)
    state_before = rng.bit_generator.state
    offsets = PeriodicArrivals().sample_offsets(rng, instances, n=3)
    assert offsets.shape == (3, len(instances))
    assert not offsets.any()
    assert rng.bit_generator.state == state_before


def test_sporadic_offsets_bounded_per_job(instances):
    """Each job's jitter is clamped to min(max_jitter, its own window)."""
    model = SporadicArrivals(max_jitter=100.0)
    offsets = model.sample_offsets(np.random.default_rng(2), instances, n=50)
    assert offsets.shape == (50, len(instances))
    assert (offsets >= 0.0).all()
    for column, instance in enumerate(instances):
        bound = min(model.max_jitter, instance.window)
        assert (offsets[:, column] <= bound).all()
        # With max_jitter far above every window, the window is the binding
        # bound and the samples should actually explore it.
        assert offsets[:, column].max() > 0.5 * bound


def test_sporadic_single_vectorized_draw(instances):
    """The determinism contract: one call == one generator advance, so the
    n-hyperperiod batch equals n stacked single draws from the same stream."""
    model = SporadicArrivals(max_jitter=1.5)
    batched = model.sample_offsets(np.random.default_rng(3), instances, n=4)
    rng = np.random.default_rng(3)
    stacked = np.vstack([model.sample_offsets(rng, instances) for _ in range(4)])
    assert batched.shape == stacked.shape == (4, len(instances))
    # Same distribution family and bounds; the *batched* call must however be
    # a single uniform(size=(4, k)) draw — verify via the resulting stream.
    single = np.random.default_rng(3).uniform(
        0.0,
        np.array([min(1.5, instance.window) for instance in instances]),
        size=(4, len(instances)),
    )
    np.testing.assert_array_equal(batched, single)


def test_zero_jitter_sporadic_is_periodic_in_value(instances):
    offsets = SporadicArrivals(max_jitter=0.0).sample_offsets(
        np.random.default_rng(4), instances, n=2)
    assert not offsets.any()
