"""Tests for the CNC and GAP case-study task sets."""

import pytest

from repro.analysis.feasibility import check_feasibility
from repro.workloads.cnc import CNC_TASK_PARAMETERS, cnc_taskset
from repro.workloads.gap import GAP_TASK_PARAMETERS, gap_taskset


class TestCNC:
    def test_structure(self):
        taskset = cnc_taskset()
        assert len(taskset) == len(CNC_TASK_PARAMETERS) == 8
        periods = {t.period for t in taskset}
        assert periods == {2400.0, 4800.0, 9600.0}
        assert taskset.hyperperiod == pytest.approx(9600.0)

    def test_scaled_to_utilization(self, processor):
        taskset = cnc_taskset(processor, target_utilization=0.7, bcec_wcec_ratio=0.1)
        assert taskset.utilization(processor.fmax) == pytest.approx(0.7, rel=1e-6)
        for task in taskset:
            assert task.bcec_wcec_ratio == pytest.approx(0.1)

    def test_feasible_at_max_speed(self, processor):
        taskset = cnc_taskset(processor)
        assert check_feasibility(taskset, processor).schedulable

    def test_relative_weights_preserved(self, processor):
        raw = cnc_taskset()
        scaled = cnc_taskset(processor)
        ratio_raw = raw["interpolator"].wcec / raw["x_axis_servo"].wcec
        ratio_scaled = scaled["interpolator"].wcec / scaled["x_axis_servo"].wcec
        assert ratio_scaled == pytest.approx(ratio_raw)


class TestGAP:
    def test_structure(self):
        taskset = gap_taskset()
        assert len(taskset) == len(GAP_TASK_PARAMETERS) == 17
        assert min(t.period for t in taskset) == pytest.approx(25.0)
        assert max(t.period for t in taskset) == pytest.approx(200.0)

    def test_subset_selection(self):
        taskset = gap_taskset(n_tasks=5)
        assert len(taskset) == 5

    def test_scaled_to_utilization(self, processor):
        taskset = gap_taskset(processor, target_utilization=0.6, bcec_wcec_ratio=0.5)
        assert taskset.utilization(processor.fmax) == pytest.approx(0.6, rel=1e-6)

    def test_feasible_at_max_speed(self, processor):
        taskset = gap_taskset(processor, n_tasks=8)
        assert check_feasibility(taskset, processor).schedulable
