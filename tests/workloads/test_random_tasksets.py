"""Tests for the random task-set generator."""

import numpy as np
import pytest

from repro.analysis.feasibility import check_feasibility
from repro.core.errors import WorkloadError
from repro.workloads.random_tasksets import (
    RandomTaskSetConfig,
    generate_random_taskset,
    generate_random_tasksets,
)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(n_tasks=0),
        dict(target_utilization=0.0),
        dict(target_utilization=1.5),
        dict(bcec_wcec_ratio=0.0),
        dict(bcec_wcec_ratio=1.2),
        dict(periods=()),
        dict(wcec_range=(0.0, 10.0)),
        dict(wcec_range=(10.0, 5.0)),
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            RandomTaskSetConfig(**kwargs)


class TestGeneration:
    def test_taskset_matches_config(self, processor, rng):
        config = RandomTaskSetConfig(n_tasks=4, target_utilization=0.7, bcec_wcec_ratio=0.1)
        taskset = generate_random_taskset(config, processor, rng)
        assert len(taskset) == 4
        assert taskset.utilization(processor.fmax) == pytest.approx(0.7, rel=1e-6)
        for task in taskset:
            assert task.bcec_wcec_ratio == pytest.approx(0.1)
            assert task.acec == pytest.approx(0.55 * task.wcec)
            assert task.period in config.periods

    def test_generated_sets_are_feasible(self, processor, rng):
        config = RandomTaskSetConfig(n_tasks=6, target_utilization=0.7, bcec_wcec_ratio=0.5)
        for _ in range(3):
            taskset = generate_random_taskset(config, processor, rng)
            assert check_feasibility(taskset, processor).schedulable

    def test_reproducible_with_seed(self, processor):
        config = RandomTaskSetConfig(n_tasks=3)
        first = generate_random_tasksets(config, processor, count=2, seed=99)
        second = generate_random_tasksets(config, processor, count=2, seed=99)
        for a, b in zip(first, second):
            assert [t.period for t in a] == [t.period for t in b]
            assert [t.wcec for t in a] == pytest.approx([t.wcec for t in b])

    def test_count_validation(self, processor):
        config = RandomTaskSetConfig(n_tasks=2)
        with pytest.raises(WorkloadError):
            generate_random_tasksets(config, processor, count=0)

    def test_impossible_configuration_raises(self, processor):
        # Three tasks always expand to at least three sub-instances, so a cap of
        # two can never be met and the generator must give up after its retries.
        config = RandomTaskSetConfig(n_tasks=3, max_sub_instances=2, max_attempts=5)
        with pytest.raises(WorkloadError):
            generate_random_taskset(config, processor, np.random.default_rng(0))
