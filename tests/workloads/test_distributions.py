"""Tests for the execution-cycle distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import WorkloadError
from repro.core.task import Task
from repro.workloads.distributions import (
    BimodalWorkload,
    FixedWorkload,
    NormalWorkload,
    UniformWorkload,
    get_workload_model,
)


@pytest.fixture
def task():
    return Task("t", period=10, wcec=1000, acec=550, bcec=100)


class TestNormalWorkload:
    def test_samples_within_bounds(self, task, rng):
        model = NormalWorkload()
        samples = [model.sample(rng, task) for _ in range(500)]
        assert all(task.bcec - 1e-9 <= s <= task.wcec + 1e-9 for s in samples)

    def test_mean_close_to_acec(self, task):
        model = NormalWorkload()
        rng = np.random.default_rng(0)
        samples = [model.sample(rng, task) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(task.acec, rel=0.05)

    def test_degenerate_range_returns_wcec(self, rng):
        fixed_task = Task("f", period=10, wcec=100, acec=100, bcec=100)
        assert NormalWorkload().sample(rng, fixed_task) == 100

    def test_invalid_sigma_rejected(self):
        with pytest.raises(WorkloadError):
            NormalWorkload(sigma_fraction=0.0)

    def test_expected_is_acec(self, task):
        assert NormalWorkload().expected(task) == task.acec


class TestUniformWorkload:
    def test_samples_within_bounds(self, task, rng):
        model = UniformWorkload()
        samples = [model.sample(rng, task) for _ in range(500)]
        assert all(task.bcec <= s <= task.wcec for s in samples)

    def test_expected_midpoint(self, task):
        assert UniformWorkload().expected(task) == pytest.approx(550.0)


class TestFixedWorkload:
    @pytest.mark.parametrize("mode,expected", [("acec", 550), ("bcec", 100), ("wcec", 1000)])
    def test_modes(self, task, rng, mode, expected):
        model = FixedWorkload(mode=mode)
        assert model.sample(rng, task) == expected
        assert model.expected(task) == expected

    def test_invalid_mode_rejected(self):
        with pytest.raises(WorkloadError):
            FixedWorkload(mode="median")


class TestBimodalWorkload:
    def test_samples_within_bounds(self, task, rng):
        model = BimodalWorkload(burst_probability=0.3)
        samples = [model.sample(rng, task) for _ in range(500)]
        assert all(task.bcec - 1e-9 <= s <= task.wcec + 1e-9 for s in samples)

    def test_burst_fraction_roughly_matches(self, task):
        model = BimodalWorkload(burst_probability=0.2, jitter_fraction=0.0)
        rng = np.random.default_rng(0)
        samples = [model.sample(rng, task) for _ in range(3000)]
        burst_fraction = np.mean([s == task.wcec for s in samples])
        assert burst_fraction == pytest.approx(0.2, abs=0.03)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            BimodalWorkload(burst_probability=1.5)
        with pytest.raises(WorkloadError):
            BimodalWorkload(jitter_fraction=-0.1)

    def test_expected_between_bounds(self, task):
        expected = BimodalWorkload(burst_probability=0.1).expected(task)
        assert task.bcec <= expected <= task.wcec


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [
        ("normal", NormalWorkload), ("uniform", UniformWorkload),
        ("fixed", FixedWorkload), ("bimodal", BimodalWorkload),
    ])
    def test_lookup(self, name, cls):
        assert isinstance(get_workload_model(name), cls)

    def test_kwargs_forwarded(self):
        model = get_workload_model("fixed", mode="wcec")
        assert model.mode == "wcec"

    def test_unknown_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload_model("pareto")


class TestPropertyBased:
    @given(ratio=st.floats(min_value=0.05, max_value=1.0),
           wcec=st.floats(min_value=10.0, max_value=1e6),
           seed=st.integers(min_value=0, max_value=2**31 - 1),
           model_name=st.sampled_from(["normal", "uniform", "bimodal"]))
    @settings(max_examples=150, deadline=None)
    def test_property_every_sample_within_bcec_wcec(self, ratio, wcec, seed, model_name):
        task = Task("t", period=10, wcec=wcec).scaled(bcec_ratio=ratio)
        model = get_workload_model(model_name)
        rng = np.random.default_rng(seed)
        for _ in range(10):
            sample = model.sample(rng, task)
            assert task.bcec - 1e-6 <= sample <= task.wcec + 1e-6


class TestSampleBatch:
    """The batched sampling API must be bitwise stream-compatible with the
    scalar per-job draws (the compiled simulator relies on it)."""

    MODELS = [
        NormalWorkload(),
        UniformWorkload(),
        FixedWorkload(mode="wcec"),
        BimodalWorkload(burst_probability=0.4),
    ]

    @staticmethod
    def job_tasks():
        return [
            Task("a", period=10, wcec=100, acec=60, bcec=20),
            Task("b", period=20, wcec=50, acec=50, bcec=50),  # degenerate span
            Task("c", period=40, wcec=500, acec=300, bcec=100),
            Task("a", period=10, wcec=100, acec=60, bcec=20),
        ]

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    def test_bitwise_equals_scalar_loop(self, model):
        tasks = self.job_tasks()
        batch_rng = np.random.default_rng(321)
        scalar_rng = np.random.default_rng(321)
        batch = model.sample_batch(batch_rng, tasks, n=9)
        scalar = np.array([[model.sample(scalar_rng, task) for task in tasks]
                           for _ in range(9)])
        assert batch.shape == (9, len(tasks))
        assert np.array_equal(batch, scalar)

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    def test_generator_state_matches_scalar_loop(self, model):
        tasks = self.job_tasks()
        batch_rng = np.random.default_rng(7)
        scalar_rng = np.random.default_rng(7)
        model.sample_batch(batch_rng, tasks, n=5)
        for _ in range(5):
            for task in tasks:
                model.sample(scalar_rng, task)
        assert batch_rng.bit_generator.state == scalar_rng.bit_generator.state

    def test_degenerate_tasks_consume_no_randomness(self):
        fixed_span = [Task("b", period=20, wcec=50, acec=50, bcec=50)]
        for model in (NormalWorkload(), UniformWorkload()):
            rng = np.random.default_rng(1)
            before = rng.bit_generator.state
            batch = model.sample_batch(rng, fixed_span, n=4)
            assert rng.bit_generator.state == before
            assert np.all(batch == 50.0)

    def test_empty_task_list(self):
        rng = np.random.default_rng(0)
        batch = NormalWorkload().sample_batch(rng, [], n=3)
        assert batch.shape == (3, 0)

    def test_bimodal_interleaves_burst_and_jitter_draws(self):
        """A burst job consumes one draw, a jittered job two — in job order."""
        task = Task("t", period=10, wcec=100, acec=60, bcec=20)
        model = BimodalWorkload(burst_probability=0.5)
        rng = np.random.default_rng(12345)
        probe = np.random.default_rng(12345)
        batch = model.sample_batch(rng, [task, task, task], n=2)
        for value in batch.ravel():
            if probe.random() < 0.5:
                assert value == task.wcec
            else:
                jitter = probe.uniform(0.0, model.jitter_fraction * (task.wcec - task.bcec))
                assert value == min(task.bcec + jitter, task.wcec)
