"""Sinks: memory capture, JSONL round-trip, and the stderr summary table."""

import io

import pytest

from repro.telemetry import (
    JsonlSink,
    MemorySink,
    SummarySink,
    Telemetry,
    aggregate_spans,
    read_jsonl,
    render_summary,
)


def sample_snapshot():
    telemetry = Telemetry()
    with telemetry.span("plan"):
        with telemetry.span("solve"):
            pass
    telemetry.count("store.hit", 3)
    telemetry.observe("wave", 2.0)
    return telemetry.snapshot()


class TestMemorySink:
    def test_captures_snapshots_with_scenario_label(self):
        sink = MemorySink()
        sink.emit(sample_snapshot(), scenario="demo")
        assert len(sink.snapshots) == 1
        record = sink.snapshots[0]
        assert record["scenario"] == "demo"
        assert record["counters"] == {"store.hit": 3}


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        snapshot = sample_snapshot()
        JsonlSink(path).emit(snapshot, scenario="demo")
        records = read_jsonl(path)
        assert len(records) == 1
        record = records[0]
        assert record["scenario"] == "demo"
        assert record["counters"] == snapshot["counters"]
        assert record["observations"] == snapshot["observations"]
        assert [s["name"] for s in record["spans"]] == ["plan", "solve"]

    def test_appends_multiple_runs(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        JsonlSink(path).emit(sample_snapshot(), scenario="first")
        JsonlSink(path).emit(sample_snapshot(), scenario="second")
        records = read_jsonl(path)
        assert [record["scenario"] for record in records] == ["first", "second"]

    def test_record_before_meta_is_rejected(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"type": "counter", "name": "x", "value": 1}\n')
        with pytest.raises(ValueError):
            read_jsonl(path)


class TestSummary:
    def test_render_contains_span_and_counter_tables(self):
        text = render_summary(sample_snapshot(), scenario="demo")
        assert "demo" in text
        assert "plan" in text and "solve" in text
        assert "store.hit" in text and "3" in text

    def test_render_empty_snapshot(self):
        text = render_summary({"spans": [], "counters": {}, "observations": {}})
        assert "no telemetry recorded" in text

    def test_summary_sink_writes_to_stream(self):
        stream = io.StringIO()
        SummarySink(stream).emit(sample_snapshot(), scenario="demo")
        assert "demo" in stream.getvalue()


class TestAggregateSpans:
    def test_groups_by_name(self):
        telemetry = Telemetry()
        for _ in range(2):
            with telemetry.span("wave"):
                pass
        aggregated = aggregate_spans(telemetry.snapshot()["spans"])
        assert aggregated["wave"]["count"] == 2
        assert aggregated["wave"]["total_seconds"] >= 0.0
