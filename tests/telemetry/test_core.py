"""Unit tests for the telemetry collector: spans, counters, activation."""

import threading

import pytest

from repro.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    activate,
    current,
    deactivate,
    using,
)
from repro.telemetry.core import _NULL_SPAN


class TestActivation:
    def test_default_is_the_null_singleton(self):
        assert current() is NULL_TELEMETRY
        assert not current().enabled

    def test_using_scopes_the_collector(self):
        telemetry = Telemetry()
        with using(telemetry):
            assert current() is telemetry
            assert current().enabled
        assert current() is NULL_TELEMETRY

    def test_using_restores_on_error(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with using(telemetry):
                raise RuntimeError("boom")
        assert current() is NULL_TELEMETRY

    def test_activate_deactivate(self):
        telemetry = Telemetry()
        activate(telemetry)
        try:
            assert current() is telemetry
        finally:
            deactivate()
        assert current() is NULL_TELEMETRY


class TestNullTelemetry:
    def test_span_returns_the_shared_singleton(self):
        null = NullTelemetry()
        assert null.span("anything") is _NULL_SPAN
        assert null.span("else") is _NULL_SPAN
        with null.span("nested") as span:
            assert span is _NULL_SPAN

    def test_count_and_observe_are_inert(self):
        NULL_TELEMETRY.count("x")
        NULL_TELEMETRY.observe("y", 1.0)  # must not raise, must not record

    def test_stage_still_measures_time(self):
        with NULL_TELEMETRY.stage("work") as timer:
            pass
        assert timer.elapsed_seconds >= 0.0


class TestSpans:
    def test_parent_links_follow_nesting(self):
        telemetry = Telemetry()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
            with telemetry.span("sibling"):
                pass
        with telemetry.span("second"):
            pass
        spans = {span.name: span for span in telemetry.spans}
        assert spans["outer"].parent is None
        assert spans["inner"].parent == spans["outer"].index
        assert spans["sibling"].parent == spans["outer"].index
        assert spans["second"].parent is None

    def test_snapshot_orders_spans_by_start_index(self):
        telemetry = Telemetry()
        with telemetry.span("a"):
            with telemetry.span("b"):
                pass
        names = [span["name"] for span in telemetry.snapshot()["spans"]]
        assert names == ["a", "b"]  # "b" *finishes* first but started second

    def test_stage_elapsed_is_bitwise_derivable_from_the_span(self):
        telemetry = Telemetry()
        with telemetry.stage("run") as timer:
            pass
        (span,) = telemetry.spans
        assert span.name == "run"
        assert timer.elapsed_seconds == (span.end_ns - span.start_ns) / 1e9
        assert timer.elapsed_seconds == span.elapsed_seconds

    def test_threads_keep_independent_stacks(self):
        telemetry = Telemetry()
        ready = threading.Event()
        release = threading.Event()

        def worker():
            with telemetry.span("thread-span"):
                ready.set()
                release.wait(timeout=5)

        with telemetry.span("main-span"):
            thread = threading.Thread(target=worker)
            thread.start()
            assert ready.wait(timeout=5)
            release.set()
            thread.join(timeout=5)
        spans = {span.name: span for span in telemetry.spans}
        # The worker's span must not adopt the main thread's span as parent.
        assert spans["thread-span"].parent is None
        assert spans["main-span"].parent is None


class TestCounters:
    def test_count_accumulates(self):
        telemetry = Telemetry()
        telemetry.count("hits")
        telemetry.count("hits", 2)
        telemetry.count("misses")
        assert telemetry.counters == {"hits": 3, "misses": 1}

    def test_observe_collects_values(self):
        telemetry = Telemetry()
        telemetry.observe("width", 4.0)
        telemetry.observe("width", 8.0)
        assert telemetry.observations == {"width": [4.0, 8.0]}

    def test_snapshot_sorts_counter_names(self):
        telemetry = Telemetry()
        telemetry.count("zeta")
        telemetry.count("alpha")
        assert list(telemetry.snapshot()["counters"]) == ["alpha", "zeta"]

    def test_stage_timings_aggregate_by_name(self):
        telemetry = Telemetry()
        for _ in range(3):
            with telemetry.span("wave"):
                pass
        timings = telemetry.stage_timings()
        assert timings["wave"]["count"] == 3
        assert timings["wave"]["total_seconds"] >= 0.0
