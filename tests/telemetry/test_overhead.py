"""Telemetry must cost nothing when it is off (the default).

Mirrors ``tests/runtime/test_trace_overhead.py``: every span class the
collector can construct is replaced with a raising constructor, and a
telemetry-off run of the full sweep pipeline (plan → batched simulate →
aggregate) must still complete with bitwise-identical results — while a
telemetry-on run must trip the guard.

``Stopwatch`` is deliberately *excluded* from the tripwire list: the
``stage()`` sites (one per run, never per unit or per step) return a bare
two-slot stopwatch on the disabled path so ``elapsed_seconds`` keeps
working.  That is one small allocation per pipeline run, not a hot-loop
cost.
"""

import pytest

from repro.experiments.sweep import SweepConfig, run_sweep
from repro.reporting.serialization import sweep_result_to_dict
from repro.telemetry import Telemetry, using

#: Every class the collector allocates on the *enabled* path.
SPAN_CLASS_NAMES = ("Span", "SpanHandle")

TINY_SWEEP = SweepConfig(n_tasksets=1, n_tasks=2, n_hyperperiods=2,
                         periods=(10.0, 20.0), batched=True)


class _Tripwire:
    def __init__(self, name):
        self.name = name

    def __call__(self, *args, **kwargs):
        raise AssertionError(
            f"{self.name} was constructed although telemetry is disabled")


def _arm_tripwires(monkeypatch):
    import repro.telemetry.core as core

    for name in SPAN_CLASS_NAMES:
        monkeypatch.setattr(core, name, _Tripwire(f"repro.telemetry.core.{name}"))


def _normalised(result):
    data = sweep_result_to_dict(result)
    data.pop("elapsed_seconds", None)
    return data


def test_telemetry_off_allocates_no_span_objects(monkeypatch):
    baseline = run_sweep(TINY_SWEEP)
    _arm_tripwires(monkeypatch)
    guarded = run_sweep(TINY_SWEEP)
    # Bitwise-identical: the disabled path may not perturb a single value.
    assert _normalised(guarded) == _normalised(baseline)


def test_tripwires_actually_cover_the_enabled_path(monkeypatch):
    """Sanity check on the guard itself: with telemetry ON the raisers fire."""
    _arm_tripwires(monkeypatch)
    with pytest.raises(AssertionError, match="constructed although"):
        with using(Telemetry()):
            run_sweep(TINY_SWEEP)


def test_telemetry_on_does_not_change_results():
    """Enabling telemetry observes the pipeline without steering it."""
    baseline = run_sweep(TINY_SWEEP)
    with using(Telemetry()) as telemetry:
        observed = run_sweep(TINY_SWEEP)
    assert _normalised(observed) == _normalised(baseline)
    assert any(span.name == "sweep.run" for span in telemetry.spans)


def test_tripwire_names_are_exhaustive():
    """Every class the collector module defines that records a span is on
    the tripwire list, so a new span type cannot dodge the guard."""
    import repro.telemetry.core as core

    span_like = [
        name for name in dir(core)
        if isinstance(getattr(core, name), type)
        and not name.startswith("_")  # _NullSpan is the shared never-allocated singleton
        and hasattr(getattr(core, name), "elapsed_seconds")
        and name != "Stopwatch"  # the documented stage() exclusion
    ]
    assert sorted(span_like) == sorted(SPAN_CLASS_NAMES)
