"""Run manifests: stable hashing, atomic writes, store-side reading."""

import json

from repro.telemetry import (
    MANIFEST_FORMAT,
    build_manifest,
    config_hash,
    manifest_path,
    read_manifests,
    write_manifest,
)


class TestConfigHash:
    def test_key_order_does_not_matter(self):
        assert config_hash({"a": 1, "b": [2, 3]}) == config_hash({"b": [2, 3], "a": 1})

    def test_values_do_matter(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})


class TestBuildManifest:
    def test_required_fields(self):
        manifest = build_manifest(scenario="demo", config={"kind": "comparison"},
                                  computed=3, skipped=1, elapsed_seconds=0.5)
        assert manifest["manifest_format"] == MANIFEST_FORMAT
        assert manifest["scenario"] == "demo"
        assert manifest["config_hash"] == config_hash({"kind": "comparison"})
        assert manifest["computed"] == 3 and manifest["skipped"] == 1
        assert manifest["elapsed_seconds"] == 0.5
        assert "git_rev" in manifest and "created_unix" in manifest

    def test_optional_sections_only_when_present(self):
        bare = build_manifest(scenario="demo", config={}, computed=0, skipped=0,
                              elapsed_seconds=0.0)
        assert "stage_timings" not in bare and "counters" not in bare
        rich = build_manifest(scenario="demo", config={}, computed=0, skipped=0,
                              elapsed_seconds=0.0,
                              stage_timings={"run": {"count": 1, "total_seconds": 0.1}},
                              counters={"hits": 2})
        assert rich["stage_timings"]["run"]["count"] == 1
        assert rich["counters"] == {"hits": 2}


class TestWriteAndRead:
    def test_round_trip(self, tmp_path):
        manifest = build_manifest(scenario="demo", config={"x": 1}, computed=2,
                                  skipped=0, elapsed_seconds=1.5)
        written = write_manifest(tmp_path, manifest)
        assert written == manifest_path(tmp_path, "demo")
        assert json.loads(written.read_text()) == manifest
        assert read_manifests(tmp_path) == [manifest]

    def test_latest_run_wins(self, tmp_path):
        first = build_manifest(scenario="demo", config={}, computed=1, skipped=0,
                               elapsed_seconds=0.1)
        second = build_manifest(scenario="demo", config={}, computed=0, skipped=1,
                                elapsed_seconds=0.2)
        write_manifest(tmp_path, first)
        write_manifest(tmp_path, second)
        (only,) = read_manifests(tmp_path)
        assert only["skipped"] == 1

    def test_read_is_sorted_and_tolerates_empty_store(self, tmp_path):
        assert read_manifests(tmp_path) == []
        for name in ("zeta", "alpha"):
            write_manifest(tmp_path, build_manifest(
                scenario=name, config={}, computed=0, skipped=0, elapsed_seconds=0.0))
        assert [m["scenario"] for m in read_manifests(tmp_path)] == ["alpha", "zeta"]
