"""CLI surfaces: ``repro run --telemetry`` and ``repro stats``."""

import json

import pytest

from repro.cli import build_parser, main
from repro.telemetry import read_jsonl, read_manifests

#: Instant scenario (deterministic, no simulation) for CLI-level round trips.
MOTIVATION = {
    "kind": "motivation",
    "name": "motivation-telemetry",
    "power": {"model": "ideal", "vmax": 5.0, "vmin": 0.5, "fmax": 1000.0},
}


def write_spec(tmp_path, document):
    target = tmp_path / "scenario.json"
    target.write_text(json.dumps(document))
    return str(target)


class TestParser:
    def test_run_telemetry_flag_forms(self):
        off = build_parser().parse_args(["run", "a.toml"])
        assert off.telemetry is None
        bare = build_parser().parse_args(["run", "a.toml", "--telemetry"])
        assert bare.telemetry == ""
        explicit = build_parser().parse_args(["run", "a.toml", "--telemetry", "t.jsonl"])
        assert explicit.telemetry == "t.jsonl"

    def test_stats_subcommand(self):
        args = build_parser().parse_args(["stats", "/tmp/s", "--telemetry", "t.jsonl"])
        assert args.store == "/tmp/s" and args.telemetry == "t.jsonl"
        assert build_parser().parse_args(["stats"]).store is None


class TestRunTelemetry:
    def test_run_writes_manifest_jsonl_and_stderr_summary(self, capsys, tmp_path):
        spec = write_spec(tmp_path, MOTIVATION)
        store = tmp_path / "store"
        assert main(["run", spec, "--store", str(store), "--telemetry"]) == 0
        err = capsys.readouterr().err
        assert "telemetry summary" in err and "scenario.run" in err
        (manifest,) = read_manifests(store)
        assert manifest["scenario"] == "motivation-telemetry"
        assert manifest["computed"] == 1 and manifest["skipped"] == 0
        assert manifest["stage_timings"]["scenario.run"]["count"] == 1
        (record,) = read_jsonl(store / "telemetry" / "motivation-telemetry.jsonl")
        assert record["scenario"] == "motivation-telemetry"
        assert any(span["name"] == "scenario.run" for span in record["spans"])

    def test_explicit_jsonl_path(self, capsys, tmp_path):
        spec = write_spec(tmp_path, MOTIVATION)
        target = tmp_path / "out" / "t.jsonl"
        store = tmp_path / "store"
        assert main(["run", spec, "--store", str(store),
                     "--telemetry", str(target)]) == 0
        capsys.readouterr()
        (record,) = read_jsonl(target)
        assert record["scenario"] == "motivation-telemetry"

    def test_manifest_written_even_without_telemetry(self, capsys, tmp_path):
        spec = write_spec(tmp_path, MOTIVATION)
        store = tmp_path / "store"
        assert main(["run", spec, "--store", str(store)]) == 0
        assert capsys.readouterr().err == ""
        (manifest,) = read_manifests(store)
        assert manifest["scenario"] == "motivation-telemetry"
        assert "stage_timings" not in manifest and "counters" not in manifest

    def test_same_named_specs_get_distinct_jsonl_files(self, capsys, tmp_path):
        """Two spec files sharing a scenario name must not overwrite each
        other's derived telemetry dump — the second gets a suffixed path."""
        dir_a = tmp_path / "a"
        dir_b = tmp_path / "b"
        dir_a.mkdir()
        dir_b.mkdir()
        spec_a = write_spec(dir_a, MOTIVATION)
        spec_b = write_spec(dir_b, MOTIVATION)  # same scenario name, other file
        store = tmp_path / "store"
        with pytest.warns(RuntimeWarning, match="would collide"):
            assert main(["run", spec_a, spec_b, "--store", str(store),
                         "--telemetry"]) == 0
        capsys.readouterr()
        dumps = sorted((store / "telemetry").glob("*.jsonl"))
        names = {dump.name for dump in dumps}
        assert len(dumps) == 2
        assert "motivation-telemetry.jsonl" in names  # the first claimant keeps it
        assert any(name.startswith("motivation-telemetry-") for name in names)
        for dump in dumps:  # each file holds exactly one run's records
            (record,) = read_jsonl(dump)
            assert record["scenario"] == "motivation-telemetry"

    def test_rerunning_one_spec_reuses_its_derived_path(self, capsys, tmp_path):
        spec = write_spec(tmp_path, MOTIVATION)
        store = tmp_path / "store"
        assert main(["run", spec, "--store", str(store), "--telemetry"]) == 0
        assert main(["run", spec, "--store", str(store), "--telemetry"]) == 0
        capsys.readouterr()
        dumps = sorted((store / "telemetry").glob("*.jsonl"))
        assert [dump.name for dump in dumps] == ["motivation-telemetry.jsonl"]
        assert len(read_jsonl(dumps[0])) == 2  # appended, never forked

    def test_no_store_run_writes_no_manifest(self, capsys, tmp_path):
        spec = write_spec(tmp_path, MOTIVATION)
        target = tmp_path / "t.jsonl"
        assert main(["run", spec, "--no-store", "--telemetry", str(target)]) == 0
        capsys.readouterr()
        assert read_jsonl(target)  # telemetry still recorded
        assert not (tmp_path / "manifests").exists()


class TestStats:
    def test_renders_manifest_and_jsonl_without_rerunning(self, capsys, tmp_path):
        spec = write_spec(tmp_path, MOTIVATION)
        store = tmp_path / "store"
        jsonl = tmp_path / "t.jsonl"
        assert main(["run", spec, "--store", str(store),
                     "--telemetry", str(jsonl)]) == 0
        capsys.readouterr()
        assert main(["stats", str(store), "--telemetry", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "== motivation-telemetry" in out
        assert "computed=1" in out
        assert "scenario.run" in out
        assert "1 run(s)" in out

    def test_empty_store_reports_no_manifests(self, capsys, tmp_path):
        assert main(["stats", str(tmp_path)]) == 0
        assert "no run manifests" in capsys.readouterr().out
