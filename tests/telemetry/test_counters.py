"""Counter accuracy against known store/memo behaviour.

A cold scenario run computes every unit (store misses == computed units);
the warm rerun replays everything (store hits == units, ``computed=0``);
a ``--force``-style rerun recomputes the units but answers every NLP solve
from the warm solve-memo (memo hits, zero memo computes).
"""

import pytest

from repro.scenarios import ResultStore, ScenarioEngine, ScenarioSpec
from repro.telemetry import Telemetry, using

#: Two work units, seconds end to end (mirrors the CLI test sweep).
SPEC = {
    "kind": "comparison",
    "name": "counter-sweep",
    "taskset": {"source": "random", "n_tasks": 2, "periods": [10.0, 20.0]},
    "simulation": {"hyperperiods": 2, "seed": 5, "repetitions": 2},
}


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    """One cold, one warm, one forced run over the same store, each with a
    fresh collector so every snapshot describes exactly one run."""
    store_root = tmp_path_factory.mktemp("store")
    spec = ScenarioSpec.from_dict(SPEC)
    engine = ScenarioEngine(ResultStore(store_root))
    out = {}
    for label, force in (("cold", False), ("warm", False), ("forced", True)):
        telemetry = Telemetry()
        with using(telemetry):
            result = engine.run(spec, force=force)
        out[label] = (result, telemetry.counters)
    return out


class TestColdRun:
    def test_every_unit_misses_then_computes(self, runs):
        result, counters = runs["cold"]
        n_units = result.computed
        assert n_units > 0 and result.skipped == 0
        assert counters["result_store.miss"] == n_units
        assert counters["result_store.computed"] == n_units
        assert counters["scenario.units_computed"] == n_units
        assert counters["scenario.units_replayed"] == 0

    def test_solves_populate_the_memo(self, runs):
        _, counters = runs["cold"]
        assert counters["solve_memo.computed"] > 0
        assert counters["solve_memo_store.computed"] == counters["solve_memo.computed"]


class TestWarmRun:
    def test_replays_everything_from_the_store(self, runs):
        result, counters = runs["warm"]
        n_units = runs["cold"][0].computed
        assert result.computed == 0 and result.skipped == n_units
        assert counters["result_store.hit"] == n_units
        assert counters["scenario.units_replayed"] == n_units
        assert counters["scenario.units_computed"] == 0
        assert "result_store.computed" not in counters
        assert "result_store.miss" not in counters

    def test_replay_never_touches_the_solver(self, runs):
        _, counters = runs["warm"]
        assert not any(name.startswith("solve_memo") for name in counters)
        assert not any(name.startswith("nlp.") for name in counters)


class TestForcedRun:
    def test_recomputes_units_but_answers_solves_from_the_memo(self, runs):
        result, counters = runs["forced"]
        n_units = runs["cold"][0].computed
        assert result.computed == n_units
        assert counters["scenario.units_computed"] == n_units
        assert counters["solve_memo.hit"] > 0
        assert "solve_memo.computed" not in counters
        assert "solve_memo.miss" not in counters
        # Memoized solves mean the NLP machinery never runs at all.
        assert "nlp.objective_evaluations" not in counters

    def test_bitwise_equal_results_across_all_three_runs(self, runs):
        cold, warm, forced = (runs[k][0] for k in ("cold", "warm", "forced"))
        assert cold.points == warm.points == forced.points
