"""Property: N concurrent overlapping submissions never compute a key twice.

Hypothesis draws arbitrary overlapping batches of scenario submissions
(overlap = identical ``motivation.wcec`` → identical unit signature) and
races them through one server.  Whatever the interleaving, every distinct
signature must be computed exactly once and the dedup counters must
account for every unit of every request.
"""

import asyncio
import threading
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import MemoryStore
from repro.server import InlineUnitExecutor, SweepServer

#: The signature-distinguishing axis: the cycle counts feed the motivation
#: unit's signature, so equal values collide (dedupable) and distinct
#: values don't.  All three keep the 20 ms frame schedulable (3 tasks
#: need 3·wcec <= 20000 cycles at fmax).
WCEC_POOL = (3000.0, 4500.0, 6000.0)


def document(wcec):
    return {
        "kind": "motivation",
        "name": "motivation-dedup",
        "power": {"model": "ideal", "vmax": 5.0, "vmin": 0.5, "fmax": 1000.0},
        "motivation": {"wcec": wcec, "acec": wcec / 2, "bcec": wcec / 4},
    }


class CountingExecutor(InlineUnitExecutor):
    """Counts executions per key (thread-safe: units run via to_thread)."""

    def __init__(self):
        super().__init__()
        self._lock = threading.Lock()
        self.executions = Counter()

    def run(self, key, unit, solve_memo_root=None):
        with self._lock:
            self.executions[key] += 1
        return super().run(key, unit, solve_memo_root)


@settings(max_examples=15, deadline=None)
@given(st.lists(st.sampled_from(WCEC_POOL), min_size=2, max_size=6))
def test_no_signature_is_ever_computed_twice(wcecs):
    executor = CountingExecutor()
    server = SweepServer(MemoryStore(), executor=executor, workers=4)

    async def race():
        return await asyncio.gather(*(
            server.submit_document(document(wcec)) for wcec in wcecs))

    finals = asyncio.run(race())

    assert all(final["status"] == "ok" for final in finals)
    # the heart of the contract: one execution per distinct signature
    assert all(count == 1 for count in executor.executions.values())
    assert len(executor.executions) == len(set(wcecs))

    counters = server.telemetry.snapshot()["counters"]
    total_units = sum(
        final["computed"] + final["deduped"] + final["coalesced"] for final in finals)
    shared = counters.get("serve.units.deduped", 0) \
        + counters.get("serve.units.inflight_coalesced", 0)
    assert counters["serve.units.computed"] == len(set(wcecs))
    assert counters["serve.units.computed"] + shared == total_units == len(wcecs)
    assert counters["serve.requests"] == len(wcecs)
    assert server.registry == {}
