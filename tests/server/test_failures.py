"""Failure modes: killed workers, stalled units, deterministic errors.

The deterministic fault hooks from :mod:`repro.server.testing` run inside
real worker processes, so "worker killed mid-unit" below is a genuine
SIGKILL of the process computing the unit — the same failure CI's serve
job injects — not a mocked exception.
"""

import asyncio
import json

import pytest

from repro.scenarios import ResultStore
from repro.server import (
    InlineUnitExecutor,
    ProcessUnitExecutor,
    SweepServer,
    UnitFailure,
    client,
)
from repro.server.pool import resolve_fault_hook
from repro.server.testing import kill_first_attempt, stall_first_attempt

MOTIVATION = {
    "kind": "motivation",
    "name": "motivation-faults",
    "power": {"model": "ideal", "vmax": 5.0, "vmin": 0.5, "fmax": 1000.0},
}


async def serve_one(server):
    host, port = await server.start("127.0.0.1", 0)
    events = await asyncio.to_thread(
        lambda: list(client.submit(MOTIVATION, host=host, port=port)))
    await server.drain()
    return events


class TestKilledWorker:
    def test_kill_mid_unit_is_retried_and_the_request_completes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_FAULT_DIR", str(tmp_path / "faults"))
        store = ResultStore(tmp_path / "store")
        executor = ProcessUnitExecutor(
            fault_hook="repro.server.testing:kill_first_attempt")
        server = SweepServer(store, executor=executor, retries=2, backoff=0.01)
        events = asyncio.run(serve_one(server))

        result = events[-1]
        assert result["status"] == "ok" and result["computed"] == 1
        (unit,) = [event for event in events if event["event"] == "unit"]
        assert unit["attempts"] == 2  # first attempt died, retry landed
        counters = server.telemetry.snapshot()["counters"]
        assert counters["serve.units.retried"] == 1
        assert store.claims() == [] and list(store._scratch_paths()) == []

    def test_killed_worker_results_are_bitwise_identical_to_clean_runs(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_FAULT_DIR", str(tmp_path / "faults"))
        faulted = SweepServer(
            ResultStore(tmp_path / "faulted"),
            executor=ProcessUnitExecutor(
                fault_hook="repro.server.testing:kill_first_attempt"),
            retries=2, backoff=0.01)
        clean = SweepServer(ResultStore(tmp_path / "clean"),
                            executor=InlineUnitExecutor())
        faulted_result = asyncio.run(serve_one(faulted))[-1]
        clean_result = asyncio.run(serve_one(clean))[-1]
        assert json.dumps(faulted_result["points"], sort_keys=True) \
            == json.dumps(clean_result["points"], sort_keys=True)
        assert faulted_result["markdown"] == clean_result["markdown"]


class TestTimeout:
    def test_stalled_unit_trips_the_per_unit_timeout_and_is_retried(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_FAULT_DIR", str(tmp_path / "faults"))
        executor = ProcessUnitExecutor(
            unit_timeout=1.0,
            fault_hook="repro.server.testing:stall_first_attempt")
        server = SweepServer(ResultStore(tmp_path / "store"),
                             executor=executor, retries=2, backoff=0.01)
        events = asyncio.run(serve_one(server))
        assert events[-1]["status"] == "ok"
        assert server.telemetry.snapshot()["counters"]["serve.units.retried"] == 1

    def test_timeout_failure_is_retryable(self):
        executor = ProcessUnitExecutor(unit_timeout=0.05,
                                       fault_hook="repro.server.testing:stall_first_attempt")
        # exercised indirectly above; here just pin the failure taxonomy
        failure = UnitFailure("timed out", retryable=True)
        assert failure.retryable
        assert executor.unit_timeout == 0.05


class TestDeterministicErrors:
    def test_computation_error_fails_fast_without_retries(self, tmp_path):
        def explode(key):
            raise ValueError("deterministic bug")

        server = SweepServer(ResultStore(tmp_path / "store"),
                             executor=InlineUnitExecutor(hook=explode),
                             retries=3, backoff=0.01)
        events = asyncio.run(serve_one(server))
        result = events[-1]
        assert result["status"] == "failed" and result["failed"] == 1
        errors = [event for event in events if event["event"] == "error"]
        assert errors and "deterministic bug" in errors[0]["message"]
        counters = server.telemetry.snapshot()["counters"]
        assert "serve.units.retried" not in counters  # no retry was attempted
        assert server.store.entries() == []

    def test_retry_budget_is_bounded(self, tmp_path):
        def always_dies(key):
            raise UnitFailure("synthetic worker death", retryable=True)

        server = SweepServer(ResultStore(tmp_path / "store"),
                             executor=InlineUnitExecutor(hook=always_dies),
                             retries=2, backoff=0.01)
        events = asyncio.run(serve_one(server))
        assert events[-1]["status"] == "failed"
        counters = server.telemetry.snapshot()["counters"]
        assert counters["serve.units.retried"] == 2  # retries, then give up


class TestFaultHooks:
    def test_resolve_fault_hook(self):
        assert resolve_fault_hook(None) is None
        assert resolve_fault_hook("") is None
        hook = resolve_fault_hook("repro.server.testing:kill_first_attempt")
        assert hook is kill_first_attempt
        assert resolve_fault_hook("repro.server.testing:stall_first_attempt") \
            is stall_first_attempt

    def test_hooks_require_a_fault_dir(self, monkeypatch):
        from repro.core.errors import ReproError

        monkeypatch.delenv("REPRO_SERVE_FAULT_DIR", raising=False)
        with pytest.raises(ReproError, match="REPRO_SERVE_FAULT_DIR"):
            kill_first_attempt("some-key")

    def test_sentinel_files_make_faults_fire_exactly_once(self, tmp_path, monkeypatch):
        from repro.server.testing import _first_attempt

        monkeypatch.setenv("REPRO_SERVE_FAULT_DIR", str(tmp_path))
        assert _first_attempt("k1", "kill") is True
        assert _first_attempt("k1", "kill") is False  # second attempt passes
        assert _first_attempt("k2", "kill") is True   # other keys independent
        assert _first_attempt("k1", "stall") is True  # other hook kinds too
