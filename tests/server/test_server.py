"""End-to-end sweep-server behaviour over real HTTP connections.

Each test spins the asyncio server on an ephemeral port and drives it with
the blocking client from a worker thread (``asyncio.to_thread``), exactly
like a real out-of-process client would.
"""

import asyncio
import json

import pytest

from repro.scenarios import MemoryStore, ResultStore, ScenarioEngine, load_scenario
from repro.server import (
    InlineUnitExecutor,
    ServerRequestError,
    SweepServer,
    client,
)

#: Instant deterministic scenario: one unit, no simulation, no NLP solve.
MOTIVATION = {
    "kind": "motivation",
    "name": "motivation-serve",
    "power": {"model": "ideal", "vmax": 5.0, "vmin": 0.5, "fmax": 1000.0},
}


async def start_server(store, **kwargs):
    kwargs.setdefault("executor", InlineUnitExecutor())
    server = SweepServer(store, **kwargs)
    await server.start("127.0.0.1", 0)
    return server


class TestEndpoints:
    def test_healthz_and_stats(self, tmp_path):
        async def scenario():
            server = await start_server(ResultStore(tmp_path / "store"))
            host, port = server.address
            alive = await asyncio.to_thread(client.health, host, port)
            snapshot = await asyncio.to_thread(client.stats, host, port)
            await server.drain()
            return alive, snapshot

        alive, snapshot = asyncio.run(scenario())
        assert alive["status"] == "ok"
        assert snapshot["event"] == "stats"
        assert snapshot["inflight"] == 0 and snapshot["draining"] is False

    @pytest.mark.parametrize("method, path, code", [
        ("GET", "/nope", 404),
        ("GET", "/submit", 405),
    ])
    def test_unknown_routes_are_structured_errors(self, tmp_path, method, path, code):
        async def scenario():
            server = await start_server(ResultStore(tmp_path / "store"))
            host, port = server.address
            try:
                with pytest.raises(ServerRequestError) as excinfo:
                    await asyncio.to_thread(client._get_json, host, port, path)
                return excinfo.value.code
            finally:
                await server.drain()

        # the 405 needs a GET to /submit, which _get_json conveniently issues
        assert asyncio.run(scenario()) == code


class TestSubmit:
    def test_streams_accepted_unit_result_in_order(self, tmp_path):
        async def scenario():
            server = await start_server(ResultStore(tmp_path / "store"))
            host, port = server.address
            events = await asyncio.to_thread(
                lambda: list(client.submit(MOTIVATION, host=host, port=port)))
            await server.drain()
            return events

        events = asyncio.run(scenario())
        assert [event["event"] for event in events] == ["accepted", "unit", "result"]
        accepted, unit, result = events
        assert accepted["scenario"] == "motivation-serve" and accepted["units"] == 1
        assert unit["status"] == "computed" and unit["attempts"] == 1
        assert result["status"] == "ok" and result["computed"] == 1
        assert "| scenario " in result["markdown"]

    def test_second_submission_dedupes_from_the_store(self, tmp_path):
        async def scenario():
            server = await start_server(ResultStore(tmp_path / "store"))
            host, port = server.address
            first = await asyncio.to_thread(
                lambda: list(client.submit(MOTIVATION, host=host, port=port)))
            second = await asyncio.to_thread(
                lambda: list(client.submit(MOTIVATION, host=host, port=port)))
            await server.drain()
            return first[-1], second[-1], server

        first, second, server = asyncio.run(scenario())
        assert first["computed"] == 1 and second["computed"] == 0
        assert second["deduped"] == 1
        assert first["points"] == second["points"]  # replay is bitwise-identical
        counters = server.telemetry.snapshot()["counters"]
        assert counters["serve.units.computed"] == 1
        assert counters["serve.units.deduped"] == 1

    def test_batch_run_results_are_shared_with_the_server(self, tmp_path):
        """A unit a local ``repro run`` computed is never recomputed by serve."""
        store = ResultStore(tmp_path / "store")
        spec_path = tmp_path / "moti.json"
        spec_path.write_text(json.dumps(MOTIVATION))
        local = ScenarioEngine(store).run(load_scenario(spec_path))
        assert local.computed == 1

        async def scenario():
            server = await start_server(store)
            host, port = server.address
            events = await asyncio.to_thread(
                lambda: list(client.submit(MOTIVATION, host=host, port=port)))
            await server.drain()
            return events[-1]

        result = asyncio.run(scenario())
        assert result["computed"] == 0 and result["deduped"] == 1
        assert result["points"] == local.points

    def test_concurrent_identical_submissions_coalesce(self, tmp_path):
        async def scenario():
            server = await start_server(ResultStore(tmp_path / "store"), workers=4)
            host, port = server.address
            finals = await asyncio.gather(*(
                asyncio.to_thread(
                    lambda: list(client.submit(MOTIVATION, host=host, port=port))[-1])
                for _ in range(3)))
            await server.drain()
            return finals, server

        finals, server = asyncio.run(scenario())
        assert all(final["status"] == "ok" for final in finals)
        counters = server.telemetry.snapshot()["counters"]
        assert counters["serve.units.computed"] == 1  # exactly once, ever
        shared = counters.get("serve.units.deduped", 0) \
            + counters.get("serve.units.inflight_coalesced", 0)
        assert counters["serve.units.computed"] + shared == 3
        assert len({json.dumps(final["points"], sort_keys=True) for final in finals}) == 1

    def test_invalid_scenario_is_rejected_with_zero_units_scheduled(self, tmp_path):
        async def scenario():
            server = await start_server(ResultStore(tmp_path / "store"))
            host, port = server.address
            with pytest.raises(ServerRequestError) as excinfo:
                await asyncio.to_thread(
                    lambda: list(client.submit({"kind": "nope"}, host=host, port=port)))
            await server.drain()
            return excinfo.value, server

        error, server = asyncio.run(scenario())
        assert error.code == 400
        assert "kind" in str(error)
        counters = server.telemetry.snapshot()["counters"]
        assert counters["serve.requests.rejected"] == 1
        assert "serve.units.computed" not in counters  # nothing was scheduled
        assert server.store.entries() == []

    def test_malformed_envelope_is_rejected_before_validation(self, tmp_path):
        async def scenario():
            server = await start_server(ResultStore(tmp_path / "store"))
            host, port = server.address
            status, headers, reader = await asyncio.to_thread(
                client._http_request, server.address[0], port, "POST", "/submit",
                b"this is not json")
            body = await asyncio.to_thread(reader.read)
            reader.close()
            await server.drain()
            return status, body

        status, body = asyncio.run(scenario())
        assert status == 400
        event = json.loads(body)
        assert event["event"] == "error" and "JSON" in event["message"]


class TestDrain:
    def test_drain_releases_every_claim_and_scratch_file(self, tmp_path):
        async def scenario():
            store = ResultStore(tmp_path / "store")
            server = await start_server(store)
            host, port = server.address
            await asyncio.to_thread(
                lambda: list(client.submit(MOTIVATION, host=host, port=port)))
            await server.drain()
            return store, server

        store, server = asyncio.run(scenario())
        assert store.claims() == []
        assert list(store._scratch_paths()) == []
        assert server.registry == {}
        assert len(store.entries()) == 1  # the computed unit survived the drain

    def test_draining_server_rejects_new_submissions_with_503(self, tmp_path):
        async def scenario():
            server = await start_server(ResultStore(tmp_path / "store"))
            await server.drain()
            from repro.server.protocol import ProtocolError
            with pytest.raises(ProtocolError) as excinfo:
                await server.submit_document(MOTIVATION)
            return excinfo.value.code

        assert asyncio.run(scenario()) == 503


class TestMemoryStoreBackend:
    def test_server_runs_storeless(self):
        async def scenario():
            server = await start_server(MemoryStore())
            host, port = server.address
            events = await asyncio.to_thread(
                lambda: list(client.submit(MOTIVATION, host=host, port=port)))
            again = await asyncio.to_thread(
                lambda: list(client.submit(MOTIVATION, host=host, port=port)))
            await server.drain()
            return events[-1], again[-1]

        first, second = asyncio.run(scenario())
        assert first["computed"] == 1
        assert second["deduped"] == 1
