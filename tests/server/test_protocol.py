"""Wire-protocol units: event encoding and submit-envelope validation."""

import json

import pytest

from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    ServerRequestError,
    decode_event,
    encode_event,
    error_event,
    parse_submit_body,
)


class TestEvents:
    def test_encode_decode_round_trip(self):
        record = {"event": "unit", "key": "abc", "attempts": 2}
        line = encode_event(record)
        assert line.endswith(b"\n")
        assert decode_event(line.strip()) == record

    def test_encoding_is_canonical(self):
        a = encode_event({"b": 1, "a": 2, "event": "x"})
        b = encode_event({"event": "x", "a": 2, "b": 1})
        assert a == b

    def test_decode_rejects_untagged_records(self):
        with pytest.raises(ProtocolError):
            decode_event(b'{"no_event_field": 1}')
        with pytest.raises(ProtocolError):
            decode_event(b'[1, 2]')

    def test_error_event_shape(self):
        event = error_event(400, "nope", errors=("field",))
        assert event == {"event": "error", "code": 400, "message": "nope",
                         "errors": ["field"]}
        assert "errors" not in error_event(500, "boom")

    def test_protocol_error_round_trips_through_event(self):
        error = ProtocolError(413, "too big", errors=("body",))
        event = error.to_event()
        assert event["code"] == 413 and event["errors"] == ["body"]
        client_side = ServerRequestError(event)
        assert client_side.code == 413
        assert "too big" in str(client_side)

    def test_protocol_version_is_stable(self):
        assert PROTOCOL_VERSION == 1


class TestParseSubmitBody:
    def body(self, **payload):
        return json.dumps(payload).encode("utf-8")

    def test_accepts_document_and_profile(self):
        document, profile = parse_submit_body(
            self.body(document={"kind": "motivation"}, profile="smoke"))
        assert document == {"kind": "motivation"} and profile == "smoke"

    def test_profile_defaults_to_none(self):
        _, profile = parse_submit_body(self.body(document={}))
        assert profile is None

    @pytest.mark.parametrize("raw, fragment", [
        (b"not json", "not valid JSON"),
        (b"[1]", "JSON object"),
        (b'{"profile": "smoke"}', "'document'"),
        (b'{"document": "a string"}', "'document'"),
        (b'{"document": {}, "profile": 3}', "'profile'"),
        (b'{"document": {}, "extra": 1}', "unknown request fields"),
    ])
    def test_rejections_are_structured_400s(self, raw, fragment):
        with pytest.raises(ProtocolError) as excinfo:
            parse_submit_body(raw)
        assert excinfo.value.code == 400
        assert fragment in str(excinfo.value)
