"""CLI surfaces: ``repro serve`` and ``repro submit``."""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.cli import build_parser, main
from repro.scenarios import ResultStore
from repro.server import InlineUnitExecutor, SweepServer

MOTIVATION = {
    "kind": "motivation",
    "name": "motivation-cli-serve",
    "power": {"model": "ideal", "vmax": 5.0, "vmin": 0.5, "fmax": 1000.0},
}

SRC_ROOT = str(Path(repro.__file__).resolve().parents[1])


def write_spec(tmp_path, document, name="scenario.json"):
    target = tmp_path / name
    target.write_text(json.dumps(document))
    return str(target)


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 0
        assert args.workers == 2 and args.retries == 2
        assert args.unit_timeout is None and args.store is None

    def test_serve_knobs(self):
        args = build_parser().parse_args(
            ["serve", "--port", "8123", "--workers", "8",
             "--unit-timeout", "30", "--retries", "0", "--backoff", "0.1"])
        assert args.port == 8123 and args.workers == 8
        assert args.unit_timeout == 30.0 and args.retries == 0

    def test_submit_requires_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "spec.toml"])
        args = build_parser().parse_args(
            ["submit", "spec.toml", "--port", "8123", "--profile", "smoke"])
        assert args.port == 8123 and args.profile == "smoke"

    def test_serve_rejects_bad_workers(self, capsys):
        assert main(["serve", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err


class ServerInThread:
    """Run a SweepServer on a private event loop for blocking-CLI tests."""

    def __init__(self, store):
        self.server = SweepServer(store, executor=InlineUnitExecutor())
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._spin, daemon=True)

    def _spin(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def __enter__(self):
        self.thread.start()
        future = asyncio.run_coroutine_threadsafe(self.server.start(), self.loop)
        self.host, self.port = future.result(timeout=10)
        return self

    def __exit__(self, *exc_info):
        asyncio.run_coroutine_threadsafe(self.server.drain(), self.loop).result(timeout=10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


class TestSubmitCommand:
    def test_submit_round_trip(self, capsys, tmp_path):
        spec = write_spec(tmp_path, MOTIVATION)
        with ServerInThread(ResultStore(tmp_path / "store")) as running:
            assert main(["submit", spec, "--port", str(running.port)]) == 0
        captured = capsys.readouterr()
        assert "| scenario " in captured.out
        assert "computed=1" in captured.out
        assert "accepted: motivation-cli-serve" in captured.err

    def test_submit_matches_local_run_bitwise(self, capsys, tmp_path):
        spec = write_spec(tmp_path, MOTIVATION)
        assert main(["run", spec, "--store", str(tmp_path / "local-store")]) == 0
        local_table = capsys.readouterr().out
        with ServerInThread(ResultStore(tmp_path / "serve-store")) as running:
            assert main(["submit", spec, "--port", str(running.port)]) == 0
        served_table = capsys.readouterr().out
        # the markdown table is identical; only the harness framing differs
        local_rows = [line for line in local_table.splitlines() if line.startswith("|")]
        served_rows = [line for line in served_table.splitlines() if line.startswith("|")]
        assert local_rows == served_rows

    def test_submit_surfaces_server_rejection(self, capsys, tmp_path):
        spec = write_spec(tmp_path, {"kind": "nope", "name": "bad"})
        with ServerInThread(ResultStore(tmp_path / "store")) as running:
            assert main(["submit", spec, "--port", str(running.port)]) == 2
        assert "server rejected the request (400)" in capsys.readouterr().err

    def test_submit_reports_unreachable_server(self, capsys, tmp_path):
        spec = write_spec(tmp_path, MOTIVATION)
        with ServerInThread(ResultStore(tmp_path / "store")) as running:
            port = running.port
        # the context manager drained the server: the port is now dead
        assert main(["submit", spec, "--port", str(port)]) == 2
        assert "cannot reach sweep server" in capsys.readouterr().err


class TestServeProcess:
    """The real daemon: subprocess, SIGTERM, clean drain (the CI gate's twin)."""

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
        store_dir = tmp_path / "store"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", "0", "--store", str(store_dir)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
        try:
            line = process.stdout.readline()
            assert line.startswith("serving on 127.0.0.1:")
            port = int(line.split(":", 1)[1].split()[0])

            from repro.server import client
            deadline = time.monotonic() + 10
            while True:
                try:
                    assert client.health("127.0.0.1", port)["status"] == "ok"
                    break
                except OSError:  # pragma: no cover - startup race
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.1)
            final = list(client.submit(MOTIVATION, host="127.0.0.1", port=port))[-1]
            assert final["status"] == "ok" and final["computed"] == 1

            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup on failure
                process.kill()
                process.communicate()
        assert process.returncode == 0, stderr
        assert "drained cleanly: 1 request(s), 1 unit(s) computed" in stdout
        assert "draining in-flight requests" in stderr
        store = ResultStore(store_dir)
        assert len(store.entries()) == 1
        assert store.claims() == [] and list(store._scratch_paths()) == []
