"""Event-level differential oracle: compiled vs reference trace conformance.

Aggregate equivalence (energy, misses, timelines) cannot see a dispatcher
that schedules *differently* but conserves energy.  These tests compare the
two scalar engines at the finest observable grain — the full typed event
stream (``SimulationConfig(trace=True)``) — with exact dataclass equality:
every release, resume, frequency change, segment, preemption and deadline
miss must match in order and in every field, across

* all four built-in DVS policies × all four workload models (the 4×4 matrix),
* sporadic arrivals with bounded release jitter,
* discrete-voltage quantisation and transition-overhead configurations, and
* the batched engine (which must fall back per-unit when tracing is on).
"""

import numpy as np
import pytest

from repro.analysis.preemption import expand_fully_preemptive
from repro.core.task import Task
from repro.core.taskset import TaskSet
from repro.offline.schedule import StaticSchedule
from repro.offline.wcs import WCSScheduler
from repro.power.presets import ideal_processor
from repro.power.transition import TransitionModel
from repro.power.voltage import VoltageLevels
from repro.runtime.policies import available_policies
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.runtime.trace import EventTrace
from repro.workloads.arrivals import SporadicArrivals
from repro.workloads.distributions import (
    BimodalWorkload,
    FixedWorkload,
    NormalWorkload,
    UniformWorkload,
)

WORKLOADS = [
    NormalWorkload(),
    UniformWorkload(),
    FixedWorkload(mode="acec"),
    BimodalWorkload(burst_probability=0.3),
]


@pytest.fixture(scope="module")
def processor():
    return ideal_processor(fmax=1000.0)


@pytest.fixture(scope="module")
def taskset():
    return TaskSet([
        Task("hi", period=10, wcec=1800, acec=1000, bcec=300),
        Task("mid", period=20, wcec=4200, acec=2400, bcec=900),
        Task("lo", period=40, wcec=9000, acec=5000, bcec=1500),
    ], name="trace-conformance")


@pytest.fixture(scope="module")
def wcs_schedule(processor, taskset):
    return WCSScheduler(processor).schedule_expansion(
        expand_fully_preemptive(taskset))


def run_both_traced(processor, schedule, workload, policy, seed=20250807,
                    **config_kwargs):
    """Run compiled and reference engines traced, from identical RNG states."""
    results = []
    for fast_path in (True, False):
        config = SimulationConfig(
            n_hyperperiods=7, seed=seed, trace=True, record_timeline=True,
            fast_path=fast_path, **config_kwargs,
        )
        simulator = DVSSimulator(processor, policy=policy, config=config)
        rng = np.random.default_rng(seed)
        results.append(simulator.run(schedule, workload, rng))
    return results


def assert_traces_identical(fast, reference):
    """Exact event-sequence equality plus the aggregate quantities."""
    assert isinstance(fast.trace, EventTrace)
    assert isinstance(reference.trace, EventTrace)
    assert len(fast.trace) == len(reference.trace)
    for index, (left, right) in enumerate(zip(fast.trace, reference.trace)):
        assert left == right, (
            f"traces diverge at event {index}: compiled={left!r} reference={right!r}")
    assert fast.trace == reference.trace
    assert fast.total_energy == reference.total_energy
    assert fast.energy_by_task == reference.energy_by_task
    assert fast.deadline_misses == reference.deadline_misses
    assert fast.timeline.segments == reference.timeline.segments


@pytest.mark.parametrize("policy", available_policies())
@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
def test_policy_workload_matrix(processor, wcs_schedule, policy, workload):
    """The full 4 policies × 4 workloads oracle matrix."""
    fast, reference = run_both_traced(processor, wcs_schedule, workload, policy)
    assert_traces_identical(fast, reference)
    assert len(fast.trace) > 0


@pytest.mark.parametrize("policy", available_policies())
def test_sporadic_arrivals(processor, wcs_schedule, policy):
    """Jittered releases re-rank the dispatcher; both engines must agree."""
    fast, reference = run_both_traced(
        processor, wcs_schedule, NormalWorkload(), policy,
        arrivals=SporadicArrivals(max_jitter=1.5),
    )
    assert_traces_identical(fast, reference)
    # Jitter of this magnitude actually provokes preemptions; without them
    # the sporadic oracle would silently test the periodic path again.
    assert len(fast.trace.of_kind("Preempt")) > 0


def test_sporadic_jitter_changes_the_trace(processor, wcs_schedule):
    """Sanity: the sporadic trace differs from the periodic one."""
    periodic, _ = run_both_traced(processor, wcs_schedule, NormalWorkload(), "greedy")
    sporadic, _ = run_both_traced(
        processor, wcs_schedule, NormalWorkload(), "greedy",
        arrivals=SporadicArrivals(max_jitter=1.5),
    )
    assert periodic.trace != sporadic.trace


def test_discrete_voltage_levels(processor, wcs_schedule):
    fast, reference = run_both_traced(
        processor, wcs_schedule, NormalWorkload(), "lookahead",
        voltage_levels=VoltageLevels([0.5, 1.0, 2.0, 3.0, 4.0, 5.0]),
    )
    assert_traces_identical(fast, reference)


def test_transition_overhead(processor, wcs_schedule):
    fast, reference = run_both_traced(
        processor, wcs_schedule, BimodalWorkload(), "greedy",
        transition_model=TransitionModel(cdd=0.2, efficiency_loss=0.8),
    )
    assert fast.transition_energy > 0.0
    assert_traces_identical(fast, reference)


def test_deadline_miss_events_identical(processor, taskset):
    """A stretched schedule that actually misses produces matching events."""
    expansion = expand_fully_preemptive(taskset)
    schedule = StaticSchedule.from_vectors(
        expansion,
        [sub.slot_end for sub in expansion.sub_instances],
        WCSScheduler(processor).schedule_expansion(expansion).wc_budgets(),
        method="stretched",
    )
    fast, reference = run_both_traced(
        processor, schedule, FixedWorkload(mode="wcec"), "proportional")
    assert_traces_identical(fast, reference)
    misses = fast.trace.of_kind("DeadlineMiss")
    assert len(misses) == len(fast.deadline_misses) > 0


def test_trace_off_is_bitwise_unchanged(processor, wcs_schedule):
    """Tracing must be a pure observer: trace=True changes no results."""
    for fast_path in (True, False):
        outcomes = []
        for trace in (False, True):
            config = SimulationConfig(
                n_hyperperiods=7, seed=1, trace=trace, record_timeline=True,
                fast_path=fast_path)
            simulator = DVSSimulator(processor, policy="greedy", config=config)
            rng = np.random.default_rng(1)
            outcomes.append(simulator.run(wcs_schedule, NormalWorkload(), rng))
        off, on = outcomes
        assert off.trace is None
        assert isinstance(on.trace, EventTrace)
        assert off.total_energy == on.total_energy
        assert off.energy_by_task == on.energy_by_task
        assert off.timeline.segments == on.timeline.segments


def test_timeline_is_a_projection_of_the_trace(processor, wcs_schedule):
    """record_timeline is implemented on top of the stream — verify losslessly."""
    fast, reference = run_both_traced(processor, wcs_schedule, NormalWorkload(), "greedy")
    for result in (fast, reference):
        assert result.trace.to_timeline().segments == result.timeline.segments


def test_batched_engine_falls_back_when_traced(processor, wcs_schedule):
    """batched=True with trace=True must take the per-unit compiled path and
    still produce the identical event stream."""
    from repro.runtime.batched import BatchUnit, batch_fallback_reason

    config = SimulationConfig(n_hyperperiods=7, seed=3, trace=True, batched=True)
    unit = BatchUnit(schedule=wcs_schedule, processor=processor,
                     policy="greedy", config=config)
    assert batch_fallback_reason(unit) == "trace"

    simulator = DVSSimulator(processor, policy="greedy", config=config)
    batched_result = simulator.run(
        wcs_schedule, NormalWorkload(), np.random.default_rng(3))
    plain = SimulationConfig(n_hyperperiods=7, seed=3, trace=True)
    reference = DVSSimulator(processor, policy="greedy", config=plain).run(
        wcs_schedule, NormalWorkload(), np.random.default_rng(3))
    assert batched_result.trace == reference.trace
    assert batched_result.total_energy == reference.total_energy


@pytest.mark.parametrize("policy", available_policies())
def test_batched_engine_matches_traced_oracle_for_arrivals(
        processor, wcs_schedule, policy):
    """Sporadic arrivals run in the vectorized core, bitwise-conformant.

    The regression guarded here: jittered releases used to force the
    per-unit compiled fallback.  Now the batched engine draws per-job
    offsets and re-ranks its dispatch order per hyperperiod, so the
    (untraced) batched aggregates must equal the traced compiled run —
    which in turn is event-equal to the reference loop.
    """
    from repro.runtime.batched import BatchUnit, batch_fallback_reason

    arrivals = SporadicArrivals(max_jitter=1.5)
    config = SimulationConfig(n_hyperperiods=7, seed=11, batched=True,
                              arrivals=arrivals)
    unit = BatchUnit(schedule=wcs_schedule, processor=processor,
                     policy=policy, config=config)
    assert batch_fallback_reason(unit) is None  # no longer a fallback

    batched = DVSSimulator(processor, policy=policy, config=config).run(
        wcs_schedule, NormalWorkload(), np.random.default_rng(11))
    # Traced compiled run: the event-level oracle (itself checked against
    # the reference engine by test_sporadic_arrivals).
    traced_config = SimulationConfig(n_hyperperiods=7, seed=11, trace=True,
                                     arrivals=arrivals)
    traced = DVSSimulator(processor, policy=policy, config=traced_config).run(
        wcs_schedule, NormalWorkload(), np.random.default_rng(11))
    assert len(traced.trace) > 0
    assert batched.total_energy == traced.total_energy
    assert batched.energy_per_hyperperiod == traced.energy_per_hyperperiod
    assert batched.energy_by_task == traced.energy_by_task
    assert batched.deadline_misses == traced.deadline_misses
