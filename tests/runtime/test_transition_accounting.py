"""Transition-energy accounting on zero-budget dispatches (regression).

A job whose worst-case budgets underestimate its drawn cycles ends up
dispatched with no usable budget left: the event loops finish it at
``fmax``/``vmax`` (the "numerical fringe").  The accounting bug fixed here
charged the voltage transition *before* that override — at the voltage the
policy proposed for a dispatch that never executes at it — and also charged
transitions for zero-cycle requeue dispatches that switch nothing.  The fix
moves transition accounting after the zero-budget handling in the compiled,
reference and batched paths alike; this file constructs the
zero-budget-dispatch case explicitly and pins the corrected numbers.
"""

import numpy as np
import pytest

from repro.analysis.preemption import expand_fully_preemptive
from repro.core.task import Task
from repro.core.taskset import TaskSet
from repro.offline.schedule import ScheduledSubInstance, StaticSchedule
from repro.power.presets import ideal_processor
from repro.power.transition import TransitionModel
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.workloads.distributions import FixedWorkload

N_HYPERPERIODS = 2
TRANSITION = TransitionModel(cdd=0.2, efficiency_loss=0.8)


@pytest.fixture(scope="module")
def processor():
    return ideal_processor(fmax=1000.0)  # vmax=5.0, so k = 0.005


@pytest.fixture(scope="module")
def underbudgeted_schedule(processor):
    """A single job whose only entry budgets 3600 of its 6000 WCEC cycles.

    With a fixed WCEC workload the job exhausts the budget mid-flight and is
    re-dispatched with ``budget <= eps`` at its last entry — exactly the
    fringe the event loops finish at fmax/vmax.
    """
    taskset = TaskSet([Task("solo", period=10, wcec=6000, acec=6000, bcec=6000)],
                      name="underbudgeted")
    expansion = expand_fully_preemptive(taskset)
    entries = [
        ScheduledSubInstance(sub=sub, end_time=10.0, wc_budget=3600.0)
        for sub in expansion.sub_instances
    ]
    return StaticSchedule(expansion=expansion, entries=entries, method="handmade")


def run_engine(processor, schedule, **config_kwargs):
    config = SimulationConfig(n_hyperperiods=N_HYPERPERIODS,
                              transition_model=TRANSITION, **config_kwargs)
    simulator = DVSSimulator(processor, policy="greedy", config=config)
    return simulator.run(schedule, FixedWorkload(mode="wcec"),
                         np.random.default_rng(7))


def test_fringe_dispatch_charges_transition_at_vmax(processor, underbudgeted_schedule):
    """The zero-budget dispatch transitions to vmax, not to the policy's voltage.

    Per hyperperiod: the first dispatch runs at the greedy speed
    (3600 cycles / 10 time units -> 360 Hz -> 1.8 V, no transition yet);
    the second dispatch has no usable budget, so the loop overrides it to
    vmax and must charge the 1.8 V -> 5.0 V transition.  The pre-fix code
    charged the transition at the *pre-override* policy voltage instead
    (greedy proposes fmin -> vmin for an exhausted budget).
    """
    result = run_engine(processor, underbudgeted_schedule)
    policy_voltage = processor.voltage_for_frequency(3600.0 / 10.0)
    assert policy_voltage == pytest.approx(1.8)
    expected = N_HYPERPERIODS * TRANSITION.transition_energy(policy_voltage,
                                                             processor.vmax)
    buggy = N_HYPERPERIODS * TRANSITION.transition_energy(policy_voltage,
                                                          processor.vmin)
    assert result.transition_energy == expected
    assert result.transition_energy != buggy
    # The fringe actually finished the job (and recorded the resulting miss).
    assert result.jobs_completed == N_HYPERPERIODS
    assert len(result.deadline_misses) == N_HYPERPERIODS


def test_all_three_engines_agree_bitwise(processor, underbudgeted_schedule):
    compiled = run_engine(processor, underbudgeted_schedule, fast_path=True)
    reference = run_engine(processor, underbudgeted_schedule, fast_path=False)
    batched = run_engine(processor, underbudgeted_schedule, batched=True)
    for other in (reference, batched):
        assert compiled.total_energy == other.total_energy
        assert compiled.energy_per_hyperperiod == other.energy_per_hyperperiod
        assert compiled.transition_energy == other.transition_energy
        assert compiled.energy_by_task == other.energy_by_task
        assert compiled.deadline_misses == other.deadline_misses
