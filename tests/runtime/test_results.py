"""Tests for the simulation result records."""

import pytest

from repro.runtime.results import DeadlineMiss, SimulationResult, improvement_percent


def make_result(energies, misses=0):
    return SimulationResult(
        method="acs",
        policy="greedy",
        n_hyperperiods=len(energies),
        total_energy=sum(energies),
        energy_per_hyperperiod=list(energies),
        deadline_misses=[DeadlineMiss("t", 0, i, 10.0, 11.0) for i in range(misses)],
        jobs_completed=3 * len(energies),
    )


class TestSimulationResult:
    def test_mean_energy(self):
        result = make_result([10.0, 20.0, 30.0])
        assert result.mean_energy_per_hyperperiod == pytest.approx(20.0)

    def test_empty_energy_list(self):
        result = make_result([])
        assert result.mean_energy_per_hyperperiod == 0.0

    def test_miss_accounting(self):
        result = make_result([1.0], misses=2)
        assert result.miss_count == 2
        assert not result.met_all_deadlines
        assert make_result([1.0]).met_all_deadlines

    def test_summary_contains_key_fields(self):
        text = make_result([1.0, 2.0]).summary()
        assert "acs" in text and "greedy" in text and "2 hyperperiods" in text


class TestDeadlineMiss:
    def test_lateness(self):
        miss = DeadlineMiss("t", 1, 0, deadline=10.0, finish_time=12.5)
        assert miss.lateness == pytest.approx(2.5)


class TestImprovementPercent:
    def test_reduction(self):
        assert improvement_percent(100.0, 60.0) == pytest.approx(40.0)

    def test_regression_is_negative(self):
        assert improvement_percent(100.0, 120.0) == pytest.approx(-20.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            improvement_percent(0.0, 1.0)
