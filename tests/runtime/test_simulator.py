"""Tests for the discrete-event runtime simulator."""

import numpy as np
import pytest

from repro.core.errors import DeadlineMissError, SimulationError
from repro.core.task import Task
from repro.offline.acs import ACSScheduler
from repro.offline.nonpreemptive import frame_based_taskset
from repro.offline.schedule import StaticSchedule
from repro.offline.wcs import WCSScheduler
from repro.analysis.preemption import expand_fully_preemptive
from repro.power.transition import TransitionModel
from repro.power.voltage import VoltageLevels
from repro.runtime.dvs import GreedySlackPolicy, NoReclamationPolicy, ProportionalSlackPolicy
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.workloads.distributions import FixedWorkload, NormalWorkload


@pytest.fixture
def frame_schedule(processor):
    """Two-task frame with a hand-checkable schedule: end-times 5 and 10 ms."""
    tasks = [
        Task("t1", period=10, wcec=4000, acec=2000, bcec=1000),
        Task("t2", period=10, wcec=4000, acec=2000, bcec=1000),
    ]
    taskset = frame_based_taskset(tasks, 10.0)
    expansion = expand_fully_preemptive(taskset)
    return StaticSchedule.from_vectors(expansion, [5.0, 10.0], [4000.0, 4000.0], method="manual")


class TestConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(SimulationError):
            SimulationConfig(n_hyperperiods=0)
        with pytest.raises(SimulationError):
            SimulationConfig(on_deadline_miss="ignore")


class TestDeterministicBehaviour:
    def test_worst_case_matches_analytic_energy(self, frame_schedule, processor):
        """All-WCEC run: both tasks run 4000 cycles at 4 V → 2 · 4000 · 16."""
        simulator = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=1))
        result = simulator.run(frame_schedule, FixedWorkload(mode="wcec"))
        assert result.total_energy == pytest.approx(2 * 4000 * 16.0, rel=1e-6)
        assert result.met_all_deadlines
        assert result.jobs_completed == 2

    def test_average_case_greedy_slack(self, frame_schedule, processor):
        """t1 finishes at 2.5 ms; t2 inherits the slack and runs at 4000/7.5 cycles/ms."""
        simulator = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=1))
        result = simulator.run(frame_schedule, FixedWorkload(mode="acec"))
        v2 = processor.voltage_for_frequency(4000.0 / 7.5)
        expected = 2000 * 16.0 + 2000 * v2 ** 2
        assert result.total_energy == pytest.approx(expected, rel=1e-6)

    def test_energy_accumulates_over_hyperperiods(self, frame_schedule, processor):
        simulator = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=5))
        result = simulator.run(frame_schedule, FixedWorkload(mode="wcec"))
        assert len(result.energy_per_hyperperiod) == 5
        assert result.total_energy == pytest.approx(5 * result.energy_per_hyperperiod[0])
        assert result.mean_energy_per_hyperperiod == pytest.approx(result.energy_per_hyperperiod[0])

    def test_energy_by_task_split(self, frame_schedule, processor):
        simulator = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=1))
        result = simulator.run(frame_schedule, FixedWorkload(mode="wcec"))
        assert set(result.energy_by_task) == {"t1", "t2"}
        assert sum(result.energy_by_task.values()) == pytest.approx(result.total_energy)


class TestPreemptiveBehaviour:
    def test_preemption_recorded_in_timeline(self, two_task_set, processor):
        schedule = WCSScheduler(processor).schedule(two_task_set)
        simulator = DVSSimulator(
            processor, config=SimulationConfig(n_hyperperiods=1, record_timeline=True))
        result = simulator.run(schedule, FixedWorkload(mode="wcec"))
        timeline = result.timeline
        assert timeline is not None
        timeline.validate()
        # B (low priority, 8000 cycles) must be preempted by A's second job at t=10:
        # it appears in at least two separate segments.
        assert len(timeline.segments_for("B", 0)) >= 2
        # A's second job executes after its release at 10.
        a1 = timeline.segments_for("A", 1)
        assert a1 and min(s.start for s in a1) >= 10.0 - 1e-9

    def test_worst_case_no_deadline_miss_for_acs_and_wcs(self, three_task_set, processor):
        for scheduler in (ACSScheduler(processor), WCSScheduler(processor)):
            schedule = scheduler.schedule(three_task_set)
            simulator = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=3))
            result = simulator.run(schedule, FixedWorkload(mode="wcec"))
            assert result.met_all_deadlines, scheduler.name

    def test_random_workload_no_deadline_miss(self, three_task_set, processor):
        schedule = ACSScheduler(processor).schedule(three_task_set)
        simulator = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=50, seed=7))
        result = simulator.run(schedule, NormalWorkload())
        assert result.met_all_deadlines
        assert result.jobs_completed == 50 * len(schedule.expansion.instances)

    def test_deadline_miss_raises_when_configured(self, two_task_set, processor):
        """An intentionally broken schedule (absurdly early end-times are fine; absurdly *late*
        budgets in a short window are not) must trigger the raise path."""
        expansion = expand_fully_preemptive(two_task_set)
        # Give B all its budget in the second slot but an end-time after the deadline is not
        # allowed by from_vectors, so instead starve A[1] by planning B's second chunk to end
        # exactly at 20 while forcing A's second job to wait: put A[1]'s end-time at 20 too and
        # its budget late.  Simpler: run the valid schedule but shrink the deadline via a faster
        # workload is impossible — so construct an infeasible schedule directly.
        end_times = []
        budgets = []
        for sub in expansion.sub_instances:
            end_times.append(sub.slot_end)
            budgets.append(sub.instance.wcec if sub.sub_index == len(
                [s for s in expansion.sub_instances if s.instance.key == sub.instance.key]) - 1 else 0.0)
        schedule = StaticSchedule.from_vectors(expansion, end_times, budgets, method="broken")
        simulator = DVSSimulator(
            processor, config=SimulationConfig(n_hyperperiods=1, on_deadline_miss="record"))
        result = simulator.run(schedule, FixedWorkload(mode="wcec"))
        assert result.miss_count >= 1
        with pytest.raises(DeadlineMissError):
            DVSSimulator(processor, config=SimulationConfig(
                n_hyperperiods=1, on_deadline_miss="raise")).run(schedule, FixedWorkload(mode="wcec"))


class TestPolicies:
    def test_greedy_no_worse_than_static(self, two_task_set, processor):
        """Greedy reclamation exploits dynamic slack, the static policy does not."""
        schedule = WCSScheduler(processor).schedule(two_task_set)
        config = SimulationConfig(n_hyperperiods=20, seed=5)
        greedy = DVSSimulator(processor, GreedySlackPolicy(), config).run(
            schedule, NormalWorkload(), np.random.default_rng(0))
        static = DVSSimulator(processor, NoReclamationPolicy(), config).run(
            schedule, NormalWorkload(), np.random.default_rng(0))
        assert greedy.mean_energy_per_hyperperiod <= static.mean_energy_per_hyperperiod + 1e-6

    def test_proportional_policy_runs(self, two_task_set, processor):
        schedule = WCSScheduler(processor).schedule(two_task_set)
        simulator = DVSSimulator(processor, ProportionalSlackPolicy(),
                                 SimulationConfig(n_hyperperiods=5, seed=5))
        result = simulator.run(schedule, NormalWorkload())
        assert result.total_energy > 0


class TestHardwareEffects:
    def test_voltage_quantization_costs_energy_but_keeps_deadlines(self, two_task_set, processor):
        schedule = ACSScheduler(processor).schedule(two_task_set)
        levels = VoltageLevels.uniform(processor.vmin, processor.vmax, 4)
        continuous = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=10, seed=2)).run(
            schedule, NormalWorkload(), np.random.default_rng(3))
        quantized = DVSSimulator(processor, config=SimulationConfig(
            n_hyperperiods=10, seed=2, voltage_levels=levels, quantization="ceiling")).run(
            schedule, NormalWorkload(), np.random.default_rng(3))
        assert quantized.total_energy >= continuous.total_energy - 1e-9
        assert quantized.met_all_deadlines

    def test_transition_overhead_accounted(self, two_task_set, processor):
        schedule = ACSScheduler(processor).schedule(two_task_set)
        config = SimulationConfig(n_hyperperiods=5, seed=2,
                                  transition_model=TransitionModel.realistic())
        result = DVSSimulator(processor, config=config).run(
            schedule, NormalWorkload(), np.random.default_rng(3))
        assert result.transition_energy > 0.0

    def test_ideal_transitions_cost_nothing(self, two_task_set, processor):
        schedule = ACSScheduler(processor).schedule(two_task_set)
        result = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=2, seed=2)).run(
            schedule, NormalWorkload())
        assert result.transition_energy == 0.0


class TestReproducibility:
    def test_same_seed_same_energy(self, two_task_set, processor):
        schedule = WCSScheduler(processor).schedule(two_task_set)
        config = SimulationConfig(n_hyperperiods=10, seed=42)
        first = DVSSimulator(processor, config=config).run(schedule, NormalWorkload())
        second = DVSSimulator(processor, config=config).run(schedule, NormalWorkload())
        assert first.total_energy == pytest.approx(second.total_energy)

    def test_different_seed_different_energy(self, two_task_set, processor):
        schedule = WCSScheduler(processor).schedule(two_task_set)
        first = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=10, seed=1)).run(
            schedule, NormalWorkload())
        second = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=10, seed=2)).run(
            schedule, NormalWorkload())
        assert first.total_energy != pytest.approx(second.total_energy)
