"""Property-based invariants of the typed event stream.

Hypothesis drives the simulator across random seeds, policies, engines and
arrival jitter; for every generated run the trace must satisfy the structural
laws that hold for *any* valid schedule:

* timestamps are non-decreasing along the stream;
* every ``Preempt`` of a job is matched by a later ``Resume`` of that job
  (preempted work is never dropped), strictly alternating per job;
* summing ``SegmentEnd.energy`` in stream order reproduces the aggregate
  energies **bitwise** — per task, per hyperperiod and in total (the events
  are the ground truth the aggregates are folded from, in the same order);
* ``DeadlineMiss`` events agree one-to-one with ``result.deadline_misses``,
  and the per-result counts roll up consistently into the comparison and
  multicore harnesses.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.preemption import expand_fully_preemptive
from repro.core.task import Task
from repro.core.taskset import TaskSet
from repro.offline.schedule import StaticSchedule
from repro.offline.wcs import WCSScheduler
from repro.power.presets import ideal_processor
from repro.runtime.policies import available_policies
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.workloads.arrivals import SporadicArrivals
from repro.workloads.distributions import FixedWorkload, NormalWorkload

#: Timestamps may repeat (zero-latency dispatch chains) but never go back by
#: more than float noise.
_TIME_SLACK = 1e-9

PROCESSOR = ideal_processor(fmax=1000.0)
TASKSET = TaskSet([
    Task("hi", period=10, wcec=1800, acec=1000, bcec=300),
    Task("mid", period=20, wcec=4200, acec=2400, bcec=900),
    Task("lo", period=40, wcec=9000, acec=5000, bcec=1500),
], name="trace-invariants")
SCHEDULE = WCSScheduler(PROCESSOR).schedule_expansion(
    expand_fully_preemptive(TASKSET))


def run_traced(seed, policy="greedy", fast_path=True, jitter=0.0,
               n_hyperperiods=3, schedule=SCHEDULE, workload=None):
    arrivals = SporadicArrivals(max_jitter=jitter) if jitter > 0.0 else None
    config = SimulationConfig(n_hyperperiods=n_hyperperiods, seed=seed,
                              trace=True, fast_path=fast_path, arrivals=arrivals)
    simulator = DVSSimulator(PROCESSOR, policy=policy, config=config)
    return simulator.run(schedule, workload or NormalWorkload(),
                         np.random.default_rng(seed))


traced_runs = st.builds(
    run_traced,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    policy=st.sampled_from(available_policies()),
    fast_path=st.booleans(),
    jitter=st.sampled_from([0.0, 0.5, 1.5]),
)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(result=traced_runs)
def test_timestamps_non_decreasing(result):
    """Monotone within each hyperperiod; resets strictly increase.

    The boundary itself is exempt: an overrunning job (a deadline miss) may
    finish *after* the next hyperperiod's nominal offset, and the following
    ``HyperperiodReset`` is stamped at that nominal offset, not at the
    overrun's finish time — each hyperperiod is simulated independently.
    """
    previous = None
    last_reset = None
    for event in result.trace:
        if event.kind == "HyperperiodReset":
            if last_reset is not None:
                assert event.time > last_reset.time
                assert event.hyperperiod == last_reset.hyperperiod + 1
            last_reset = event
            previous = event
            continue
        assert previous is not None, "events before the first HyperperiodReset"
        assert event.time >= previous.time - _TIME_SLACK, (
            f"time went backwards: {previous!r} then {event!r}")
        previous = event


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(result=traced_runs)
def test_every_preempt_is_matched_by_a_resume(result):
    """Per job (within a hyperperiod) Preempt/Resume strictly alternate,
    starting with a Preempt and ending with a Resume — preempted work is
    always picked up again."""
    per_job = {}
    for event in result.trace:
        if event.kind == "HyperperiodReset":
            # Job indices restart each hyperperiod; flush and check the old one.
            for key, kinds in per_job.items():
                assert _alternates(kinds), f"unbalanced preempt/resume for {key}: {kinds}"
            per_job = {}
        elif event.kind in ("Preempt", "Resume"):
            per_job.setdefault((event.task, event.job_index), []).append(event.kind)
    for key, kinds in per_job.items():
        assert _alternates(kinds), f"unbalanced preempt/resume for {key}: {kinds}"


def _alternates(kinds):
    expected = "Preempt"
    for kind in kinds:
        if kind != expected:
            return False
        expected = "Resume" if expected == "Preempt" else "Preempt"
    return expected == "Preempt"  # even length: every Preempt was resumed


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(result=traced_runs)
def test_segment_energies_fold_to_aggregates_bitwise(result):
    """SegmentEnd energies, summed in stream order, ARE the aggregates."""
    by_task = {}
    per_hp = []
    hp_energy = 0.0
    for event in result.trace:
        if event.kind == "HyperperiodReset":
            if event.hyperperiod > 0:
                per_hp.append(hp_energy)
            hp_energy = 0.0
        elif event.kind == "SegmentEnd":
            by_task[event.task] = by_task.get(event.task, 0.0) + event.energy
            hp_energy += event.energy
    per_hp.append(hp_energy)

    assert by_task == result.energy_by_task  # dict equality is exact on floats
    assert per_hp == result.energy_per_hyperperiod
    assert float(sum(per_hp)) == result.total_energy


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(result=traced_runs)
def test_deadline_miss_events_match_records(result):
    events = result.trace.of_kind("DeadlineMiss")
    assert len(events) == len(result.deadline_misses) == result.miss_count
    for event, record in zip(events, result.deadline_misses):
        assert event.task == record.task_name
        assert event.job_index == record.job_index
        assert event.time == record.finish_time
        assert event.deadline == record.deadline


def test_deadline_miss_events_roll_up_into_comparison_result():
    """A lossy stretched schedule: trace misses == ComparisonResult misses."""
    from repro.experiments.harness import ComparisonConfig, compare_schedulers

    expansion = expand_fully_preemptive(TASKSET)
    stretched = StaticSchedule.from_vectors(
        expansion,
        [sub.slot_end for sub in expansion.sub_instances],
        WCSScheduler(PROCESSOR).schedule_expansion(expansion).wc_budgets(),
        method="stretched",
    )
    result = run_traced(seed=11, policy="proportional", schedule=stretched,
                        workload=FixedWorkload(mode="wcec"))
    assert result.miss_count == len(result.trace.of_kind("DeadlineMiss")) > 0

    comparison = compare_schedulers(
        TASKSET, PROCESSOR,
        config=ComparisonConfig(n_hyperperiods=3, seed=11, trace=True))
    for outcome in comparison.outcomes.values():
        simulation = outcome.simulation
        assert simulation.trace is not None
        assert len(simulation.trace.of_kind("DeadlineMiss")) == simulation.miss_count


def test_deadline_miss_events_roll_up_into_multicore_result():
    from repro.allocation.multicore import MulticoreProblem, plan_multicore
    from repro.runtime.multicore import MulticoreRunner

    problem = MulticoreProblem(taskset=TASKSET, processor=PROCESSOR,
                               n_cores=2, partitioner="wfd", method="wcs")
    plan = plan_multicore(problem)
    runner = MulticoreRunner(
        PROCESSOR, policy="greedy",
        config=SimulationConfig(n_hyperperiods=2, trace=True))
    result = runner.run(plan, seed=5)
    total_events = 0
    for core_result in result.core_results:
        if core_result is None:
            continue
        assert core_result.trace is not None
        events = core_result.trace.of_kind("DeadlineMiss")
        assert len(events) == core_result.miss_count
        total_events += len(events)
    assert total_events == result.miss_count
