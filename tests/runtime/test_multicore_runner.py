"""Tests for the multicore runtime: aggregation and the m=1 bitwise equivalence.

The headline contract: a one-core `MulticoreRunner` run is *bitwise identical*
to driving the existing single-core compiled path directly with the same
generator state — the multicore layer adds aggregation, never divergence.
"""

import pytest

from repro.allocation.multicore import MulticoreProblem, plan_multicore
from repro.experiments.seeding import SIMULATION_STREAM, derive_rng
from repro.offline.acs import ACSScheduler
from repro.power.presets import ideal_processor
from repro.runtime.multicore import MulticoreRunner
from repro.runtime.policies import GreedySlackPolicy
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.workloads.cnc import cnc_taskset
from repro.workloads.distributions import NormalWorkload

PROCESSOR = ideal_processor(fmax=1000.0)


@pytest.fixture(scope="module")
def taskset():
    return cnc_taskset(PROCESSOR, bcec_wcec_ratio=0.5)


@pytest.fixture(scope="module")
def single_core_plan(taskset):
    problem = MulticoreProblem(taskset, PROCESSOR, 1, partitioner="wfd", method="acs")
    return plan_multicore(problem)


@pytest.fixture(scope="module")
def quad_core_plan(taskset):
    problem = MulticoreProblem(taskset, PROCESSOR, 4, partitioner="wfd", method="acs")
    return plan_multicore(problem)


class TestSingleCoreEquivalence:
    """m=1 must replay the single-core compiled path bit for bit."""

    @pytest.mark.parametrize("policy", ["static", "greedy", "lookahead", "proportional"])
    def test_bitwise_identical_to_compiled_single_core(self, taskset, single_core_plan, policy):
        seed = 2005
        config = SimulationConfig(n_hyperperiods=10)
        multicore = MulticoreRunner(PROCESSOR, policy=policy, config=config).run(
            single_core_plan, NormalWorkload(), seed=seed)

        # The reference run: the same offline scheduler on the full task set,
        # simulated by the single-core fast path with the generator state the
        # runner derives for core 0.
        schedule = ACSScheduler(PROCESSOR).schedule(taskset)
        single = DVSSimulator(PROCESSOR, policy=policy, config=config).run(
            schedule, NormalWorkload(), derive_rng(seed, 0, SIMULATION_STREAM))

        core = multicore.core_results[0]
        assert core is not None
        # Bitwise equality — no pytest.approx anywhere.
        assert core.total_energy == single.total_energy
        assert core.energy_per_hyperperiod == single.energy_per_hyperperiod
        assert core.energy_by_task == single.energy_by_task
        assert core.transition_energy == single.transition_energy
        assert core.deadline_misses == single.deadline_misses
        assert core.jobs_completed == single.jobs_completed
        assert multicore.total_energy == single.total_energy
        assert multicore.mean_energy_per_hyperperiod == single.mean_energy_per_hyperperiod

    def test_one_core_plan_schedule_matches_single_core_schedule(self, taskset, single_core_plan):
        schedule = ACSScheduler(PROCESSOR).schedule(taskset)
        core_schedule = single_core_plan.schedules[0]
        assert core_schedule.end_times() == schedule.end_times()
        assert core_schedule.wc_budgets() == schedule.wc_budgets()


class TestAggregation:
    def test_totals_are_sums_over_cores(self, quad_core_plan):
        result = MulticoreRunner(
            PROCESSOR, policy="greedy",
            config=SimulationConfig(n_hyperperiods=5),
        ).run(quad_core_plan, seed=7)
        assert result.n_cores == 4
        assert result.total_energy == pytest.approx(sum(result.energy_by_core))
        assert result.miss_count == sum(
            core.miss_count for core in result.core_results if core is not None)
        assert result.jobs_completed == sum(
            core.jobs_completed for core in result.core_results if core is not None)
        assert result.met_all_deadlines
        assert len(result.core_utilizations) == 4
        for utilization, slack in zip(result.core_utilizations, result.core_slacks):
            assert slack == pytest.approx(1.0 - utilization)
        assert set(result.assignment.values()) <= {0, 1, 2, 3}
        assert "greedy" in result.summary() and "4 cores" in result.summary()

    def test_every_core_covers_the_same_wallclock_horizon(self, quad_core_plan):
        n_global = 3
        result = MulticoreRunner(
            PROCESSOR, policy="greedy",
            config=SimulationConfig(n_hyperperiods=n_global),
        ).run(quad_core_plan, seed=7)
        for core in quad_core_plan.partition.used_cores():
            repeats = quad_core_plan.hyperperiods_per_frame(core)
            assert result.core_results[core].n_hyperperiods == n_global * repeats

    def test_deterministic_for_a_seed(self, quad_core_plan):
        config = SimulationConfig(n_hyperperiods=4)
        first = MulticoreRunner(PROCESSOR, policy="greedy", config=config).run(
            quad_core_plan, seed=11)
        second = MulticoreRunner(PROCESSOR, policy="greedy", config=config).run(
            quad_core_plan, seed=11)
        assert first.total_energy == second.total_energy
        assert first.energy_by_core == second.energy_by_core

    def test_policy_instances_are_not_shared_across_cores(self, quad_core_plan):
        policy = GreedySlackPolicy()
        runner = MulticoreRunner(PROCESSOR, policy=policy,
                                 config=SimulationConfig(n_hyperperiods=2))
        result = runner.run(quad_core_plan, seed=3)
        assert result.policy == "greedy"

    def test_idle_cores_report_nothing(self, taskset):
        plan = plan_multicore(
            MulticoreProblem(taskset, PROCESSOR, 2, partitioner="ffd"))
        result = MulticoreRunner(
            PROCESSOR, policy="greedy",
            config=SimulationConfig(n_hyperperiods=2),
        ).run(plan, seed=5)
        assert result.core_results[1] is None
        assert result.energy_by_core[1] == 0.0
        assert result.core_utilizations[1] == 0.0

    def test_wcs_method_rides_through(self, taskset):
        plan = plan_multicore(
            MulticoreProblem(taskset, PROCESSOR, 2, partitioner="wfd", method="wcs"))
        result = MulticoreRunner(
            PROCESSOR, policy="static",
            config=SimulationConfig(n_hyperperiods=2),
        ).run(plan, seed=5)
        assert result.method == "wcs"
        assert result.met_all_deadlines
