"""Bitwise equivalence of the compiled fast path and the reference event loop.

The compiled simulator (``SimulationConfig(fast_path=True)``, the default)
promises *bitwise-identical* results to the seed implementation
(``fast_path=False``) for the same schedule, workload model and generator
state.  These tests hold it to that promise — no tolerances anywhere — across

* all four built-in DVS policies,
* all four workload models,
* discrete-voltage quantisation and transition-overhead configurations,
* linear-law and CMOS processors, and
* recorded timelines.
"""

import numpy as np
import pytest

from repro.analysis.preemption import expand_fully_preemptive
from repro.core.task import Task
from repro.core.taskset import TaskSet
from repro.offline.baselines import ConstantSpeedScheduler
from repro.offline.schedule import StaticSchedule
from repro.offline.wcs import WCSScheduler
from repro.power.presets import cmos_processor, ideal_processor
from repro.power.transition import TransitionModel
from repro.power.voltage import VoltageLevels
from repro.runtime.policies import available_policies
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.workloads.distributions import (
    BimodalWorkload,
    FixedWorkload,
    NormalWorkload,
    UniformWorkload,
)

WORKLOADS = [
    NormalWorkload(),
    UniformWorkload(),
    FixedWorkload(mode="acec"),
    BimodalWorkload(burst_probability=0.3),
]


@pytest.fixture(scope="module")
def linear_processor():
    return ideal_processor(fmax=1000.0)


@pytest.fixture(scope="module")
def taskset():
    return TaskSet([
        Task("hi", period=10, wcec=1800, acec=1000, bcec=300),
        Task("mid", period=20, wcec=4200, acec=2400, bcec=900),
        Task("lo", period=40, wcec=9000, acec=5000, bcec=1500),
    ], name="equivalence")


@pytest.fixture(scope="module")
def wcs_schedule(linear_processor, taskset):
    return WCSScheduler(linear_processor).schedule_expansion(
        expand_fully_preemptive(taskset))


def run_both(processor, schedule, workload, policy, seed=20250729, **config_kwargs):
    """Run the compiled and the reference path from identical generator states."""
    results = []
    for fast_path in (True, False):
        config = SimulationConfig(
            n_hyperperiods=11, seed=seed, record_timeline=True,
            fast_path=fast_path, **config_kwargs,
        )
        simulator = DVSSimulator(processor, policy=policy, config=config)
        rng = np.random.default_rng(seed)
        results.append(simulator.run(schedule, workload, rng))
    return results


def assert_identical(fast, reference):
    """Exact (bitwise) equality of every reported quantity."""
    assert fast.method == reference.method
    assert fast.policy == reference.policy
    assert fast.n_hyperperiods == reference.n_hyperperiods
    assert fast.total_energy == reference.total_energy
    assert fast.energy_per_hyperperiod == reference.energy_per_hyperperiod
    assert fast.transition_energy == reference.transition_energy
    assert fast.energy_by_task == reference.energy_by_task
    assert fast.deadline_misses == reference.deadline_misses
    assert fast.jobs_completed == reference.jobs_completed
    assert fast.timeline.segments == reference.timeline.segments


@pytest.mark.parametrize("policy", available_policies())
@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
def test_policies_and_workloads(linear_processor, wcs_schedule, policy, workload):
    fast, reference = run_both(linear_processor, wcs_schedule, workload, policy)
    assert_identical(fast, reference)


@pytest.mark.parametrize("policy", available_policies())
def test_discrete_voltage_levels(linear_processor, wcs_schedule, policy):
    levels = VoltageLevels([0.5, 1.0, 2.0, 3.0, 4.0, 5.0])
    fast, reference = run_both(
        linear_processor, wcs_schedule, NormalWorkload(), policy,
        voltage_levels=levels,
    )
    assert_identical(fast, reference)


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
def test_transition_overhead(linear_processor, wcs_schedule, workload):
    fast, reference = run_both(
        linear_processor, wcs_schedule, workload, "greedy",
        transition_model=TransitionModel(cdd=0.2, efficiency_loss=0.8),
    )
    assert fast.transition_energy > 0.0
    assert_identical(fast, reference)


def test_discrete_voltage_and_transition_combined(linear_processor, wcs_schedule):
    fast, reference = run_both(
        linear_processor, wcs_schedule, BimodalWorkload(), "lookahead",
        voltage_levels=VoltageLevels([1.0, 2.5, 5.0]),
        transition_model=TransitionModel(cdd=0.1, efficiency_loss=0.9),
    )
    assert_identical(fast, reference)


def test_cmos_processor(taskset):
    processor = cmos_processor(fmax=1000.0)
    schedule = WCSScheduler(processor).schedule_expansion(
        expand_fully_preemptive(taskset))
    for policy in available_policies():
        fast, reference = run_both(processor, schedule, NormalWorkload(), policy)
        assert_identical(fast, reference)


def test_constant_speed_schedule(linear_processor, taskset):
    schedule = ConstantSpeedScheduler(linear_processor).schedule_expansion(
        expand_fully_preemptive(taskset))
    fast, reference = run_both(linear_processor, schedule, UniformWorkload(), "static")
    assert_identical(fast, reference)


def test_deadline_misses_identical(linear_processor, taskset):
    """An aggressive policy on a tight manual schedule misses identically."""
    expansion = expand_fully_preemptive(taskset)
    # Push every end-time to its slot end: proportional reclamation then runs
    # so slowly that low-priority jobs can miss; both paths must agree on it.
    schedule = StaticSchedule.from_vectors(
        expansion,
        [sub.slot_end for sub in expansion.sub_instances],
        WCSScheduler(linear_processor).schedule_expansion(expansion).wc_budgets(),
        method="stretched",
    )
    fast, reference = run_both(
        linear_processor, schedule, FixedWorkload(mode="wcec"), "proportional")
    assert_identical(fast, reference)


def test_generator_state_identical_after_run(linear_processor, wcs_schedule):
    """Both paths leave the shared generator in the same state (paired sweeps)."""
    states = []
    for fast_path in (True, False):
        config = SimulationConfig(n_hyperperiods=7, fast_path=fast_path)
        simulator = DVSSimulator(linear_processor, policy="greedy", config=config)
        rng = np.random.default_rng(99)
        simulator.run(wcs_schedule, NormalWorkload(), rng)
        states.append(rng.bit_generator.state)
    assert states[0] == states[1]


def test_policy_hook_sequence_identical(linear_processor, wcs_schedule):
    """Lifecycle hooks fire in the same order with the same arguments."""
    from repro.runtime.policies import GreedySlackPolicy

    class RecordingPolicy(GreedySlackPolicy):
        def __init__(self):
            self.events = []

        def on_simulation_start(self, schedule, processor):
            self.events.append(("start", schedule.method))

        def on_hyperperiod_start(self, hp_index, offset):
            self.events.append(("hyperperiod", hp_index, offset))

        def on_job_finish(self, task_name, job_index, finish_time, deadline):
            self.events.append(("finish", task_name, job_index, finish_time, deadline))

    logs = []
    for fast_path in (True, False):
        policy = RecordingPolicy()
        config = SimulationConfig(n_hyperperiods=5, fast_path=fast_path)
        simulator = DVSSimulator(linear_processor, policy=policy, config=config)
        simulator.run(wcs_schedule, NormalWorkload(), np.random.default_rng(7))
        logs.append(policy.events)
    assert logs[0] == logs[1]
