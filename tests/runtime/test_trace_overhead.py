"""Tracing must cost nothing when it is off.

The compiled fast path promises that ``trace=False`` (the default) allocates
no event objects at all — the hot dispatch loop may not even *touch* the
event constructors.  We enforce that directly: every event class referenced
by the engine modules is replaced with a constructor that raises, and a
trace-off run must still complete (while a trace-on run must trip it).
"""

import numpy as np
import pytest

from repro.analysis.preemption import expand_fully_preemptive
from repro.core.task import Task
from repro.core.taskset import TaskSet
from repro.offline.wcs import WCSScheduler
from repro.power.presets import ideal_processor
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.workloads.distributions import NormalWorkload

EVENT_NAMES = (
    "HyperperiodReset",
    "JobRelease",
    "SegmentStart",
    "SegmentEnd",
    "Preempt",
    "Resume",
    "FrequencyChange",
    "DeadlineMissEvent",  # aliased import: trace.DeadlineMiss
    "EventTrace",
)


class _Tripwire:
    def __init__(self, name):
        self.name = name

    def __call__(self, *args, **kwargs):
        raise AssertionError(
            f"{self.name} was constructed although tracing is disabled")


@pytest.fixture()
def schedule_and_processor():
    processor = ideal_processor(fmax=1000.0)
    taskset = TaskSet([
        Task("hi", period=10, wcec=1800, acec=1000, bcec=300),
        Task("mid", period=20, wcec=4200, acec=2400, bcec=900),
    ], name="overhead")
    schedule = WCSScheduler(processor).schedule_expansion(
        expand_fully_preemptive(taskset))
    return schedule, processor


def _arm_tripwires(monkeypatch):
    """Replace every event constructor the engines reference with a raiser."""
    import repro.runtime.compiled as compiled
    import repro.runtime.simulator as simulator

    for module in (compiled, simulator):
        for name in EVENT_NAMES:
            if hasattr(module, name):
                monkeypatch.setattr(module, name, _Tripwire(f"{module.__name__}.{name}"))


def _run(schedule, processor, *, trace, fast_path):
    config = SimulationConfig(n_hyperperiods=3, seed=7, trace=trace,
                              fast_path=fast_path)
    simulator = DVSSimulator(processor, policy="greedy", config=config)
    return simulator.run(schedule, NormalWorkload(), np.random.default_rng(7))


@pytest.mark.parametrize("fast_path", [True, False], ids=["compiled", "reference"])
def test_trace_off_allocates_no_event_objects(monkeypatch, schedule_and_processor,
                                              fast_path):
    schedule, processor = schedule_and_processor
    baseline = _run(schedule, processor, trace=False, fast_path=fast_path)
    _arm_tripwires(monkeypatch)
    guarded = _run(schedule, processor, trace=False, fast_path=fast_path)
    assert guarded.total_energy == baseline.total_energy
    assert guarded.trace is None and guarded.timeline is None


@pytest.mark.parametrize("fast_path", [True, False], ids=["compiled", "reference"])
def test_tripwires_actually_cover_the_traced_path(monkeypatch, schedule_and_processor,
                                                  fast_path):
    """Sanity check on the guard itself: with tracing ON the raisers fire."""
    schedule, processor = schedule_and_processor
    _arm_tripwires(monkeypatch)
    with pytest.raises(AssertionError, match="constructed although"):
        _run(schedule, processor, trace=True, fast_path=fast_path)


def test_tripwire_names_are_exhaustive():
    """Every event class the engine modules import is on the tripwire list,
    so a new event type cannot silently dodge the allocation guard."""
    import repro.runtime.compiled as compiled
    import repro.runtime.simulator as simulator
    from repro.runtime.trace import EVENT_TYPES, TraceEvent

    for module in (compiled, simulator):
        referenced = [
            name for name in dir(module)
            if isinstance(getattr(module, name), type)
            and issubclass(getattr(module, name), TraceEvent)
            and getattr(module, name) is not TraceEvent
        ]
        assert referenced, f"{module.__name__} no longer references event types"
        missing = [name for name in referenced if name not in EVENT_NAMES]
        assert not missing, f"{module.__name__} references untripped events: {missing}"
        # All eight event kinds are emitted by each engine.
        classes = {getattr(module, name) for name in referenced}
        assert classes == set(EVENT_TYPES.values())
