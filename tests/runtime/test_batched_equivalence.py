"""Bitwise equivalence of the batched SoA engine and the compiled event loop.

The batched engine (``SimulationConfig(batched=True)``, or ``simulate_batch``
directly) promises *bitwise-identical* :class:`SimulationResult` aggregates to
the compiled fast path — which the existing suite in
``test_compiled_equivalence.py`` already holds bitwise-equal to the reference
loop — for the same schedule, workload model and generator state.  These
tests hold it to that promise with no tolerances anywhere, across

* all four built-in DVS policies x all four workload models,
* non-free voltage-transition models,
* heterogeneous multi-unit batches (different schedules, policies, horizon
  lengths in one lock-step advance), and
* every fallback configuration (CMOS law, discrete voltages, timelines,
  subclassed policies), which must route per-unit to the compiled loop and
  still return the right result.
"""

import numpy as np
import pytest

from repro.analysis.preemption import expand_fully_preemptive
from repro.core.task import Task
from repro.core.taskset import TaskSet
from repro.offline.baselines import ConstantSpeedScheduler
from repro.offline.wcs import WCSScheduler
from repro.power.presets import cmos_processor, ideal_processor
from repro.power.transition import TransitionModel
from repro.power.voltage import VoltageLevels
from repro.runtime.batched import BatchUnit, batch_fallback_reason, simulate_batch
from repro.runtime.compiled import run_compiled
from repro.runtime.policies import GreedySlackPolicy, available_policies, get_policy
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.workloads.distributions import (
    BimodalWorkload,
    FixedWorkload,
    NormalWorkload,
    UniformWorkload,
)

WORKLOADS = [
    NormalWorkload(),
    UniformWorkload(),
    FixedWorkload(mode="acec"),
    BimodalWorkload(burst_probability=0.3),
]


@pytest.fixture(scope="module")
def linear_processor():
    return ideal_processor(fmax=1000.0)


@pytest.fixture(scope="module")
def taskset():
    return TaskSet([
        Task("hi", period=10, wcec=1800, acec=1000, bcec=300),
        Task("mid", period=20, wcec=4200, acec=2400, bcec=900),
        Task("lo", period=40, wcec=9000, acec=5000, bcec=1500),
    ], name="equivalence")


@pytest.fixture(scope="module")
def wcs_schedule(linear_processor, taskset):
    return WCSScheduler(linear_processor).schedule_expansion(
        expand_fully_preemptive(taskset))


def run_both(processor, schedule, workload, policy, seed=20250729, **config_kwargs):
    """Run the batched engine and the compiled path from identical generator states."""
    results = []
    for batched in (True, False):
        config = SimulationConfig(
            n_hyperperiods=11, seed=seed, batched=batched, **config_kwargs,
        )
        simulator = DVSSimulator(processor, policy=policy, config=config)
        rng = np.random.default_rng(seed)
        results.append(simulator.run(schedule, workload, rng))
    return results


def assert_identical(batched, compiled):
    """Exact (bitwise) equality of every reported aggregate."""
    assert batched.method == compiled.method
    assert batched.policy == compiled.policy
    assert batched.n_hyperperiods == compiled.n_hyperperiods
    assert batched.total_energy == compiled.total_energy
    assert batched.energy_per_hyperperiod == compiled.energy_per_hyperperiod
    assert batched.transition_energy == compiled.transition_energy
    assert batched.energy_by_task == compiled.energy_by_task
    assert batched.deadline_misses == compiled.deadline_misses
    assert batched.jobs_completed == compiled.jobs_completed


@pytest.mark.parametrize("policy", available_policies())
@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
def test_policies_and_workloads(linear_processor, wcs_schedule, policy, workload):
    batched, compiled = run_both(linear_processor, wcs_schedule, workload, policy)
    assert_identical(batched, compiled)


@pytest.mark.parametrize("policy", available_policies())
def test_transition_overhead(linear_processor, wcs_schedule, policy):
    batched, compiled = run_both(
        linear_processor, wcs_schedule, NormalWorkload(), policy,
        transition_model=TransitionModel(cdd=0.2, efficiency_loss=0.8),
    )
    assert compiled.transition_energy > 0.0
    assert_identical(batched, compiled)


def test_first_touch_task_order_is_preserved(linear_processor, wcs_schedule):
    """energy_by_task iterates in first-execution order, like the scalar loops."""
    batched, compiled = run_both(
        linear_processor, wcs_schedule, NormalWorkload(), "greedy")
    assert list(batched.energy_by_task) == list(compiled.energy_by_task)


def test_mixed_batch_matches_individual_runs(linear_processor, taskset):
    """One lock-step advance over heterogeneous units == each unit run alone."""
    other = TaskSet([
        Task("a", period=8, wcec=1200, acec=700, bcec=200),
        Task("b", period=16, wcec=3000, acec=1500, bcec=500),
    ], name="other")
    wcs = WCSScheduler(linear_processor).schedule_expansion(
        expand_fully_preemptive(taskset))
    constant = ConstantSpeedScheduler(linear_processor).schedule_expansion(
        expand_fully_preemptive(other))
    specs = [
        (wcs, "greedy", NormalWorkload(), 7),
        (constant, "static", UniformWorkload(), 11),
        (wcs, "lookahead", BimodalWorkload(burst_probability=0.3), 5),
        (constant, "proportional", FixedWorkload(mode="acec"), 3),
        (wcs, "greedy", NormalWorkload(), 9),
    ]
    units = [
        BatchUnit(schedule=schedule, processor=linear_processor, policy=policy,
                  config=SimulationConfig(n_hyperperiods=n_hp),
                  workload=workload, rng=np.random.default_rng(1000 + index))
        for index, (schedule, policy, workload, n_hp) in enumerate(specs)
    ]
    assert all(batch_fallback_reason(unit) is None for unit in units)
    results = simulate_batch(units)
    for index, (schedule, policy, workload, n_hp) in enumerate(specs):
        alone = run_compiled(schedule, linear_processor, get_policy(policy),
                             SimulationConfig(n_hyperperiods=n_hp),
                             workload, np.random.default_rng(1000 + index))
        assert_identical(results[index], alone)


def test_mixed_batch_with_arrivals_and_compaction(linear_processor, taskset):
    """Jittered and periodic lanes advance together through row compaction.

    Nine units with staggered horizons force the engine's mid-run row
    compaction (which triggers only at >= 8 rows); half the units carry a
    sporadic arrival model, so the compaction must also slice the per-lane
    jitter table and the packed job state without disturbing either.
    """
    from repro.workloads.arrivals import SporadicArrivals

    other = TaskSet([
        Task("a", period=8, wcec=1200, acec=700, bcec=200),
        Task("b", period=16, wcec=3000, acec=1500, bcec=500),
    ], name="other")
    wcs = WCSScheduler(linear_processor).schedule_expansion(
        expand_fully_preemptive(taskset))
    constant = ConstantSpeedScheduler(linear_processor).schedule_expansion(
        expand_fully_preemptive(other))
    policies = ["greedy", "static", "lookahead", "proportional"]
    specs = []
    for index in range(9):
        arrivals = SporadicArrivals(max_jitter=1.5) if index % 2 else None
        specs.append((
            wcs if index % 3 else constant,
            policies[index % 4],
            SimulationConfig(n_hyperperiods=2 + index, arrivals=arrivals),
        ))
    units = [
        BatchUnit(schedule=schedule, processor=linear_processor, policy=policy,
                  config=config, workload=NormalWorkload(),
                  rng=np.random.default_rng(500 + index))
        for index, (schedule, policy, config) in enumerate(specs)
    ]
    assert all(batch_fallback_reason(unit) is None for unit in units)
    results = simulate_batch(units)
    for index, (schedule, policy, config) in enumerate(specs):
        alone = run_compiled(schedule, linear_processor, get_policy(policy),
                             config, NormalWorkload(),
                             np.random.default_rng(500 + index))
        assert_identical(results[index], alone)


class _RecordingPolicy(GreedySlackPolicy):
    """A subclass (hooks may matter) — must be gated to the compiled fallback."""

    def __init__(self):
        self.calls = []

    def on_job_finish(self, task_name, job_index, finish_time, deadline):
        self.calls.append((task_name, job_index))


class TestFallback:
    """Configurations the vectorized core does not cover route to run_compiled."""

    def _check(self, unit, expected_fragment):
        reason = batch_fallback_reason(unit)
        assert reason is not None and expected_fragment in reason
        (batched,) = simulate_batch([unit])
        alone = run_compiled(unit.schedule, unit.processor, get_policy(unit.policy)
                             if isinstance(unit.policy, str) else unit.policy,
                             unit.config, unit.workload,
                             np.random.default_rng(99))
        assert_identical(batched, alone)

    def test_cmos_processor(self, taskset):
        processor = cmos_processor(fmax=1000.0)
        schedule = WCSScheduler(processor).schedule_expansion(
            expand_fully_preemptive(taskset))
        unit = BatchUnit(schedule=schedule, processor=processor, policy="greedy",
                         config=SimulationConfig(n_hyperperiods=5),
                         workload=NormalWorkload(), rng=np.random.default_rng(99))
        self._check(unit, "cmos")

    def test_discrete_voltage_levels(self, linear_processor, wcs_schedule):
        config = SimulationConfig(
            n_hyperperiods=5, voltage_levels=VoltageLevels([0.5, 1.0, 2.0, 5.0]))
        unit = BatchUnit(schedule=wcs_schedule, processor=linear_processor,
                         policy="greedy", config=config,
                         workload=NormalWorkload(), rng=np.random.default_rng(99))
        self._check(unit, "voltage levels")

    def test_recorded_timeline(self, linear_processor, wcs_schedule):
        config = SimulationConfig(n_hyperperiods=5, record_timeline=True)
        unit = BatchUnit(schedule=wcs_schedule, processor=linear_processor,
                         policy="greedy", config=config,
                         workload=NormalWorkload(), rng=np.random.default_rng(99))
        reason = batch_fallback_reason(unit)
        assert reason == "record_timeline"
        (batched,) = simulate_batch([unit])
        alone = run_compiled(wcs_schedule, linear_processor, get_policy("greedy"),
                             config, NormalWorkload(), np.random.default_rng(99))
        assert_identical(batched, alone)
        assert batched.timeline.segments == alone.timeline.segments

    def test_subclassed_policy(self, linear_processor, wcs_schedule):
        unit = BatchUnit(schedule=wcs_schedule, processor=linear_processor,
                         policy=_RecordingPolicy(),
                         config=SimulationConfig(n_hyperperiods=5),
                         workload=NormalWorkload(), rng=np.random.default_rng(99))
        reason = batch_fallback_reason(unit)
        assert reason is not None and "_RecordingPolicy" in reason
        (batched,) = simulate_batch([unit])
        # The subclass's hooks observed the full scalar call sequence.
        assert unit.policy.calls
        reference = _RecordingPolicy()
        alone = run_compiled(wcs_schedule, linear_processor, reference,
                             SimulationConfig(n_hyperperiods=5),
                             NormalWorkload(), np.random.default_rng(99))
        assert_identical(batched, alone)
        assert unit.policy.calls == reference.calls

    def test_builtin_default_config_is_vectorized(self, linear_processor, wcs_schedule):
        for policy in available_policies():
            unit = BatchUnit(schedule=wcs_schedule, processor=linear_processor,
                             policy=policy, config=SimulationConfig(n_hyperperiods=5))
            assert batch_fallback_reason(unit) is None
