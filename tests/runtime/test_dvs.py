"""Tests for the online speed-selection policies (via the deprecated dvs shim)."""

import importlib
import warnings

import pytest

with warnings.catch_warnings():
    # The shim warns on import by design; the warning itself is asserted below.
    warnings.simplefilter("ignore", DeprecationWarning)
    from repro.runtime.dvs import (
        GreedySlackPolicy,
        NoReclamationPolicy,
        ProportionalSlackPolicy,
        SpeedRequest,
        get_slack_policy,
    )


def make_request(**overrides):
    defaults = dict(time_now=2.0, end_time=10.0, wc_remaining=4000.0,
                    planned_frequency=800.0, job_wc_remaining=6000.0, job_deadline=20.0)
    defaults.update(overrides)
    return SpeedRequest(**defaults)


class TestGreedy:
    def test_stretches_to_end_time(self, processor):
        frequency = GreedySlackPolicy().frequency(processor, make_request())
        assert frequency == pytest.approx(4000.0 / 8.0)

    def test_clips_to_fmax_when_late(self, processor):
        frequency = GreedySlackPolicy().frequency(processor, make_request(time_now=9.99, wc_remaining=5000))
        assert frequency == processor.fmax

    def test_past_end_time_runs_at_fmax(self, processor):
        frequency = GreedySlackPolicy().frequency(processor, make_request(time_now=11.0))
        assert frequency == processor.fmax

    def test_zero_remaining_runs_at_fmin(self, processor):
        frequency = GreedySlackPolicy().frequency(processor, make_request(wc_remaining=0.0))
        assert frequency == processor.fmin

    def test_never_below_fmin(self, processor):
        frequency = GreedySlackPolicy().frequency(processor, make_request(wc_remaining=1e-3))
        assert frequency >= processor.fmin

    def test_earlier_start_means_lower_frequency(self, processor):
        """More inherited slack (earlier start) always lowers or keeps the speed."""
        early = GreedySlackPolicy().frequency(processor, make_request(time_now=1.0))
        late = GreedySlackPolicy().frequency(processor, make_request(time_now=5.0))
        assert early <= late


class TestNoReclamation:
    def test_returns_planned_frequency(self, processor):
        frequency = NoReclamationPolicy().frequency(processor, make_request())
        assert frequency == pytest.approx(800.0)

    def test_clipped_to_processor_range(self, processor):
        frequency = NoReclamationPolicy().frequency(processor, make_request(planned_frequency=1e6))
        assert frequency == processor.fmax


class TestProportional:
    def test_uses_job_level_remaining(self, processor):
        frequency = ProportionalSlackPolicy().frequency(processor, make_request())
        assert frequency == pytest.approx(6000.0 / 18.0)

    def test_past_deadline_runs_at_fmax(self, processor):
        frequency = ProportionalSlackPolicy().frequency(processor, make_request(time_now=25.0))
        assert frequency == processor.fmax

    def test_zero_job_remaining(self, processor):
        frequency = ProportionalSlackPolicy().frequency(processor, make_request(job_wc_remaining=0.0))
        assert frequency == processor.fmin


class TestCompatShim:
    """`repro.runtime.dvs` must stay a faithful, loudly deprecated re-export."""

    def test_import_emits_deprecation_warning(self):
        import repro.runtime.dvs as dvs

        # Module-level warnings only fire at (re-)import time.
        with pytest.warns(DeprecationWarning, match="repro.runtime.policies"):
            importlib.reload(dvs)

    def test_reexports_stay_in_sync_with_policies_all(self):
        import repro.runtime.dvs as dvs
        import repro.runtime.policies as policies

        assert set(dvs.__all__) == set(policies.__all__), (
            "repro.runtime.dvs re-exports diverged from repro.runtime.policies.__all__; "
            "update the shim when the policy layer grows"
        )
        for name in policies.__all__:
            assert getattr(dvs, name) is getattr(policies, name), (
                f"shim attribute {name} is not the policies object"
            )


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [
        ("greedy", GreedySlackPolicy),
        ("static", NoReclamationPolicy),
        ("proportional", ProportionalSlackPolicy),
    ])
    def test_lookup(self, name, cls):
        assert isinstance(get_slack_policy(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_slack_policy("oracle")
