"""Tests for the DVSPolicy protocol, the look-ahead policy and the hooks."""

import math

import numpy as np
import pytest

from repro.offline.acs import ACSScheduler
from repro.offline.wcs import WCSScheduler
from repro.runtime.policies import (
    DVSPolicy,
    GreedySlackPolicy,
    LookaheadSlackPolicy,
    NoReclamationPolicy,
    ProportionalSlackPolicy,
    SlackPolicy,
    SpeedRequest,
    StaticReplayPolicy,
    available_policies,
    get_policy,
    get_slack_policy,
)
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.workloads.distributions import FixedWorkload, UniformWorkload


def make_request(**overrides):
    defaults = dict(time_now=2.0, end_time=10.0, wc_remaining=4000.0,
                    planned_frequency=800.0, job_wc_remaining=6000.0,
                    job_deadline=20.0, job_final_end_time=17.0)
    defaults.update(overrides)
    return SpeedRequest(**defaults)


class TestProtocol:
    def test_slack_policy_is_dvs_policy(self):
        assert SlackPolicy is DVSPolicy

    def test_static_replay_alias(self):
        assert NoReclamationPolicy is StaticReplayPolicy

    def test_registry_names(self):
        assert available_policies() == ("greedy", "lookahead", "proportional", "static")

    @pytest.mark.parametrize("name,cls", [
        ("greedy", GreedySlackPolicy),
        ("static", StaticReplayPolicy),
        ("lookahead", LookaheadSlackPolicy),
        ("proportional", ProportionalSlackPolicy),
    ])
    def test_lookup(self, name, cls):
        assert isinstance(get_policy(name), cls)
        assert isinstance(get_slack_policy(name), cls)  # seed-era alias

    def test_simulator_resolves_policy_names(self, processor):
        simulator = DVSSimulator(processor, policy="lookahead")
        assert isinstance(simulator.policy, LookaheadSlackPolicy)

    def test_default_speed_request_horizon_is_open(self):
        request = SpeedRequest(time_now=0.0, end_time=1.0, wc_remaining=1.0,
                               planned_frequency=1.0, job_wc_remaining=1.0,
                               job_deadline=2.0)
        assert math.isinf(request.job_final_end_time)


class TestLookahead:
    def test_stretches_to_final_end_time(self, processor):
        frequency = LookaheadSlackPolicy().frequency(processor, make_request())
        assert frequency == pytest.approx(6000.0 / 15.0)

    def test_falls_back_to_deadline_without_horizon(self, processor):
        frequency = LookaheadSlackPolicy().frequency(
            processor, make_request(job_final_end_time=math.inf))
        assert frequency == pytest.approx(6000.0 / 18.0)

    def test_past_horizon_runs_at_fmax(self, processor):
        frequency = LookaheadSlackPolicy().frequency(
            processor, make_request(time_now=17.5))
        assert frequency == processor.fmax

    def test_zero_remaining_runs_at_fmin(self, processor):
        frequency = LookaheadSlackPolicy().frequency(
            processor, make_request(job_wc_remaining=0.0))
        assert frequency == processor.fmin

    def test_never_faster_than_proportional_is_slower_than(self, processor):
        """lookahead horizon ≤ deadline horizon → lookahead speed ≥ proportional speed."""
        request = make_request()
        lookahead = LookaheadSlackPolicy().frequency(processor, request)
        proportional = ProportionalSlackPolicy().frequency(processor, request)
        assert lookahead >= proportional


class _RecordingPolicy(GreedySlackPolicy):
    """Greedy policy that records every lifecycle hook invocation."""

    def __init__(self):
        self.simulation_starts = 0
        self.hyperperiod_starts = []
        self.finished_jobs = []

    def on_simulation_start(self, schedule, processor):
        self.simulation_starts += 1

    def on_hyperperiod_start(self, hp_index, offset):
        self.hyperperiod_starts.append((hp_index, offset))

    def on_job_finish(self, task_name, job_index, finish_time, deadline):
        self.finished_jobs.append(task_name)
        assert finish_time <= deadline + 1e-6  # greedy is deadline-safe here


class TestLifecycleHooks:
    def test_hooks_fire(self, two_task_set, processor):
        schedule = WCSScheduler(processor).schedule(two_task_set)
        policy = _RecordingPolicy()
        simulator = DVSSimulator(processor, policy=policy,
                                 config=SimulationConfig(n_hyperperiods=3, seed=5))
        result = simulator.run(schedule)
        assert policy.simulation_starts == 1
        assert [hp for hp, _ in policy.hyperperiod_starts] == [0, 1, 2]
        assert len(policy.finished_jobs) == result.jobs_completed
        assert result.met_all_deadlines


@pytest.fixture(params=["wcs", "acs"])
def schedules(request, three_task_set, processor):
    scheduler = {"wcs": WCSScheduler, "acs": ACSScheduler}[request.param]
    return scheduler(processor).schedule(three_task_set)


class TestPolicyGuarantees:
    def test_slack_reclamation_never_misses_on_feasible_sets(self, schedules, processor):
        """Greedy reclamation keeps the static schedule's worst-case guarantee."""
        simulator = DVSSimulator(
            processor, policy="greedy",
            config=SimulationConfig(n_hyperperiods=20, on_deadline_miss="raise"),
        )
        result = simulator.run(schedules, UniformWorkload(), np.random.default_rng(99))
        assert result.met_all_deadlines

    def test_static_replay_never_misses_on_feasible_sets(self, schedules, processor):
        simulator = DVSSimulator(
            processor, policy="static",
            config=SimulationConfig(n_hyperperiods=10, on_deadline_miss="raise"),
        )
        result = simulator.run(schedules, UniformWorkload(), np.random.default_rng(99))
        assert result.met_all_deadlines

    def test_greedy_no_worse_than_static_at_worst_case(self, schedules, processor):
        """With actual = worst-case there is no slack: greedy must not cost more."""
        energies = {}
        for name in ("static", "greedy"):
            simulator = DVSSimulator(processor, policy=name,
                                     config=SimulationConfig(n_hyperperiods=5))
            result = simulator.run(schedules, FixedWorkload(mode="wcec"),
                                   np.random.default_rng(3))
            energies[name] = result.mean_energy_per_hyperperiod
        assert energies["greedy"] <= energies["static"] * (1 + 1e-9)

    def test_reclamation_beats_static_below_worst_case(self, schedules, processor):
        """The acceptance scenario: actual < WCET → reclamation saves energy."""
        energies = {}
        for name in ("static", "greedy"):
            simulator = DVSSimulator(processor, policy=name,
                                     config=SimulationConfig(n_hyperperiods=20))
            result = simulator.run(schedules, FixedWorkload(mode="bcec"),
                                   np.random.default_rng(3))
            energies[name] = result.mean_energy_per_hyperperiod
        assert energies["greedy"] < energies["static"]

    def test_lookahead_runs_and_records_any_misses(self, schedules, processor):
        """Aggressive look-ahead must finish the simulation (misses recorded, not raised)."""
        simulator = DVSSimulator(processor, policy="lookahead",
                                 config=SimulationConfig(n_hyperperiods=10))
        result = simulator.run(schedules, UniformWorkload(), np.random.default_rng(11))
        assert result.jobs_completed > 0
        assert result.policy == "lookahead"
        assert result.total_energy > 0
