"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.task import Task
from repro.core.taskset import TaskSet
from repro.power.presets import cmos_processor, ideal_processor


@pytest.fixture
def processor():
    """The paper's simplified processor: f proportional to V, 1000 cycles/ms at 5 V."""
    return ideal_processor(fmax=1000.0)


@pytest.fixture
def cmos():
    """A full CMOS-delay-law processor."""
    return cmos_processor(fmax=1000.0)


@pytest.fixture
def two_task_set():
    """Two-task RM set used throughout: utilisation 0.7 at fmax=1000."""
    return TaskSet([
        Task("A", period=10, wcec=3000, acec=1500, bcec=600),
        Task("B", period=20, wcec=8000, acec=4400, bcec=800),
    ], name="two-tasks")


@pytest.fixture
def three_task_set():
    """Three-task RM set with nested preemption (utilisation 0.75)."""
    return TaskSet([
        Task("hi", period=10, wcec=2000, acec=1000, bcec=400),
        Task("mid", period=20, wcec=5000, acec=2500, bcec=1000),
        Task("lo", period=40, wcec=12000, acec=6000, bcec=2400),
    ], name="three-tasks")


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
