"""The top-level package re-exports the documented public API."""

import repro


def test_version_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_all_names_resolve():
    for name in repro.__all__:
        if name == "__version__":
            continue
        assert hasattr(repro, name), f"missing public symbol {name}"


def test_key_classes_exported():
    for name in ["Task", "TaskSet", "ProcessorModel", "ACSScheduler", "WCSScheduler",
                 "DVSSimulator", "SimulationConfig", "NormalWorkload", "StaticSchedule",
                 "expand_fully_preemptive", "improvement_percent"]:
        assert name in repro.__all__


def test_quickstart_from_docstring_runs():
    """The quickstart in the package docstring must keep working."""
    from repro import (ACSScheduler, DVSSimulator, NormalWorkload, SimulationConfig,
                       Task, TaskSet, WCSScheduler, ideal_processor, improvement_percent)

    tasks = [Task("control", period=10, wcec=3000, acec=1500, bcec=600),
             Task("sensing", period=20, wcec=8000, acec=4400, bcec=800)]
    taskset = TaskSet(tasks)
    processor = ideal_processor(fmax=1000.0)

    acs = ACSScheduler(processor).schedule(taskset)
    wcs = WCSScheduler(processor).schedule(taskset)

    simulator = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=10, seed=1))
    acs_energy = simulator.run(acs, NormalWorkload()).mean_energy_per_hyperperiod
    wcs_energy = simulator.run(wcs, NormalWorkload()).mean_energy_per_hyperperiod
    assert improvement_percent(wcs_energy, acs_energy) > 0
