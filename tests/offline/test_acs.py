"""Tests for the ACS scheduler (the paper's contribution)."""

import pytest

from repro.offline.acs import ACSScheduler
from repro.offline.evaluation import average_case_energy, evaluate_schedule, worst_case_energy
from repro.offline.nlp import SolverOptions
from repro.offline.wcs import WCSScheduler
from repro.runtime.simulator import DVSSimulator, SimulationConfig
from repro.workloads.distributions import FixedWorkload


class TestACS:
    def test_valid_and_not_fallback(self, two_task_set, processor):
        schedule = ACSScheduler(processor).schedule(two_task_set)
        schedule.validate(processor)
        assert not schedule.metadata["fallback"]
        assert schedule.method == "acs"

    def test_average_case_energy_beats_wcs(self, two_task_set, processor):
        """The whole point of the paper: ACS end-times cost less when jobs take the ACEC."""
        acs = ACSScheduler(processor).schedule(two_task_set)
        wcs = WCSScheduler(processor).schedule(two_task_set)
        acs_energy = average_case_energy(acs, processor)
        wcs_energy = average_case_energy(wcs, processor)
        assert acs_energy < wcs_energy * 0.95  # at least a 5 % improvement on this example

    def test_average_case_energy_beats_wcs_three_tasks(self, three_task_set, processor):
        acs = ACSScheduler(processor).schedule(three_task_set)
        wcs = WCSScheduler(processor).schedule(three_task_set)
        assert average_case_energy(acs, processor) <= average_case_energy(wcs, processor) + 1e-6

    def test_worst_case_still_meets_deadlines(self, two_task_set, three_task_set, processor):
        """Even if every job takes its WCEC, the ACS schedule misses no deadline at runtime."""
        for taskset in (two_task_set, three_task_set):
            schedule = ACSScheduler(processor).schedule(taskset)
            simulator = DVSSimulator(processor, config=SimulationConfig(n_hyperperiods=2))
            result = simulator.run(schedule, FixedWorkload(mode="wcec"))
            assert result.met_all_deadlines

    def test_analytic_worst_case_feasible(self, two_task_set, processor):
        schedule = ACSScheduler(processor).schedule(two_task_set)
        actual = {i.key: i.wcec for i in schedule.expansion.instances}
        outcome = evaluate_schedule(schedule, processor, actual)
        assert outcome.feasible

    def test_budgets_conserved(self, two_task_set, processor):
        schedule = ACSScheduler(processor).schedule(two_task_set)
        for instance in schedule.expansion.instances:
            entries = schedule.entries_for_instance(instance)
            assert sum(e.wc_budget for e in entries) == pytest.approx(instance.wcec, rel=1e-6)

    def test_without_wcs_seed_still_valid(self, two_task_set, processor):
        schedule = ACSScheduler(processor, seed_with_wcs=False).schedule(two_task_set)
        schedule.validate(processor)

    def test_solver_options_forwarded(self, two_task_set, processor):
        options = SolverOptions(maxiter=5)
        schedule = ACSScheduler(processor, options=options).schedule(two_task_set)
        schedule.validate(processor)
        assert schedule.metadata["solver_iterations"] <= 6

    def test_objective_value_recorded(self, two_task_set, processor):
        schedule = ACSScheduler(processor).schedule(two_task_set)
        assert schedule.objective_value == pytest.approx(average_case_energy(schedule, processor), rel=1e-6)

    def test_name(self, processor):
        assert ACSScheduler(processor).name == "acs"

    def test_acs_trades_worst_case_for_average_case(self, two_task_set, processor):
        """ACS may cost more than WCS in the worst case (the paper's 33 % observation) but
        never violates feasibility; check the trade-off direction explicitly."""
        acs = ACSScheduler(processor).schedule(two_task_set)
        wcs = WCSScheduler(processor).schedule(two_task_set)
        assert worst_case_energy(acs, processor) >= worst_case_energy(wcs, processor) - 1e-6
